//! Offline stand-in for `serde`.
//!
//! The container cannot reach crates.io, so the workspace vendors a small
//! serialization framework under the `serde` crate name. Unlike real serde's
//! visitor architecture, this shim round-trips everything through one
//! self-describing [`Value`] tree (the JSON data model plus distinct integer
//! variants). `shims/serde_derive` provides `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the struct/enum shapes this workspace uses,
//! and `shims/serde_json` renders/parses the textual form.
//!
//! Conventions (stable — golden files depend on them):
//! - structs → objects with fields in declaration order
//! - newtype structs and `#[serde(transparent)]` → the inner value
//! - unit enum variants → `"VariantName"`
//! - data-carrying variants → externally tagged: `{"Variant": ...}`
//! - maps → objects when every key serializes to a string, else arrays of
//!   `[key, value]` pairs

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// The self-describing intermediate tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent, fits i64).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn msg(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// "expected X, found Y" convenience constructor.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::msg(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned deserialization — with a value-tree model every [`Deserialize`] is
/// owned, so this is a blanket alias kept for API compatibility.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// `serde::de` module as upstream spells it.
pub mod de {
    pub use crate::{DeError as Error, Deserialize, DeserializeOwned};
}

/// `serde::ser` module as upstream spells it.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};

/// Look up a required field of an object.
pub fn obj_field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: u128 = match v {
                    Value::Int(i) if *i >= 0 => *i as u128,
                    Value::UInt(u) => *u as u128,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u128,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Deserializing into `&'static str` (used by static descriptor structs)
/// has no borrow source in a value-tree model, so the string is leaked.
/// Fine for the rare, tiny descriptor strings this workspace round-trips;
/// do not use for bulk data.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::msg(format!("expected {N} elements, found {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("tuple array", v))?;
                if items.len() != $len {
                    return Err(DeError::msg(format!(
                        "expected {}-tuple, found array of {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
impl_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);

/// Maps serialize as objects when every key renders as a string, otherwise
/// as an array of `[key, value]` pairs.
fn map_to_value(entries: Vec<(Value, Value)>) -> Value {
    let all_str = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
    if all_str {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Arr(
            entries
                .into_iter()
                .map(|(k, v)| Value::Arr(vec![k, v]))
                .collect(),
        )
    }
}

fn map_entry_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<(K, V), DeError> {
    let pair = v
        .as_arr()
        .ok_or_else(|| DeError::expected("[key, value] pair", v))?;
    if pair.len() != 2 {
        return Err(DeError::msg("map entry must be a [key, value] pair"));
    }
    Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Obj(fields) => fields
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Arr(items) => items.iter().map(map_entry_from_value).collect(),
        other => Err(DeError::expected("map", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort by rendered key for deterministic output.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        map_to_value(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<HashMap<K, V, S>, DeError> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        map_to_value(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}
