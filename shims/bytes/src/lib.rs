//! Offline stand-in for `bytes`.
//!
//! Provides the `Buf`/`BufMut` trait subset this workspace uses for the
//! compact binary trace format: little-endian integer reads over `&[u8]`
//! and writes into `Vec<u8>`.

/// Sequential big-endian/little-endian reads from a byte source.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Advance the cursor.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential writes into a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_little_endian() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(b"hdr");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);

        let mut data: &[u8] = &buf;
        let mut hdr = [0u8; 3];
        data.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(data.remaining(), 8);
        assert_eq!(data.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(data.remaining(), 0);
    }
}
