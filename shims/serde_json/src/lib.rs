//! Offline stand-in for `serde_json`.
//!
//! Serializes the shim `serde::Value` tree to JSON text and parses JSON text
//! back into it. Floats are rendered with Rust's shortest-round-trip
//! formatting (the `float_roundtrip` behavior), non-finite floats render as
//! `null` (as upstream does), and object key order is preserved.

use serde::{DeserializeOwned, Serialize, Value};
use std::fmt;

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e)
    }
}

/// Result alias matching upstream's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

pub use serde::Value as JsonValue;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep the ".0" so floats stay visually distinct from integers.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(item, out, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize directly to a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a `Value` tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parse JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("2.5e3").unwrap();
        assert_eq!(v, 2500.0);
        let n: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(n, vec![1, 2, 3]);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 6.02e23, 1e-300, -123.456789] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn nested_object_round_trip() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Str("x\ny".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }
}
