//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *API subset it actually uses* behind the same crate name. The stream
//! is produced by xoshiro256++ seeded through SplitMix64 — high quality and
//! fully deterministic, but **not** bit-compatible with upstream `rand`'s
//! `StdRng`. Nothing in this workspace relies on upstream's exact stream;
//! golden hashes are pinned against *this* implementation.
//!
//! Supported surface: `Rng::{gen, gen_range, gen_bool, fill}`, `RngCore`,
//! `SeedableRng::{from_seed, seed_from_u64}`, `rngs::StdRng`,
//! `seq::SliceRandom::{shuffle, choose}`, and `distributions::Standard`.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible RNGs.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed by expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (used for seed expansion).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_words(s: [u64; 4]) -> StdRng {
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                }
            } else {
                StdRng { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut words = [0u64; 4];
            for (w, chunk) in words.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng::from_words(words)
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Types `gen_range` can sample uniformly. Mirrors upstream's
/// `SampleUniform` so that `Range<T>`/`RangeInclusive<T>` get a *single
/// generic* [`SampleRange`] impl — per-type range impls would break type
/// inference at call sites like `x + rng.gen_range(-2.0..2.0)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_excl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_incl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Uniform sampling from range expressions (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_incl(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Standard distributions for `Rng::gen`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type: floats in `[0, 1)`,
    /// integers over their whole domain, fair booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_standard {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// A process-global, OS-seeded RNG is deliberately **not** random here:
/// reproducibility is a feature of this workspace, so `thread_rng` returns a
/// fixed-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5E_ED_0F_7E_57)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
