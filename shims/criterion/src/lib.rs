//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock timing harness exposing the API subset this
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the group macros). It
//! runs a short warm-up, then a fixed measurement batch, and prints
//! median/mean timings — enough for coarse regression eyeballing; the
//! tracked numbers live in the `bench` crate's own JSON harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, once per sample after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Allow longer measurements (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
                format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {median:?}, mean {mean:?} over {} samples{throughput}",
            self.name,
            id.id,
            sorted.len()
        );
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (upstream finalizes reports here; a no-op shim).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    benchmarks_run: usize,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            benchmarks_run: 0,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }

    /// Accepted for API compatibility with `criterion_group!` configs.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
