//! Offline stand-in for `crossbeam`.
//!
//! Only the surface this workspace uses: `crossbeam::thread::scope` with
//! `Scope::spawn`, layered over `std::thread::scope` (stable since 1.63).
//! The visible difference from std is crossbeam's signature: `scope` returns
//! a `Result` and spawn closures receive a `&Scope` argument for nested
//! spawning.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (matches `crossbeam`'s shape).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle that allows spawning borrowed-data threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: a `#[derive]` would put bounds on the lifetimes' uses.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    ///
    /// All spawned threads are joined before this returns. Unlike crossbeam
    /// (which collects child panics into the `Err` payload), a panicking
    /// child here propagates through `std::thread::scope` — equivalent
    /// behavior for workloads that `unwrap()` the result, which is how this
    /// workspace uses it.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n: u32 = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
