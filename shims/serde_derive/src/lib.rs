//! Offline stand-in for `serde_derive`.
//!
//! Real `serde_derive` depends on `syn`/`quote`, which are not available in
//! this container, so the item grammar is parsed by hand from the raw
//! `TokenStream`. Supported shapes — exactly the ones this workspace uses:
//!
//! - structs with named fields (optionally generic, with `#[serde(bound)]`)
//! - tuple structs (newtype structs serialize as their inner value)
//! - unit structs
//! - enums with unit, tuple, and struct variants (externally tagged)
//! - container attributes `#[serde(transparent)]`,
//!   `#[serde(bound = "...")]`, and
//!   `#[serde(bound(serialize = "...", deserialize = "..."))]`
//!
//! Anything else (field-level serde attributes, unions, …) fails the build
//! with an explicit message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Raw tokens of the generic parameter list (without the angle brackets),
    /// e.g. `T: TransitionLike`.
    generics_decl: String,
    /// Parameter names in declaration order, e.g. `["'a", "T"]`.
    param_names: Vec<String>,
    /// Type parameter names only (targets for default bounds).
    type_params: Vec<String>,
    /// Raw tokens of a trailing `where` clause, if any.
    where_clause: String,
    transparent: bool,
    bound_serialize: Option<String>,
    bound_deserialize: Option<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected identifier, found {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Attribute parsing
// ---------------------------------------------------------------------------

struct ContainerAttrs {
    transparent: bool,
    bound_serialize: Option<String>,
    bound_deserialize: Option<String>,
}

fn literal_str(t: &TokenTree) -> String {
    let s = t.to_string();
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde shim derive: expected string literal, found {s}"));
    inner.replace("\\\"", "\"")
}

/// Consume leading `#[...]` attributes, folding `#[serde(...)]` into `attrs`.
fn skip_attrs(cur: &mut Cursor, attrs: &mut ContainerAttrs) {
    loop {
        let is_hash = matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
        if !is_hash {
            return;
        }
        cur.next();
        let group = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim derive: malformed attribute {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_ident("serde") {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde shim derive: malformed #[serde] attribute {other:?}"),
        };
        let mut a = Cursor::new(args.stream());
        while let Some(tok) = a.next() {
            match tok {
                TokenTree::Ident(id) if id.to_string() == "transparent" => {
                    attrs.transparent = true;
                }
                TokenTree::Ident(id) if id.to_string() == "bound" => {
                    match a.next() {
                        // bound = "..."
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                            let lit = a.next().expect("serde shim derive: bound value");
                            let text = literal_str(&lit);
                            attrs.bound_serialize = Some(text.clone());
                            attrs.bound_deserialize = Some(text);
                        }
                        // bound(serialize = "...", deserialize = "...")
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let mut b = Cursor::new(g.stream());
                            while let Some(which) = b.next() {
                                let which = which.to_string();
                                if which == "," {
                                    continue;
                                }
                                assert!(
                                    b.eat_punct('='),
                                    "serde shim derive: malformed bound attribute"
                                );
                                let lit = b.next().expect("bound value");
                                let text = literal_str(&lit);
                                match which.as_str() {
                                    "serialize" => attrs.bound_serialize = Some(text),
                                    "deserialize" => attrs.bound_deserialize = Some(text),
                                    other => {
                                        panic!("serde shim derive: unknown bound key `{other}`")
                                    }
                                }
                            }
                        }
                        other => {
                            panic!("serde shim derive: malformed bound attribute {other:?}")
                        }
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => panic!(
                    "serde shim derive: unsupported #[serde({other})] container attribute \
                     (this offline shim supports transparent/bound only)"
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Item parsing
// ---------------------------------------------------------------------------

/// Skip tokens that belong to a type until `,` at angle-bracket depth 0.
/// Returns `true` if the comma was consumed (more items may follow).
fn skip_type_until_comma(cur: &mut Cursor) -> bool {
    let mut depth = 0i32;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                cur.next();
                return true;
            }
            _ => {}
        }
        cur.next();
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let mut dummy = ContainerAttrs {
            transparent: false,
            bound_serialize: None,
            bound_deserialize: None,
        };
        // Field-level #[serde] attributes are unsupported; doc comments and
        // other attrs are skipped. A serde field attr would parse as a
        // container attr here and panic — which is the failure mode we want.
        skip_attrs(&mut cur, &mut dummy);
        if cur.peek().is_none() {
            break;
        }
        if cur.eat_ident("pub") {
            // visibility scope like pub(crate)
            if let Some(TokenTree::Group(g)) = cur.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    cur.next();
                }
            }
        }
        let name = cur.expect_ident();
        assert!(
            cur.eat_punct(':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        fields.push(name);
        if !skip_type_until_comma(&mut cur) {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.peek().is_none() {
        return 0;
    }
    let mut n = 0;
    loop {
        let mut dummy = ContainerAttrs {
            transparent: false,
            bound_serialize: None,
            bound_deserialize: None,
        };
        skip_attrs(&mut cur, &mut dummy);
        if cur.peek().is_none() {
            break;
        }
        if cur.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = cur.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    cur.next();
                }
            }
        }
        n += 1;
        if !skip_type_until_comma(&mut cur) {
            break;
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        let mut dummy = ContainerAttrs {
            transparent: false,
            bound_serialize: None,
            bound_deserialize: None,
        };
        skip_attrs(&mut cur, &mut dummy);
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident();
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if cur.eat_punct('=') {
            skip_type_until_comma(&mut cur);
        } else {
            cur.eat_punct(',');
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    let mut attrs = ContainerAttrs {
        transparent: false,
        bound_serialize: None,
        bound_deserialize: None,
    };
    skip_attrs(&mut cur, &mut attrs);

    if cur.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                cur.next();
            }
        }
    }

    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        panic!("serde shim derive: only structs and enums are supported");
    };
    let name = cur.expect_ident();

    // Generic parameter list.
    let mut generics_tokens: Vec<TokenTree> = Vec::new();
    let mut param_names: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    if cur.eat_punct('<') {
        let mut depth = 1i32;
        let mut expecting_param = true;
        while depth > 0 {
            let tok = cur.next().expect("serde shim derive: unbalanced generics");
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expecting_param => {
                    generics_tokens.push(tok.clone());
                    let life = cur.expect_ident();
                    param_names.push(format!("'{life}"));
                    generics_tokens.push(TokenTree::Ident(proc_macro::Ident::new(
                        &life,
                        proc_macro::Span::call_site(),
                    )));
                    expecting_param = false;
                    continue;
                }
                TokenTree::Ident(id) if depth == 1 && expecting_param => {
                    let word = id.to_string();
                    if word == "const" {
                        generics_tokens.push(tok.clone());
                        let cname = cur.expect_ident();
                        param_names.push(cname.clone());
                        generics_tokens.push(TokenTree::Ident(proc_macro::Ident::new(
                            &cname,
                            proc_macro::Span::call_site(),
                        )));
                        expecting_param = false;
                        continue;
                    }
                    param_names.push(word.clone());
                    type_params.push(word);
                    expecting_param = false;
                }
                _ => {}
            }
            generics_tokens.push(tok);
        }
    }
    let generics_decl = generics_tokens
        .into_iter()
        .collect::<TokenStream>()
        .to_string();

    // Optional where clause.
    let mut where_tokens: Vec<TokenTree> = Vec::new();
    if cur.eat_ident("where") {
        while let Some(tok) = cur.peek() {
            match tok {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => where_tokens.push(cur.next().unwrap()),
            }
        }
    }
    let where_clause = where_tokens
        .into_iter()
        .collect::<TokenStream>()
        .to_string();

    let kind = if is_enum {
        match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum body {other:?}"),
        }
    } else {
        match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: malformed struct body {other:?}"),
        }
    };

    Input {
        name,
        generics_decl,
        param_names,
        type_params,
        where_clause,
        transparent: attrs.transparent,
        bound_serialize: attrs.bound_serialize,
        bound_deserialize: attrs.bound_deserialize,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<...> Trait for Name<...> where ...` header.
fn impl_header(
    input: &Input,
    trait_path: &str,
    bound: &Option<String>,
    default_bound: &str,
) -> String {
    let mut out = String::new();
    if input.generics_decl.is_empty() {
        out.push_str(&format!("impl {trait_path} for {} ", input.name));
    } else {
        out.push_str(&format!(
            "impl<{}> {trait_path} for {}<{}> ",
            input.generics_decl,
            input.name,
            input.param_names.join(", ")
        ));
    }
    let mut predicates: Vec<String> = Vec::new();
    match bound {
        Some(text) => {
            if !text.trim().is_empty() {
                predicates.push(text.clone());
            }
        }
        None => {
            for p in &input.type_params {
                predicates.push(format!("{p}: {default_bound}"));
            }
        }
    }
    if !input.where_clause.trim().is_empty() {
        predicates.push(input.where_clause.clone());
    }
    if !predicates.is_empty() {
        out.push_str(&format!("where {} ", predicates.join(", ")));
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                assert!(
                    fields.len() == 1,
                    "serde shim derive: #[serde(transparent)] needs exactly one field"
                );
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
            }
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "Self::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "Self::{vn}(x0) => ::serde::Value::Obj(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Obj(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let header = impl_header(
        input,
        "::serde::Serialize",
        &input.bound_serialize,
        "::serde::Serialize",
    );
    format!("{header}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                format!(
                    "Ok(Self {{ {}: ::serde::Deserialize::from_value(v)? }})",
                    fields[0]
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::obj_field(fields, \"{f}\")?)?"
                        )
                    })
                    .collect();
                format!(
                    "match v {{ \
                       ::serde::Value::Obj(fields) => {{ \
                         let _ = &fields; Ok(Self {{ {} }}) }} \
                       other => Err(::serde::DeError::expected(\"object ({name})\", other)), \
                     }}",
                    inits.join(", ")
                )
            }
        }
        Kind::TupleStruct(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{ let items = v.as_arr().ok_or_else(|| \
                   ::serde::DeError::expected(\"array ({name})\", v))?; \
                   if items.len() != {n} {{ \
                     return Err(::serde::DeError::msg(format!(\
                       \"expected {n} elements for {name}, found {{}}\", items.len()))); }} \
                   Ok(Self({})) }}",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => "Ok(Self)".to_string(),
        Kind::Enum(variants) => {
            let mut unit_arms: Vec<String> = Vec::new();
            let mut data_arms: Vec<String> = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok(Self::{vn}),"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push(format!(
                            "\"{vn}\" => Ok(Self::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let items = inner.as_arr().ok_or_else(|| \
                             ::serde::DeError::expected(\"array ({name}::{vn})\", inner))?; \
                             if items.len() != {n} {{ \
                               return Err(::serde::DeError::msg(\"wrong arity for {name}::{vn}\")); }} \
                             Ok(Self::{vn}({})) }}",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::obj_field(fields, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let fields = inner.as_obj().ok_or_else(|| \
                             ::serde::DeError::expected(\"object ({name}::{vn})\", inner))?; \
                             let _ = &fields; Ok(Self::{vn} {{ {} }}) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {} \
                     other => Err(::serde::DeError::msg(format!(\
                       \"unknown variant `{{other}}` for {name}\"))), \
                   }}, \
                   ::serde::Value::Obj(fields) if fields.len() == 1 => {{ \
                     let (tag, inner) = &fields[0]; \
                     let _ = &inner; \
                     match tag.as_str() {{ \
                       {} \
                       other => Err(::serde::DeError::msg(format!(\
                         \"unknown variant `{{other}}` for {name}\"))), \
                     }} \
                   }} \
                   other => Err(::serde::DeError::expected(\"enum value ({name})\", other)), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let header = impl_header(
        input,
        "::serde::Deserialize",
        &input.bound_deserialize,
        "::serde::Deserialize",
    );
    format!(
        "{header}{{ fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

fn parse_generated(src: String) -> TokenStream {
    src.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid Rust ({e:?}): {src}"))
}

/// `#[derive(Serialize)]` — see the crate docs for the supported grammar.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    parse_generated(gen_serialize(&parsed))
}

/// `#[derive(Deserialize)]` — see the crate docs for the supported grammar.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    parse_generated(gen_deserialize(&parsed))
}
