//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses on top
//! of a fully deterministic runner:
//!
//! - every test derives its base seed from a stable FNV-1a hash of its
//!   module path and name, so runs are reproducible across machines and CI
//!   with no hidden OS entropy;
//! - `PROPTEST_SEED=<u64>` overrides the base seed for exploratory fuzzing;
//! - `PROPTEST_CASES=<n>` overrides the per-test case count;
//! - failures append a `cc 0x<seed>` line to
//!   `<crate>/proptest-regressions/<file>.txt` (the same convention as
//!   upstream), and those seeds are always replayed first.
//!
//! Shrinking is intentionally not implemented: with deterministic seeds a
//! failure is already reproducible, and the value printed in the panic is
//! the exact counterexample.

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Retry (up to a bounded number of times) until `f` accepts.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }

        /// Chain a dependent strategy.
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe type-erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.reason
            );
        }
    }

    /// `prop_flat_map` combinator.
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut StdRng) -> O::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::RngCore;
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        (int: $($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen()
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            use rand::Rng;
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag = rng.gen_range(-300.0..300.0f64);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }

    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any(std::marker::PhantomData)
        }
    }

    impl Strategy for Any<()> {
        type Value = ();
        fn generate(&self, _rng: &mut StdRng) {}
    }

    impl Arbitrary for () {
        type Strategy = Any<()>;
        fn arbitrary() -> Any<()> {
            Any(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;
    use std::io::Write;
    use std::path::PathBuf;

    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Optional fixed base seed (otherwise derived from the test name).
        pub seed: Option<u64>,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    /// Upstream spells the config type `ProptestConfig`.
    pub type ProptestConfig = Config;

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 64,
                seed: None,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Property violated.
        Fail(String),
        /// Case rejected (e.g. `prop_assume!`); does not count as failure.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl fmt::Display) -> TestCaseError {
            TestCaseError::Fail(msg.to_string())
        }

        /// Build a rejection.
        pub fn reject(msg: impl fmt::Display) -> TestCaseError {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// Per-case result type used by generated closures.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Stable FNV-1a, the base-seed derivation for deterministic runs.
    fn fnv1a(data: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in data.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// The deterministic case runner behind the `proptest!` macro.
    pub struct TestRunner {
        config: Config,
        name: String,
        regression_file: Option<PathBuf>,
    }

    impl TestRunner {
        /// Create a runner for one named test.
        ///
        /// `manifest_dir` and `source_file` locate the regression file:
        /// `<manifest_dir>/proptest-regressions/<source stem>.txt`.
        pub fn new(
            config: Config,
            name: &str,
            manifest_dir: &str,
            source_file: &str,
        ) -> TestRunner {
            let stem = std::path::Path::new(source_file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned());
            let regression_file = stem.map(|s| {
                PathBuf::from(manifest_dir)
                    .join("proptest-regressions")
                    .join(format!("{s}.txt"))
            });
            TestRunner {
                config,
                name: name.to_string(),
                regression_file,
            }
        }

        fn base_seed(&self) -> u64 {
            if let Ok(env_seed) = std::env::var("PROPTEST_SEED") {
                let parsed = env_seed
                    .strip_prefix("0x")
                    .map(|hex| u64::from_str_radix(hex, 16))
                    .unwrap_or_else(|| env_seed.parse::<u64>());
                if let Ok(seed) = parsed {
                    return seed;
                }
                panic!("PROPTEST_SEED must be a u64 (decimal or 0x-hex), got `{env_seed}`");
            }
            self.config.seed.unwrap_or_else(|| fnv1a(&self.name))
        }

        fn cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.config.cases)
        }

        /// Seeds pinned in the regression file, replayed before random cases.
        fn regression_seeds(&self) -> Vec<u64> {
            let Some(path) = &self.regression_file else {
                return Vec::new();
            };
            let Ok(text) = std::fs::read_to_string(path) else {
                return Vec::new();
            };
            text.lines()
                .filter_map(|line| {
                    let rest = line.trim().strip_prefix("cc ")?;
                    let token = rest.split_whitespace().next()?;
                    token
                        .strip_prefix("0x")
                        .map(|hex| u64::from_str_radix(hex, 16).ok())
                        .unwrap_or_else(|| token.parse::<u64>().ok())
                })
                .collect()
        }

        fn persist_failure(&self, seed: u64) {
            let Some(path) = &self.regression_file else {
                return;
            };
            if self.regression_seeds().contains(&seed) {
                return;
            }
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let header_needed = !path.exists();
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                if header_needed {
                    let _ = writeln!(
                        file,
                        "# Seeds for failure cases found by the proptest shim. It is\n\
                         # recommended to check this file in to source control so that\n\
                         # everyone who runs the test benefits from these saved cases."
                    );
                }
                let _ = writeln!(file, "cc 0x{seed:016x} # {}", self.name);
            }
        }

        fn run_case<S, F>(&self, strategy: &S, test: &F, seed: u64, origin: &str)
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    self.persist_failure(seed);
                    panic!(
                        "proptest: {} failed ({origin}, seed 0x{seed:016x})\n  input: {}\n  {msg}",
                        self.name, rendered
                    );
                }
                Err(payload) => {
                    self.persist_failure(seed);
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic".to_string());
                    panic!(
                        "proptest: {} panicked ({origin}, seed 0x{seed:016x})\n  input: {}\n  {msg}",
                        self.name, rendered
                    );
                }
            }
        }

        /// Replay pinned regression seeds, then run `config.cases` fresh
        /// deterministic cases.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: Fn(S::Value) -> TestCaseResult,
        {
            for seed in self.regression_seeds() {
                self.run_case(strategy, &test, seed, "regression");
            }
            let mut state = self.base_seed();
            for case in 0..self.cases() {
                // SplitMix-style sequence so case seeds are decorrelated.
                state = state
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5_4A32_D192_ED03);
                let seed = state ^ u64::from(case);
                self.run_case(strategy, &test, seed, "generated");
            }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{
        Config, ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

pub use test_runner::ProptestConfig;

/// Assert a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Discard the current case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define deterministic property tests. Supports the upstream surface this
/// workspace uses: an optional `#![proptest_config(...)]` header and `fn`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strategy,)+);
                let mut runner = $crate::test_runner::TestRunner::new(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                runner.run(&strategy, |values| {
                    let ($($pat,)+) = values;
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}
