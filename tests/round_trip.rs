//! Acceptance-scale round-trip validation (the PR's headline gate).
//!
//! Generates 2,000 seeded UEs over 6 simulated hours from a fully known
//! ground-truth model, replays every event through the two-level machine
//! (demanding 100% acceptance), re-fits each transition's sojourn law from
//! the replayed trace, and requires every re-fit to pass the two-sample
//! K–S test at α = 0.01 against its ground truth. A companion test pins
//! the byte-identical-across-engines golden hash. The same checks run at
//! 5,000 UEs / 12 h via `cargo run --release -p cn-verify --bin
//! verify_model`; quick-scale variants live in `crates/cn-verify/tests/`.

use cn_verify::{check_pinned, run_golden, run_round_trip, GroundTruth, RoundTripConfig};

#[test]
fn acceptance_round_trip_recovers_the_ground_truth() {
    let gt = GroundTruth::standard(11);
    let cfg = RoundTripConfig::acceptance(2023);
    assert!(cfg.population.total() >= 2_000);
    assert!(cfg.duration_hours >= 6.0);
    assert_eq!(cfg.alpha, 0.01);

    let report = run_round_trip(&gt, &cfg);

    // 100% replay acceptance: the generator never emits an illegal event.
    assert_eq!(
        report.violations,
        0,
        "replay rejected events: {:?}\n{}",
        report.rejection_histogram,
        report.report.render()
    );
    assert_eq!(report.acceptance_rate, 1.0);

    // Every ground-truth transition was exercised, recovered, and gated:
    // 5 top-level + 6 second-level sojourn laws, each passing the
    // two-sample K–S test at α = 0.01 plus the probability tolerance band.
    assert_eq!(report.checks.len(), 11);
    for c in &report.checks {
        assert!(
            c.ks_pass,
            "{} ({}) failed its K-S gate: {:?} vs critical {:?} on n={}\n{}",
            c.label,
            c.level,
            c.ks,
            c.critical_d,
            c.n_observed,
            report.report.render()
        );
        assert!(
            c.prob_pass,
            "{} ({}) probability off: refit {} vs truth {}",
            c.label, c.level, c.prob_refit, c.prob_truth
        );
    }
    assert!(report.all_pass(), "{}", report.report.render());
}

#[test]
fn golden_hashes_are_engine_invariant_and_pinned() {
    let gt = GroundTruth::standard(11);
    let report = run_golden(&gt.set, &cn_verify::golden::standard_config());
    // batch × threads {1,4}, sequential stream, sharded × shards {1,8},
    // out-of-core × budgets {all-memory, spill-everything}.
    assert_eq!(report.cases.len(), 7);
    assert!(report.consistent, "{}", report.render());
    check_pinned("standard-v1", report.hash().expect("consistent"))
        .unwrap_or_else(|e| panic!("{e}"));
}
