//! Cross-crate persistence: model snapshots and trace interchange formats
//! on realistic generated data, including corruption handling.

use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::io;

fn small_setup() -> (ModelSet, Trace) {
    let world = generate_world(&WorldConfig::new(PopulationMix::new(25, 10, 6), 1.0, 55));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(
        PopulationMix::new(25, 10, 6),
        Timestamp::at_hour(0, 12),
        2.0,
        9,
    );
    let synth = generate(&models, &config);
    (models, synth)
}

#[test]
fn model_snapshot_survives_json_and_still_generates() {
    let (models, _) = small_setup();
    let json = models.to_json().expect("serialize");
    let restored = ModelSet::from_json(&json).expect("deserialize");
    assert_eq!(models, restored);
    // The restored model must generate the identical trace for a seed.
    let config = GenConfig::new(
        PopulationMix::new(10, 4, 2),
        Timestamp::at_hour(0, 10),
        1.0,
        31,
    );
    assert_eq!(generate(&models, &config), generate(&restored, &config));
}

#[test]
fn trace_formats_round_trip_generated_data() {
    let (_, synth) = small_setup();
    // CSV
    let mut csv = Vec::new();
    io::write_csv(&synth, &mut csv).unwrap();
    assert_eq!(io::read_csv(&csv[..]).unwrap(), synth);
    // JSONL
    let mut jsonl = Vec::new();
    io::write_jsonl(&synth, &mut jsonl).unwrap();
    assert_eq!(io::read_jsonl(&jsonl[..]).unwrap(), synth);
    // Binary
    let bin = io::to_binary(&synth);
    assert_eq!(io::from_binary(&bin).unwrap(), synth);
    // Binary is the most compact of the three.
    assert!(bin.len() < csv.len());
    assert!(bin.len() < jsonl.len());
}

#[test]
fn corrupted_inputs_are_rejected_not_misread() {
    let (_, synth) = small_setup();
    let mut bin = io::to_binary(&synth);
    // Flip the record count.
    bin[9] ^= 0xFF;
    assert!(io::from_binary(&bin).is_err());

    let mut csv = Vec::new();
    io::write_csv(&synth, &mut csv).unwrap();
    let mut text = String::from_utf8(csv).unwrap();
    text.push_str("not,a,valid,row\n");
    assert!(io::read_csv(text.as_bytes()).is_err());

    assert!(ModelSet::from_json("{\"method\":\"Nope\"}").is_err());
}
