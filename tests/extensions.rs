//! Integration of the beyond-the-paper features: streaming synthesis,
//! message-level expansion, model inventory, and trace relabeling —
//! exercised together on one pipeline.

use cellular_cp_traffgen::gen::PopulationStream;
use cellular_cp_traffgen::mcn::{messages, nf_load};
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::{relabel, TraceSummary};

fn setup() -> (ModelSet, GenConfig) {
    let mix = PopulationMix::new(40, 18, 10);
    let world = generate_world(&WorldConfig::new(mix, 2.0, 123));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(mix.scaled(2.0), Timestamp::at_hour(0, 16), 2.0, 6);
    (models, config)
}

#[test]
fn streamed_population_drives_message_level_simulation() {
    let (models, config) = setup();
    // Stream (bounded memory), collect for verification.
    let trace: Trace = PopulationStream::new(&models, &config).collect();
    assert!(!trace.is_empty());

    // Expand into 3GPP signaling messages; the count must equal the sum of
    // the per-event flow lengths, and S1 must dominate.
    let expected: usize = trace
        .iter()
        .map(|r| messages::procedure(r.event).len())
        .sum();
    let expanded: Vec<_> = messages::expand(&trace).collect();
    assert_eq!(expanded.len(), expected);
    let per_interface = messages::interface_load(&trace);
    assert_eq!(per_interface.iter().sum::<u64>() as usize, expected);
    assert!(
        per_interface[0] > per_interface[1],
        "S1 must carry the most"
    );

    // The flow-derived transaction matrix agrees with the coarse one on NF
    // totals to within a small factor.
    let coarse = nf_load(
        &trace,
        &cellular_cp_traffgen::mcn::TransactionMatrix::default_epc(),
    );
    let fine = nf_load(&trace, &messages::derived_matrix());
    for nf in cellular_cp_traffgen::mcn::NetworkFunction::ALL {
        let (a, b) = (coarse.total(nf).max(1) as f64, fine.total(nf).max(1) as f64);
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 4.0, "{nf}: coarse {a} vs flow-derived {b}");
    }
}

#[test]
fn relabeled_synthesis_is_equivalent_for_the_mme() {
    let (models, config) = setup();
    let trace = generate(&models, &config);
    let (pseudonymized, map) = relabel::pseudonymize(&trace, 99);
    assert_eq!(map.len(), trace.ues().len());

    // The MME sees the same aggregate behavior under new identities.
    let before = Mme::new().run(&trace);
    let after = Mme::new().run(&pseudonymized);
    assert_eq!(before.processed, after.processed);
    assert_eq!(before.by_type, after.by_type);
    assert_eq!(before.protocol_errors, after.protocol_errors);
    assert_eq!(before.peak_connected, after.peak_connected);

    // Summaries agree except for identity-bound fields.
    let sa = TraceSummary::of(&trace);
    let sb = TraceSummary::of(&pseudonymized);
    assert_eq!(sa.events, sb.events);
    assert_eq!(sa.ues, sb.ues);
    assert_eq!(sa.by_event, sb.by_event);
}

#[test]
fn model_inventory_reflects_the_fit() {
    let (models, _) = setup();
    let inv = cellular_cp_traffgen::fit_crate::inspect::inventory(&models);
    assert_eq!(inv.method, "Ours");
    assert_eq!(inv.modeled_ues, [40, 18, 10]);
    assert!(inv.total_models >= 72);
    assert!(cellular_cp_traffgen::fit_crate::inspect::verify(&models).is_empty());
}

#[test]
fn compacted_models_still_generate_similar_traffic() {
    let (models, config) = setup();
    let compacted = cellular_cp_traffgen::fit_crate::compact_model_set(&models, 64);
    assert!(cellular_cp_traffgen::fit_crate::inspect::verify(&compacted).is_empty());
    let a = generate(&models, &config);
    let b = generate(&compacted, &config);
    let ratio = a.len().max(b.len()) as f64 / a.len().min(b.len()).max(1) as f64;
    assert!(ratio < 1.5, "{} vs {} events", a.len(), b.len());
    // And the snapshot is materially smaller.
    let full = models.to_json().unwrap().len();
    let small = compacted.to_json().unwrap().len();
    assert!(small < full, "{small} vs {full}");
}

#[test]
fn state_machine_dot_renders() {
    use cellular_cp_traffgen::statemachine::dot;
    let fig5 = dot::two_level_dot();
    let fig6 = dot::fiveg_sa_dot();
    assert!(fig5.contains("TAU_S_IDLE"));
    assert!(!fig6.contains("TAU"));
}
