//! The reproduction's regression gate: every EXPERIMENTS.md shape claim,
//! machine-checked at quick scale (also available as `repro verdicts`).

use cellular_cp_traffgen::eval::verdicts::verdicts;
use cellular_cp_traffgen::eval::{ExperimentConfig, Lab};

#[test]
fn all_paper_shape_claims_hold() {
    let lab = Lab::new(ExperimentConfig::quick());
    let (table, all_pass) = verdicts(&lab);
    assert!(all_pass, "\n{table}");
}
