//! End-to-end integration: world → fit → generate → validate, across all
//! four methods of Table 3.

use cellular_cp_traffgen::eval::breakdown::{breakdown, BreakdownRow};
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::statemachine::replay_ue;

fn world() -> Trace {
    generate_world(&WorldConfig::new(PopulationMix::new(80, 35, 20), 2.0, 404))
}

#[test]
fn full_pipeline_all_methods() {
    let world = world();
    assert!(world.len() > 5_000, "world too small: {}", world.len());
    for method in Method::ALL {
        let models = fit(&world, &FitConfig::new(method));
        let config = GenConfig::new(
            PopulationMix::new(80, 35, 20),
            Timestamp::at_hour(0, 18),
            1.0,
            1,
        );
        let synth = generate(&models, &config);
        assert!(!synth.is_empty(), "{method}: empty synthesis");
        assert!(
            cellular_cp_traffgen::trace::check_well_formed(&synth).is_empty(),
            "{method}: malformed trace"
        );
        // All events in window, all labeled with the right device.
        for r in synth.iter() {
            assert!(r.t >= config.start && r.t < config.end());
            assert_eq!(r.device, config.device_of(r.ue.get()));
        }
    }
}

#[test]
fn two_level_methods_are_conformant_baselines_are_not() {
    let world = world();
    let mix = PopulationMix::new(80, 35, 20);
    let config = GenConfig::new(mix, Timestamp::at_hour(0, 17), 2.0, 2);

    let ours = generate(&fit(&world, &FitConfig::new(Method::Ours)), &config);
    let mut ours_violations = 0usize;
    for (_, events) in ours.per_ue().iter() {
        ours_violations += replay_ue(events).violations.len();
    }
    assert_eq!(ours_violations, 0, "Ours must be protocol-conformant");

    let base = generate(&fit(&world, &FitConfig::new(Method::Base)), &config);
    let mut base_violations = 0usize;
    for (_, events) in base.per_ue().iter() {
        base_violations += replay_ue(events).violations.len();
    }
    assert!(
        base_violations > 0,
        "the EMM–ECM baseline should violate the two-level machine"
    );
}

#[test]
fn method_ordering_on_ho_placement() {
    // The paper's central macroscopic claim: two-level methods put every
    // HO in CONNECTED; EMM–ECM methods leak HO into IDLE.
    let world = world();
    let mix = PopulationMix::new(80, 35, 20);
    let config = GenConfig::new(mix, Timestamp::at_hour(0, 18), 2.0, 3);
    for method in Method::ALL {
        let synth = generate(&fit(&world, &FitConfig::new(method)), &config);
        let b = breakdown(&synth, DeviceType::ConnectedCar);
        let ho_idle = b.share(BreakdownRow::HoIdle);
        match method {
            Method::B2 | Method::Ours => {
                assert_eq!(ho_idle, 0.0, "{method}: HO leaked into IDLE")
            }
            Method::Base | Method::B1 => {
                assert!(ho_idle > 0.0, "{method}: expected the HO(IDLE) artifact")
            }
        }
    }
}

#[test]
fn population_scaling_is_roughly_linear() {
    // Design goal 3: synthesize for a 5× population; volume scales ~5×.
    let world = world();
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let small = GenConfig::new(
        PopulationMix::new(80, 35, 20),
        Timestamp::at_hour(0, 18),
        1.0,
        4,
    );
    let large = GenConfig::new(
        PopulationMix::new(400, 175, 100),
        Timestamp::at_hour(0, 18),
        1.0,
        4,
    );
    let n_small = generate(&models, &small).len() as f64;
    let n_large = generate(&models, &large).len() as f64;
    let ratio = n_large / n_small.max(1.0);
    assert!(
        (3.0..7.0).contains(&ratio),
        "expected ~5× volume, got {ratio:.2}× ({n_small} → {n_large})"
    );
}

#[test]
fn generation_is_deterministic_and_seed_sensitive() {
    let world = world();
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let mix = PopulationMix::new(30, 12, 8);
    let config = GenConfig::new(mix, Timestamp::at_hour(0, 12), 1.0, 77);
    let a = generate(&models, &config);
    let b = generate(&models, &config);
    assert_eq!(a, b);
    let mut other = config;
    other.seed = 78;
    assert_ne!(a, generate(&models, &other));
}
