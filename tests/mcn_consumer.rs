//! The MCN consumer integration: generated traffic drives per-UE state and
//! the queueing model with sensible load behavior.

use cellular_cp_traffgen::prelude::*;

fn busy_hour_trace(scale: f64, seed: u64) -> Trace {
    let mix = PopulationMix::new(60, 25, 15);
    let world = generate_world(&WorldConfig::new(mix, 2.0, 88));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(mix.scaled(scale), Timestamp::at_hour(0, 18), 1.0, seed);
    generate(&models, &config)
}

#[test]
fn conformant_traffic_means_zero_protocol_errors() {
    let trace = busy_hour_trace(1.0, 1);
    let report = Mme::new().run(&trace);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.processed, trace.len() as u64);
    assert!(report.ues > 0);
    assert!(report.peak_connected > 0);
}

#[test]
fn more_workers_never_hurt_latency() {
    let trace = busy_hour_trace(4.0, 2);
    let profile = ServiceProfile::default_mme();
    let mut last = f64::INFINITY;
    for workers in [1usize, 2, 4] {
        let report = QueueSim::new(profile, workers)
            .run(&trace)
            .expect("non-empty");
        assert!(
            report.p99_latency_ms <= last + 1e-9,
            "workers {workers}: p99 {} worse than previous {last}",
            report.p99_latency_ms
        );
        last = report.p99_latency_ms;
    }
}

#[test]
fn larger_population_raises_utilization() {
    let profile = ServiceProfile::default_mme();
    let small = QueueSim::new(profile, 2)
        .run(&busy_hour_trace(1.0, 3))
        .expect("non-empty");
    let big = QueueSim::new(profile, 2)
        .run(&busy_hour_trace(6.0, 3))
        .expect("non-empty");
    assert!(
        big.utilization > small.utilization,
        "utilization {} ≤ {}",
        big.utilization,
        small.utilization
    );
}

#[test]
fn mixed_streams_preserve_per_ue_order_for_the_mme() {
    // Even after merging thousands of per-UE streams, the MME sees each
    // UE's events in causal order (the trace is globally time-sorted and
    // per-UE times are strictly increasing).
    let trace = busy_hour_trace(2.0, 4);
    let view = trace.per_ue();
    for (_, events) in view.iter() {
        for w in events.windows(2) {
            assert!(w[0].t < w[1].t, "per-UE timestamps must strictly increase");
        }
    }
}
