//! 5G adaptation end to end: LTE fit → NSA/SA scaling → generation →
//! Table 7-style properties.

use cellular_cp_traffgen::eval::breakdown::breakdown_simple;
use cellular_cp_traffgen::fiveg::FiveGMode;
use cellular_cp_traffgen::prelude::*;

fn lte_models() -> (ModelSet, PopulationMix) {
    let mix = PopulationMix::new(70, 40, 18);
    let world = generate_world(&WorldConfig::new(mix, 2.0, 66));
    (fit(&world, &FitConfig::new(Method::Ours)), mix)
}

fn day_trace(models: &ModelSet, mix: PopulationMix, seed: u64) -> Trace {
    let config = GenConfig::new(mix, Timestamp::at_hour(0, 6), 14.0, seed);
    generate(models, &config)
}

#[test]
fn nsa_increases_ho_share_sa_removes_tau() {
    let (lte, mix) = lte_models();
    let nsa = adapt_model(&lte, &ScalingProfile::NSA);
    let sa = adapt_model(&lte, &ScalingProfile::SA);

    let t_lte = day_trace(&lte, mix, 1);
    let t_nsa = day_trace(&nsa, mix, 2);
    let t_sa = day_trace(&sa, mix, 3);

    let ho_share = |t: &Trace| {
        let s = breakdown_simple(t, DeviceType::ConnectedCar);
        s[EventType::Handover.code() as usize]
    };
    let lte_ho = ho_share(&t_lte);
    let nsa_ho = ho_share(&t_nsa);
    assert!(
        nsa_ho > lte_ho * 1.5,
        "NSA HO share {nsa_ho:.4} not well above LTE {lte_ho:.4}"
    );

    assert_eq!(
        t_sa.iter().filter(|r| r.event == EventType::Tau).count(),
        0,
        "5G SA must have no TAU events"
    );
    // SA still produces real traffic.
    assert!(
        t_sa.len() > 200,
        "SA trace suspiciously small: {}",
        t_sa.len()
    );
}

#[test]
fn custom_scaling_factors_are_monotone() {
    let (lte, mix) = lte_models();
    let mild = adapt_model(
        &lte,
        &ScalingProfile {
            mode: FiveGMode::Nsa,
            ho_factor: 2.0,
        },
    );
    let wild = adapt_model(
        &lte,
        &ScalingProfile {
            mode: FiveGMode::Nsa,
            ho_factor: 8.0,
        },
    );
    let count_ho = |models: &ModelSet, seed| {
        day_trace(models, mix, seed)
            .iter()
            .filter(|r| r.event == EventType::Handover)
            .count()
    };
    let lte_n = count_ho(&lte, 10);
    let mild_n = count_ho(&mild, 10);
    let wild_n = count_ho(&wild, 10);
    assert!(
        lte_n < mild_n,
        "×2 did not increase HO ({lte_n} → {mild_n})"
    );
    assert!(mild_n < wild_n, "×8 did not beat ×2 ({mild_n} → {wild_n})");
}

#[test]
fn nsa_traces_still_drive_the_mme_cleanly() {
    // NSA keeps the LTE two-level machine, so its traces stay conformant.
    let (lte, mix) = lte_models();
    let nsa = adapt_model(&lte, &ScalingProfile::NSA);
    let trace = day_trace(&nsa, mix, 4);
    let report = Mme::new().run(&trace);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.processed, trace.len() as u64);
}
