//! Picking a telemetry sampling rate with generated traffic (§3.1 use
//! case 1).
//!
//! Sampling-based monitoring estimates per-event-type volumes from a
//! sampled substream. Too low a rate misses rare events (ATCH/DTCH); too
//! high a rate wastes collector capacity. With a realistic generated trace
//! we can evaluate the estimation error per rate *before* deploying:
//! sample each 5-minute window at rate `p`, estimate counts as
//! `observed / p`, and report the worst relative error over windows and
//! event types.
//!
//! Run with: `cargo run --release --example monitoring`

use cellular_cp_traffgen::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WINDOW_MS: u64 = 5 * 60 * 1_000;

fn main() {
    let mix = PopulationMix::new(300, 120, 60);
    let world = generate_world(&WorldConfig::new(mix, 2.0, 17));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(mix.scaled(4.0), Timestamp::at_hour(0, 17), 3.0, 5);
    let trace = generate(&models, &config);
    println!(
        "generated {} events over 3 busy hours for {} UEs\n",
        trace.len(),
        config.population.total()
    );

    // True per-window per-type counts.
    let start = trace.start().expect("non-empty").as_millis();
    let end = trace.end().expect("non-empty").as_millis() + 1;
    let n_windows = ((end - start).div_ceil(WINDOW_MS)) as usize;
    let mut truth = vec![[0u32; 6]; n_windows];
    for r in trace.iter() {
        let w = ((r.t.as_millis() - start) / WINDOW_MS) as usize;
        truth[w][r.event.code() as usize] += 1;
    }

    println!(
        "{:>9} | worst relative error of per-window count estimates",
        "rate"
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mut chosen: Option<f64> = None;
    for &p in &[0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5] {
        let mut sampled = vec![[0u32; 6]; n_windows];
        for r in trace.iter() {
            if rng.gen::<f64>() < p {
                let w = ((r.t.as_millis() - start) / WINDOW_MS) as usize;
                sampled[w][r.event.code() as usize] += 1;
            }
        }
        // Worst relative error over (window, event-type) cells that carry
        // meaningful volume (≥ 50 events — tiny cells are noise-dominated
        // at any rate).
        let mut worst: f64 = 0.0;
        for (t_row, s_row) in truth.iter().zip(&sampled) {
            for (t_cell, s_cell) in t_row.iter().zip(s_row) {
                if *t_cell >= 50 {
                    let estimate = f64::from(*s_cell) / p;
                    worst = worst.max((estimate - f64::from(*t_cell)).abs() / f64::from(*t_cell));
                }
            }
        }
        println!("{:>8.1}% | {:>6.1}%", p * 100.0, worst * 100.0);
        if worst <= 0.10 && chosen.is_none() {
            chosen = Some(p);
        }
    }

    match chosen {
        Some(p) => println!(
            "\nlowest sampling rate keeping busy-cell estimates within 10%: {:.1}%",
            p * 100.0
        ),
        None => println!("\nno tested rate met the 10% target; sample more aggressively"),
    }
}
