//! Bounded-memory trace export at scale, on every core — with live
//! telemetry instead of ad-hoc printf counters.
//!
//! A week of a large population is hundreds of millions of events — too
//! big to materialize. `ShardedStream` partitions the population into
//! per-core UE shards, runs each shard's loser-tree merge on its own
//! worker thread, and hands the consumer a globally time-ordered stream
//! (byte-identical to the sequential `PopulationStream` and to the batch
//! engine) through bounded block channels — so a slow disk writer
//! backpressures the generators instead of buffering the trace.
//!
//! This example exports a multi-hour trace to CSV-on-disk while a
//! `cn-obs` [`Registry`] watches both sides of the pipe: the stream's own
//! `cn_gen_*` instrumentation (per-shard production, merge totals,
//! backpressure stall time) plus an example-level written-events counter
//! and export span. Progress is reported from periodic registry
//! snapshots, and the full Prometheus exposition is printed at the end —
//! the same text a scrape endpoint would serve.
//!
//! The export drains the **fallible** API — `try_next()` records, then
//! `finish()` for the `StreamStats` receipt — so a worker failure
//! surfaces as a typed `StreamError` that aborts the export instead of
//! silently truncating the file: an exporter that ends on `Ok(None)` and
//! a `finish()` receipt *knows* it wrote the whole trace.
//!
//! Run with: `cargo run --release --example streaming_export`

use cellular_cp_traffgen::gen::ShardedStream;
use cellular_cp_traffgen::obs::{Registry, Span};
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::TraceSummary;
use std::io::{BufWriter, Write};
use std::time::Instant;

/// Print one progress line from a registry snapshot: everything in it —
/// shard liveness, merge totals, backpressure — comes from the metrics
/// layer, not from hand-maintained loop variables.
fn report(registry: &Registry, started: Instant) {
    let snap = registry.snapshot();
    let written = snap.counter("cn_example_export_written_total").unwrap_or(0);
    let stalled_ms = snap
        .counter_total("cn_gen_shard_stall_ns_total")
        .unwrap_or(0)
        / 1_000_000;
    let rate = written as f64 / started.elapsed().as_secs_f64();
    eprintln!(
        "  ... {written} events written ({rate:.0} events/s), \
         {} shard workers, {stalled_ms} ms total backpressure stall",
        snap.gauge("cn_gen_shard_workers").unwrap_or(0),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fit once at modest scale.
    let model_mix = PopulationMix::new(120, 50, 25);
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 77));
    let models = fit(&world, &FitConfig::new(Method::Ours));

    // Stream a 12-hour trace for a 10× population straight to disk,
    // sharded across all cores (config.threads = 0 → one shard per core).
    let config = GenConfig::new(model_mix.scaled(10.0), Timestamp::at_hour(0, 8), 12.0, 5);
    let path = std::env::temp_dir().join("cp_traffgen_stream.csv");
    let mut out = BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "t_ms,ue,device,event")?;

    let registry = Registry::new();
    let written = registry.counter("cn_example_export_written_total");
    let span = Span::start(&registry, "cn_example_export_ns");
    let mut stream = ShardedStream::new_observed(&models, &config, &registry);
    let started = Instant::now();
    let mut next_report = 50_000;
    // Drain through the fallible API: a worker panic arrives here as a
    // typed StreamError (and `?` aborts the export loudly), never as an
    // early `None` that would leave a truncated CSV posing as complete.
    while let Some(rec) = stream.try_next()? {
        writeln!(
            out,
            "{},{},{},{}",
            rec.t.as_millis(),
            rec.ue.get(),
            rec.device.abbrev(),
            rec.event.mnemonic()
        )?;
        written.inc();
        if written.get() >= next_report {
            report(&registry, started);
            next_report += 50_000;
        }
    }
    out.flush()?;
    // finish() is the export's receipt: it joins the workers and refuses
    // to report success unless every shard completed.
    let stats = stream.finish()?;
    span.finish();
    let total = written.get();
    assert_eq!(stats.events, total, "the receipt counts what we wrote");
    let rate = total as f64 / started.elapsed().as_secs_f64();
    let workers = if stats.outcomes.is_empty() {
        "ran inline, no worker threads".to_string()
    } else {
        format!("{} shard workers completed", stats.outcomes.len())
    };
    println!(
        "streamed {total} events for {} UEs to {} ({rate:.0} events/s end to end; {workers})",
        config.population.total(),
        path.display(),
    );

    // The final snapshot is the pipeline's flight recorder. The merge
    // counter must agree exactly with what reached the file — the same
    // ledger invariant `gen_bench --metrics` gates on.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("cn_gen_merge_events_total"), Some(total));
    println!(
        "\n# final metrics (Prometheus exposition)\n{}",
        snap.prometheus()
    );

    // Read back and summarize — the interchange formats round-trip.
    let data = std::fs::read(&path)?;
    let trace =
        cellular_cp_traffgen::trace::io::read_csv(&data[..]).expect("re-read what we just wrote");
    println!("{}", TraceSummary::of(&trace));
    assert_eq!(trace.len() as u64, total);
    std::fs::remove_file(&path)?;
    Ok(())
}
