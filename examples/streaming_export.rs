//! Bounded-memory trace export at scale, on every core.
//!
//! A week of a large population is hundreds of millions of events — too
//! big to materialize. `ShardedStream` partitions the population into
//! per-core UE shards, runs each shard's loser-tree merge on its own
//! worker thread, and hands the consumer a globally time-ordered stream
//! (byte-identical to the sequential `PopulationStream` and to the batch
//! engine) through bounded block channels — so a slow disk writer
//! backpressures the generators instead of buffering the trace. This
//! example exports a multi-hour trace to CSV-on-disk with live
//! throughput reporting, then reads it back and prints its summary.
//!
//! Run with: `cargo run --release --example streaming_export`

use cellular_cp_traffgen::gen::ShardedStream;
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::TraceSummary;
use std::io::{BufWriter, Write};
use std::time::Instant;

fn main() -> std::io::Result<()> {
    // Fit once at modest scale.
    let model_mix = PopulationMix::new(120, 50, 25);
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 77));
    let models = fit(&world, &FitConfig::new(Method::Ours));

    // Stream a 12-hour trace for a 10× population straight to disk,
    // sharded across all cores (config.threads = 0 → one shard per core).
    let config = GenConfig::new(model_mix.scaled(10.0), Timestamp::at_hour(0, 8), 12.0, 5);
    let path = std::env::temp_dir().join("cp_traffgen_stream.csv");
    let mut out = BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "t_ms,ue,device,event")?;

    let mut stream = ShardedStream::new(&models, &config);
    let started = Instant::now();
    let mut written = 0u64;
    let mut last_report = 0u64;
    while let Some(rec) = stream.next() {
        writeln!(
            out,
            "{},{},{},{}",
            rec.t.as_millis(),
            rec.ue.get(),
            rec.device.abbrev(),
            rec.event.mnemonic()
        )?;
        written += 1;
        if written - last_report >= 50_000 {
            let rate = written as f64 / started.elapsed().as_secs_f64();
            eprintln!(
                "  ... {written} events streamed ({rate:.0} events/s), {} shards live",
                stream.live_shards()
            );
            last_report = written;
        }
    }
    out.flush()?;
    let rate = written as f64 / started.elapsed().as_secs_f64();
    println!(
        "streamed {written} events for {} UEs to {} ({rate:.0} events/s end to end)",
        config.population.total(),
        path.display()
    );

    // Read back and summarize — the interchange formats round-trip.
    let data = std::fs::read(&path)?;
    let trace =
        cellular_cp_traffgen::trace::io::read_csv(&data[..]).expect("re-read what we just wrote");
    println!("\n{}", TraceSummary::of(&trace));
    assert_eq!(trace.len() as u64, written);
    std::fs::remove_file(&path)?;
    Ok(())
}
