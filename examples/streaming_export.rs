//! Bounded-memory trace export at scale.
//!
//! A week of a large population is hundreds of millions of events — too
//! big to materialize. `PopulationStream` keeps one live generator per UE
//! (a few hundred bytes each) and yields a globally time-ordered stream,
//! so the trace goes straight to disk. This example exports a multi-hour
//! trace to CSV-on-disk, then reads it back and prints its summary.
//!
//! Run with: `cargo run --release --example streaming_export`

use cellular_cp_traffgen::gen::PopulationStream;
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::TraceSummary;
use std::io::{BufWriter, Write};

fn main() -> std::io::Result<()> {
    // Fit once at modest scale.
    let model_mix = PopulationMix::new(120, 50, 25);
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 77));
    let models = fit(&world, &FitConfig::new(Method::Ours));

    // Stream a 12-hour trace for a 10× population straight to disk.
    let config = GenConfig::new(model_mix.scaled(10.0), Timestamp::at_hour(0, 8), 12.0, 5);
    let path = std::env::temp_dir().join("cp_traffgen_stream.csv");
    let mut out = BufWriter::new(std::fs::File::create(&path)?);
    writeln!(out, "t_ms,ue,device,event")?;

    let mut stream = PopulationStream::new(&models, &config);
    let mut written = 0u64;
    let mut last_report = 0u64;
    while let Some(rec) = stream.next() {
        writeln!(
            out,
            "{},{},{},{}",
            rec.t.as_millis(),
            rec.ue.get(),
            rec.device.abbrev(),
            rec.event.mnemonic()
        )?;
        written += 1;
        if written - last_report >= 50_000 {
            eprintln!("  ... {written} events streamed, {} UEs live", stream.live_ues());
            last_report = written;
        }
    }
    out.flush()?;
    println!(
        "streamed {written} events for {} UEs to {}",
        config.population.total(),
        path.display()
    );

    // Read back and summarize — the interchange formats round-trip.
    let data = std::fs::read(&path)?;
    let trace = cellular_cp_traffgen::trace::io::read_csv(&data[..])
        .expect("re-read what we just wrote");
    println!("\n{}", TraceSummary::of(&trace));
    assert_eq!(trace.len() as u64, written);
    std::fs::remove_file(&path)?;
    Ok(())
}
