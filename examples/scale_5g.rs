//! Projecting 4G models to 5G (§6, §8.2).
//!
//! Fits the LTE model, derives 5G NSA (HO ×4.6, LTE machine) and 5G SA
//! (HO ×3.0, TAU removed — Fig. 6 machine) variants, synthesizes a day of
//! traffic from each, and compares handover load — the quantity 5G mmWave
//! deployments most affect.
//!
//! Run with: `cargo run --release --example scale_5g`

use cellular_cp_traffgen::eval::breakdown::breakdown_simple;
use cellular_cp_traffgen::fiveg::FiveGMode;
use cellular_cp_traffgen::prelude::*;

fn main() {
    let mix = PopulationMix::new(180, 70, 35);
    let world = generate_world(&WorldConfig::new(mix, 2.0, 21));
    let lte = fit(&world, &FitConfig::new(Method::Ours));

    let nsa = adapt_model(&lte, &ScalingProfile::NSA);
    let sa = adapt_model(&lte, &ScalingProfile::SA);
    // A custom profile, e.g. a denser small-cell deployment: HO ×7.
    let dense = adapt_model(
        &lte,
        &ScalingProfile {
            mode: FiveGMode::Nsa,
            ho_factor: 7.0,
        },
    );

    let synth = |models: &ModelSet, seed: u64| {
        let config = GenConfig::new(mix, Timestamp::at_hour(0, 0), 24.0, seed);
        generate(models, &config)
    };
    let traces = [
        ("LTE", synth(&lte, 1)),
        ("5G NSA (HO x4.6)", synth(&nsa, 2)),
        ("5G SA  (HO x3.0)", synth(&sa, 3)),
        ("dense  (HO x7.0)", synth(&dense, 4)),
    ];

    println!(
        "{:<18} {:>9} | {:>7} {:>7} {:>7}  (HO share by device)",
        "deployment", "events", "P", "CC", "T"
    );
    for (name, trace) in &traces {
        print!("{:<18} {:>9} |", name, trace.len());
        for device in DeviceType::ALL {
            let shares = breakdown_simple(trace, device);
            print!(
                "{:>7.1}%",
                shares[EventType::Handover.code() as usize] * 100.0
            );
        }
        println!();
    }

    // SA must be TAU-free (no tracking-area updates in the 5G SA machine).
    let sa_taus = traces[2]
        .1
        .iter()
        .filter(|r| r.event == EventType::Tau)
        .count();
    println!("\nTAU events in the 5G SA trace: {sa_taus} (must be 0)");
    assert_eq!(sa_taus, 0);
}
