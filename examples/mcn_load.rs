//! Core-network capacity planning with generated traffic (§3.1 use case).
//!
//! Synthesizes busy-hour control traffic for growing UE populations and
//! drives the miniature MME behind a queueing model to answer: *how many
//! signaling workers does each population need to keep p99 latency under
//! 10 ms?*
//!
//! Run with: `cargo run --release --example mcn_load`

use cellular_cp_traffgen::mcn::{nf_load, NetworkFunction, TransactionMatrix};
use cellular_cp_traffgen::prelude::*;

fn main() {
    // Fit once on a modest ground truth.
    let model_mix = PopulationMix::new(160, 60, 30);
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 11));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    println!(
        "fitted {} cluster-hour models on {} events\n",
        models.model_count(),
        world.len()
    );

    println!(
        "{:>8} {:>9} {:>8} | per workers: p99 latency (ms) / utilization",
        "UEs", "events", "errors"
    );
    let service = ServiceProfile::default_mme();
    for scale in [1.0, 4.0, 16.0] {
        let mix = model_mix.scaled(scale);
        let config = GenConfig::new(mix, Timestamp::at_hour(0, 18), 1.0, 7);
        let trace = generate(&models, &config);

        // Drive per-UE state (event-owner labeling is what makes this
        // possible — design goal 2 of the paper).
        let report = Mme::new().run(&trace);

        print!(
            "{:>8} {:>9} {:>8} |",
            mix.total(),
            report.processed,
            report.protocol_errors
        );
        for workers in [1usize, 2, 4, 8] {
            match QueueSim::new(service, workers).run(&trace) {
                Some(q) => print!(
                    "  w{}: {:>7.2}/{:>4.1}%",
                    workers,
                    q.p99_latency_ms,
                    q.utilization * 100.0
                ),
                None => print!("  w{workers}:       -"),
            }
        }
        println!();
    }

    // Per-network-function fan-out (Dababneh-style capacity view): which
    // EPC functions feel the load?
    let trace = generate(
        &models,
        &GenConfig::new(model_mix.scaled(16.0), Timestamp::at_hour(0, 18), 1.0, 7),
    );
    let load = nf_load(&trace, &TransactionMatrix::default_epc());
    println!("\nper-NF transactions for the 16x busy hour:");
    for nf in NetworkFunction::ALL {
        println!(
            "  {:<5} {:>9} tx  ({:>7.1} tx/s)",
            nf.name(),
            load.total(nf),
            load.rate(nf)
        );
    }

    println!(
        "\npeak simultaneously-connected UEs scale with population; \
         use `--release` timings as a first-order sizing signal."
    );
}
