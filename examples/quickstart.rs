//! Quickstart: world → fit → generate → compare.
//!
//! Simulates a small "carrier" ground truth, fits the paper's two-level
//! Semi-Markov model, synthesizes a busy-hour trace for a 3× larger
//! population, and compares event breakdowns side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use cellular_cp_traffgen::eval::breakdown::breakdown_simple;
use cellular_cp_traffgen::prelude::*;

fn main() {
    // 1. Ground truth: 2 simulated days of 350 UEs.
    let model_mix = PopulationMix::new(220, 85, 45);
    println!(
        "simulating ground-truth world ({} UEs, 2 days)...",
        model_mix.total()
    );
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 7));
    println!("  {} events", world.len());

    // 2. Fit the paper's model (two-level machine, clustering, empirical
    //    CDFs — Table 3's "Ours").
    println!("fitting the two-level Semi-Markov model...");
    let models = fit(&world, &FitConfig::new(Method::Ours));
    println!(
        "  {} cluster-hour models instantiated",
        models.model_count()
    );

    // 3. Synthesize one busy hour for a 3× larger population.
    let synth_mix = model_mix.scaled(3.0);
    println!(
        "synthesizing busy-hour trace for {} UEs...",
        synth_mix.total()
    );
    let config = GenConfig::new(synth_mix, Timestamp::at_hour(0, 18), 1.0, 99);
    let synthetic = generate(&models, &config);
    println!(
        "  {} events from {} active UEs",
        synthetic.len(),
        synthetic.ues().len()
    );

    // 4. Compare breakdowns (real busy hour vs synthesized busy hour).
    let real_busy = world.window(Timestamp::at_hour(0, 18), Timestamp::at_hour(0, 19));
    println!("\n{:<14} {:>12} {:>12}", "event", "real 18h", "synth 18h");
    for device in DeviceType::ALL {
        println!("--- {}", device.name());
        let r = breakdown_simple(&real_busy, device);
        let s = breakdown_simple(&synthetic, device);
        for e in EventType::ALL {
            println!(
                "{:<14} {:>11.1}% {:>11.1}%",
                e.mnemonic(),
                r[e.code() as usize] * 100.0,
                s[e.code() as usize] * 100.0
            );
        }
    }

    // 5. Every synthesized per-UE stream is protocol-conformant.
    let mut violations = 0usize;
    for (_, events) in synthetic.per_ue().iter() {
        violations += cellular_cp_traffgen::statemachine::replay_ue(events)
            .violations
            .len();
    }
    println!("\nprotocol violations in synthesized trace: {violations}");
    assert_eq!(violations, 0, "two-level output must be conformant");
}
