//! Planning for population growth (§3.1 use case 2).
//!
//! Industry projections say connected-device counts grow severalfold in a
//! few years. With a fitted model, "what does that do to my core?" becomes
//! a computation: synthesize the busy hour at each projected population,
//! measure per-NF transaction rates, find the minimum worker count that
//! holds p99 signaling latency under a target, and check what an overload
//! policy would shed if provisioning lags a year behind.
//!
//! Run with: `cargo run --release --example growth_planning`

use cellular_cp_traffgen::mcn::{nf_load, overload, NetworkFunction, TransactionMatrix};
use cellular_cp_traffgen::prelude::*;
use cellular_cp_traffgen::trace::TraceSummary;

const P99_TARGET_MS: f64 = 10.0;

fn min_workers(trace: &Trace, profile: ServiceProfile) -> Option<usize> {
    (1..=64).find(|&w| {
        QueueSim::new(profile, w)
            .run(trace)
            .is_some_and(|r| r.p99_latency_ms <= P99_TARGET_MS)
    })
}

fn main() {
    let model_mix = PopulationMix::new(200, 80, 40);
    let world = generate_world(&WorldConfig::new(model_mix, 2.0, 31));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let service = ServiceProfile::default_mme();
    println!(
        "fitted on {} UEs; busy-hour projections at growing populations:\n",
        model_mix.total()
    );
    println!(
        "{:>6} {:>9} {:>8} {:>12} {:>12} | workers for p99<={}ms",
        "scale", "UEs", "events", "events/s", "MME tx/s", P99_TARGET_MS
    );

    let mut year1_trace: Option<Trace> = None;
    for (i, scale) in [1.0, 2.0, 5.0, 10.0].into_iter().enumerate() {
        let mix = model_mix.scaled(scale);
        let config = GenConfig::new(mix, Timestamp::at_hour(0, 18), 1.0, 42 + i as u64);
        let trace = generate(&models, &config);
        let summary = TraceSummary::of(&trace);
        let nf = nf_load(&trace, &TransactionMatrix::default_epc());
        let workers = min_workers(&trace, service).map_or("-".into(), |w| w.to_string());
        println!(
            "{:>5}x {:>9} {:>8} {:>12.1} {:>12.1} | {}",
            scale,
            mix.total(),
            summary.events,
            summary.events_per_sec,
            nf.rate(NetworkFunction::Mme),
            workers
        );
        if i == 1 {
            year1_trace = Some(trace);
        }
    }

    // What happens if the 2× load hits capacity provisioned for 1×?
    let trace = year1_trace.expect("2x trace generated");
    let one_x_eps = trace.len() as f64 / 3_600.0 / 2.0;
    let policy = overload::AdmissionPolicy::sized_for(one_x_eps);
    let (report, admitted) = overload::apply(&trace, &policy);
    println!(
        "\nunder-provisioned case (2x load, 1x-sized admission control):\n  \
         admitted {} / shed {} — shed fractions: critical {:.1}%, high {:.1}%, low {:.1}%",
        report.total_admitted(),
        report.total_shed(),
        report.shed_fraction(overload::Priority::Critical) * 100.0,
        report.shed_fraction(overload::Priority::High) * 100.0,
        report.shed_fraction(overload::Priority::Low) * 100.0,
    );
    println!(
        "  the admitted stream still drives the MME cleanly: {} protocol errors*",
        Mme::new().run(&admitted).protocol_errors
    );
    println!(
        "  (*shedding can orphan per-UE state — a real policy must pair \
         admission with context recovery)"
    );
}
