//! Serve a synthetic busy hour as a live feed, and consume it.
//!
//! The batch engines hand you a finished trace; some consumers — a
//! core-network emulator under test, a dashboard, a load generator —
//! want the *events as they happen* instead. `cn-live` turns any engine
//! stream into that: a TCP server that paces each record against its
//! absolute wall deadline at a configurable time-compression factor and
//! ships it in the same 14-byte binary framing the batch writers use.
//!
//! This example serves one synthetic hour at 600x compression (the hour
//! replays in six wall seconds) to an in-process TCP consumer, with the
//! introspection plane mounted: a flight recorder samples the server's
//! registry four times a second, and a once-a-second status line —
//! emission rate, windowed lag p99, backlog — is read *from the
//! recorder's latest frame*, exactly the way a dashboard polling
//! `/status` would see it. While it runs, the printed HTTP address
//! serves `/metrics`, `/status`, and `/recorder` to any scraper.
//! Because pacing is open-loop against absolute deadlines, a slow
//! moment never shifts the rest of the schedule — lag is transient and
//! observable, not accumulated and silent.
//!
//! Run with: `cargo run --release --example live_replay`

use cellular_cp_traffgen::live::{
    capture, IntrospectionConfig, LiveConfig, LiveServer, SystemClock,
};
use cellular_cp_traffgen::obs::Registry;
use cellular_cp_traffgen::prelude::*;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // Model + synthesize: the usual fit-then-generate loop.
    let world = generate_world(&WorldConfig::new(PopulationMix::new(30, 10, 5), 2.0, 7));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(
        PopulationMix::new(120, 40, 20),
        Timestamp::at_hour(0, 18),
        1.0,
        42,
    );

    // A live server replaying that hour 600x faster than real time.
    let registry = Registry::new();
    let mut live = LiveConfig::new(600.0);
    live.queue_frames = 1 << 14;
    let server = LiveServer::new(SystemClock::new(), live, &registry).expect("live config");
    let addr = server.bind("127.0.0.1:0").expect("bind localhost");

    // Mount the introspection plane: an HTTP listener next to the
    // traffic port, backed by a 4 Hz flight recorder.
    let mut introspect = IntrospectionConfig::new();
    introspect.recorder.interval = std::time::Duration::from_millis(250);
    let obs_addr = server
        .mount_introspection(introspect)
        .expect("mount introspection");
    println!("serving one synthetic hour at 600x on {addr} ...");
    println!("introspection at http://{obs_addr}/status (also /metrics, /recorder)");

    // The 1 Hz status line, read from the flight recorder's latest
    // frame — windowed rate and windowed lag p99, not cumulative.
    let recorder = server.recorder().expect("recorder mounted");
    let stop_status = Arc::new(AtomicBool::new(false));
    let status = {
        let stop = Arc::clone(&stop_status);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1_000));
                let Some(frame) = recorder.latest() else {
                    continue;
                };
                let rate = frame
                    .window
                    .rates
                    .iter()
                    .find(|r| r.name == "cn_live_emitted_total")
                    .map_or(0.0, |r| r.per_s);
                let lag_p99 = frame
                    .window
                    .histograms
                    .iter()
                    .find(|h| h.name == "cn_live_lag_ms")
                    .and_then(|h| h.delta.quantile_est(0.99))
                    .unwrap_or(0.0);
                let backlog = frame.snapshot.gauge("cn_live_backlog_blocks").unwrap_or(0);
                println!(
                    "  t+{:>5} ms  {:>8.0} rec/s  lag p99 ~{:>6.1} ms  backlog {backlog}",
                    frame.t_ms, rate, lag_p99
                );
            }
        })
    };

    // The consumer: connect, drain to end-of-stream, keep everything.
    let consumer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        capture(stream).expect("drain live stream")
    });
    while server.hub().consumer_count() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Serve the stream to exhaustion (blocks for ~6 wall seconds).
    let source = cellular_cp_traffgen::gen::ShardedStream::new(&models, &config);
    let started = std::time::Instant::now();
    let report = server.serve(source, 0, None).expect("serve");
    let wall = started.elapsed();

    stop_status.store(true, Ordering::Relaxed);
    status.join().expect("status thread");
    let captured = consumer.join().expect("consumer thread");
    println!(
        "served {} records in {wall:.2?}; consumer captured {} records, \
         end-of-stream watermark {:?}",
        report.served,
        captured.records.len(),
        captured.end,
    );
    captured.verdict(0).expect("consumer kept up");

    // The server's own view, straight from the metrics registry.
    let snap = registry.snapshot();
    let lag = snap.histogram("cn_live_lag_ms").expect("lag histogram");
    println!(
        "telemetry: emitted={} lag p50~{:.1}ms p99~{:.1}ms backlog_peak={} drops={}",
        snap.counter("cn_live_emitted_total").unwrap_or(0),
        lag.quantile_est(0.50).unwrap_or(0.0),
        lag.quantile_est(0.99).unwrap_or(0.0),
        snap.gauge("cn_live_backlog_blocks").unwrap_or(0),
        snap.counter("cn_live_drops_total").unwrap_or(0),
    );
}
