//! Serve a synthetic busy hour as a live feed, and consume it.
//!
//! The batch engines hand you a finished trace; some consumers — a
//! core-network emulator under test, a dashboard, a load generator —
//! want the *events as they happen* instead. `cn-live` turns any engine
//! stream into that: a TCP server that paces each record against its
//! absolute wall deadline at a configurable time-compression factor and
//! ships it in the same 14-byte binary framing the batch writers use.
//!
//! This example serves one synthetic hour at 600x compression (the hour
//! replays in six wall seconds) to an in-process TCP consumer, then
//! prints what both sides saw: the server's `cn_live_*` telemetry
//! (emission lag, queue backlog, drops) and the consumer's captured
//! stream. Because pacing is open-loop against absolute deadlines, a
//! slow moment never shifts the rest of the schedule — lag is transient
//! and observable, not accumulated and silent.
//!
//! Run with: `cargo run --release --example live_replay`

use cellular_cp_traffgen::live::{capture, LiveConfig, LiveServer, SystemClock};
use cellular_cp_traffgen::obs::Registry;
use cellular_cp_traffgen::prelude::*;
use std::net::TcpStream;

fn main() {
    // Model + synthesize: the usual fit-then-generate loop.
    let world = generate_world(&WorldConfig::new(PopulationMix::new(30, 10, 5), 2.0, 7));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(
        PopulationMix::new(120, 40, 20),
        Timestamp::at_hour(0, 18),
        1.0,
        42,
    );

    // A live server replaying that hour 600x faster than real time.
    let registry = Registry::new();
    let mut live = LiveConfig::new(600.0);
    live.queue_frames = 1 << 14;
    let server = LiveServer::new(SystemClock::new(), live, &registry).expect("live config");
    let addr = server.bind("127.0.0.1:0").expect("bind localhost");
    println!("serving one synthetic hour at 600x on {addr} ...");

    // The consumer: connect, drain to end-of-stream, keep everything.
    let consumer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        capture(stream).expect("drain live stream")
    });
    while server.hub().consumer_count() < 1 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Serve the stream to exhaustion (blocks for ~6 wall seconds).
    let source = cellular_cp_traffgen::gen::ShardedStream::new(&models, &config);
    let started = std::time::Instant::now();
    let report = server.serve(source, 0, None).expect("serve");
    let wall = started.elapsed();

    let captured = consumer.join().expect("consumer thread");
    println!(
        "served {} records in {wall:.2?}; consumer captured {} records, \
         end-of-stream watermark {:?}",
        report.served,
        captured.records.len(),
        captured.end,
    );
    captured.verdict(0).expect("consumer kept up");

    // The server's own view, straight from the metrics registry.
    let snap = registry.snapshot();
    let lag = snap.histogram("cn_live_lag_ms").expect("lag histogram");
    println!(
        "telemetry: emitted={} lag p50<={}ms p99<={}ms backlog_peak={} drops={}",
        snap.counter("cn_live_emitted_total").unwrap_or(0),
        lag.quantile_upper_bound(0.50).unwrap_or(0),
        lag.quantile_upper_bound(0.99).unwrap_or(0),
        snap.gauge("cn_live_backlog_blocks").unwrap_or(0),
        snap.counter("cn_live_drops_total").unwrap_or(0),
    );
}
