//! Property-based tests for the statistics substrate.

use cn_stats::dist::{Dist, Exponential, LogNormal, Pareto, Tcplib, Weibull};
use cn_stats::{two_sample_distance, Ecdf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.01f64..50.0).prop_map(|r| Dist::Exponential(Exponential::new(r).unwrap())),
        ((0.2f64..8.0), (0.01f64..10.0))
            .prop_map(|(a, xm)| Dist::Pareto(Pareto::new(a, xm).unwrap())),
        ((0.2f64..5.0), (0.01f64..10.0))
            .prop_map(|(k, l)| Dist::Weibull(Weibull::new(k, l).unwrap())),
        ((-3.0f64..3.0), (0.05f64..2.5))
            .prop_map(|(m, s)| Dist::LogNormal(LogNormal::new(m, s).unwrap())),
        (0.01f64..100.0).prop_map(|s| Dist::Tcplib(Tcplib::new(s).unwrap())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CDFs are monotone non-decreasing and bounded in [0, 1].
    #[test]
    fn cdf_monotone_bounded(d in arb_dist(), mut xs in prop::collection::vec(-10.0f64..1000.0, 2..40)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c}");
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    /// Samples land in the support and the CDF at a sample is in (0, 1].
    #[test]
    fn samples_in_support(d in arb_dist(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0 || matches!(d, Dist::LogNormal(_)), "negative sample {x}");
        }
    }

    /// ECDF quantile/cdf are mutually consistent: cdf(quantile(p)) >= p.
    #[test]
    fn ecdf_quantile_cdf_consistent(
        samples in prop::collection::vec(0.0f64..1000.0, 1..100),
        p in 0.0f64..1.0,
    ) {
        let e = Ecdf::new(samples).unwrap();
        let q = e.quantile(p);
        prop_assert!(e.cdf(q) >= p - 1e-12);
        prop_assert!(q >= e.min() && q <= e.max());
    }

    /// Two-sample distance is a metric-like quantity: symmetric, in [0,1],
    /// zero on identical samples.
    #[test]
    fn two_sample_distance_properties(
        a in prop::collection::vec(0.0f64..100.0, 1..60),
        b in prop::collection::vec(0.0f64..100.0, 1..60),
    ) {
        let dab = two_sample_distance(&a, &b).unwrap();
        let dba = two_sample_distance(&b, &a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dab));
        let daa = two_sample_distance(&a, &a).unwrap();
        prop_assert_eq!(daa, 0.0);
    }

    /// MLE of the exponential always reproduces the sample mean.
    #[test]
    fn exponential_fit_mean_inverse(
        samples in prop::collection::vec(0.001f64..1e6, 1..200),
    ) {
        let d = Exponential::fit(&samples).unwrap();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
    }

    /// Smoothed ECDF sampling never leaves [min, max].
    #[test]
    fn ecdf_smoothed_sampling_bounded(
        samples in prop::collection::vec(0.0f64..1000.0, 1..50),
        seed in any::<u64>(),
    ) {
        let e = Ecdf::new(samples).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = e.sample_smoothed(&mut rng);
            prop_assert!(x >= e.min() - 1e-9 && x <= e.max() + 1e-9);
        }
    }
}
