//! Weibull distribution.
//!
//! Shown to capture inter-arrival dynamics at session/flow/packet levels in
//! the Internet-traffic literature (§4.1): density
//! `f(x) = (k/λ)(x/λ)^{k-1} e^{-(x/λ)^k}` for `x ≥ 0`.

use crate::fit::FitError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create with shape `k` and scale `λ`. Returns `None` unless both are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Option<Weibull> {
        (shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0)
            .then_some(Weibull { shape, scale })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit via Newton–Raphson on the profile likelihood
    /// for `k`, then the closed form for `λ`.
    ///
    /// The MLE of `k` solves
    /// `Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0`;
    /// given `k`, `λ = (Σ x^k / n)^{1/k}`.
    ///
    /// Samples must be strictly positive (the log-likelihood requires it);
    /// callers with zero inter-arrival times should pre-shift or drop them.
    pub fn fit(samples: &[f64]) -> Result<Weibull, FitError> {
        let n = samples.len();
        if n == 0 {
            return Err(FitError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
            return Err(FitError::InvalidSample);
        }
        let mean_ln: f64 = samples.iter().map(|&x| x.ln()).sum::<f64>() / n as f64;
        let var_ln: f64 = samples
            .iter()
            .map(|&x| (x.ln() - mean_ln).powi(2))
            .sum::<f64>()
            / n as f64;
        if var_ln < 1e-18 {
            return Err(FitError::Degenerate("all samples equal".into()));
        }

        // Method-of-moments-on-logs starting point: Var(ln X) = π²/(6k²).
        let mut k = (std::f64::consts::PI / (6.0f64 * var_ln).sqrt()).max(1e-3);
        for _ in 0..100 {
            let mut sum_xk = 0.0;
            let mut sum_xk_ln = 0.0;
            let mut sum_xk_ln2 = 0.0;
            for &x in samples {
                let xk = x.powf(k);
                let lx = x.ln();
                sum_xk += xk;
                sum_xk_ln += xk * lx;
                sum_xk_ln2 += xk * lx * lx;
            }
            let g = sum_xk_ln / sum_xk - 1.0 / k - mean_ln;
            let g_prime =
                (sum_xk_ln2 * sum_xk - sum_xk_ln * sum_xk_ln) / (sum_xk * sum_xk) + 1.0 / (k * k);
            if !g.is_finite() || !g_prime.is_finite() || g_prime.abs() < 1e-300 {
                return Err(FitError::DidNotConverge);
            }
            let step = g / g_prime;
            let new_k = (k - step).max(k / 10.0); // guard against overshoot below zero
            if (new_k - k).abs() < 1e-10 * k {
                k = new_k;
                break;
            }
            k = new_k;
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(FitError::DidNotConverge);
        }
        let lambda = (samples.iter().map(|&x| x.powf(k)).sum::<f64>() / n as f64).powf(1.0 / k);
        Weibull::new(k, lambda).ok_or(FitError::DidNotConverge)
    }

    /// CDF: `1 - e^{-(x/λ)^k}` for `x ≥ 0`, else 0.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    /// Mean: `λ Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    /// Inverse-transform sample: `λ (-ln U)^{1/k}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// Gamma function via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~15 significant digits for positive real arguments.
pub(crate) fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (std::f64::consts::TAU).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn cdf_known_values() {
        // k = 1 reduces to exponential with rate 1/λ.
        let d = Weibull::new(1.0, 2.0).unwrap();
        assert!((d.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn mean_matches_closed_form() {
        let d = Weibull::new(2.0, 3.0).unwrap();
        // mean = 3 Γ(1.5) = 3 √π / 2
        let expect = 3.0 * std::f64::consts::PI.sqrt() / 2.0;
        assert!((d.mean() - expect).abs() < 1e-10);
    }

    #[test]
    fn mle_recovers_params() {
        let truth = Weibull::new(1.7, 4.2).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let samples: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Weibull::fit(&samples).unwrap();
        assert!(
            (fitted.shape() - 1.7).abs() / 1.7 < 0.03,
            "{}",
            fitted.shape()
        );
        assert!(
            (fitted.scale() - 4.2).abs() / 4.2 < 0.03,
            "{}",
            fitted.scale()
        );
    }

    #[test]
    fn mle_recovers_heavy_tail_shape() {
        let truth = Weibull::new(0.5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let samples: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Weibull::fit(&samples).unwrap();
        assert!(
            (fitted.shape() - 0.5).abs() / 0.5 < 0.05,
            "{}",
            fitted.shape()
        );
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(Weibull::fit(&[]), Err(FitError::Empty)));
        assert!(matches!(
            Weibull::fit(&[1.0, 0.0]),
            Err(FitError::InvalidSample)
        ));
        assert!(matches!(
            Weibull::fit(&[2.0, 2.0]),
            Err(FitError::Degenerate(_))
        ));
    }

    #[test]
    fn samples_positive() {
        let d = Weibull::new(0.8, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }
}
