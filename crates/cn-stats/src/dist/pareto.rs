//! Pareto (power-law) distribution.
//!
//! Applied in the literature to model self-similarity in wide-area packet
//! traffic (§4.1): density `f(x) = α x_mᵅ x^{-(α+1)}` for `x ≥ x_m`.

use crate::fit::FitError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Pareto distribution with shape `α > 0` and scale (minimum) `x_m > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Create with shape `α` and scale `x_m`. Returns `None` unless both are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Option<Pareto> {
        (shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0)
            .then_some(Pareto { shape, scale })
    }

    /// Shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter x_m (minimum possible value).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit: `x_m = min(samples)`,
    /// `α = n / Σ ln(x_i / x_m)`.
    pub fn fit(samples: &[f64]) -> Result<Pareto, FitError> {
        let n = samples.len();
        if n == 0 {
            return Err(FitError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
            return Err(FitError::InvalidSample);
        }
        let xm = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let log_sum: f64 = samples.iter().map(|&x| (x / xm).ln()).sum();
        if log_sum <= 0.0 {
            return Err(FitError::Degenerate("all samples equal".into()));
        }
        Ok(Pareto {
            shape: n as f64 / log_sum,
            scale: xm,
        })
    }

    /// CDF: `1 - (x_m / x)^α` for `x ≥ x_m`, else 0.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    /// Mean: `α x_m / (α - 1)` for `α > 1`, infinite otherwise.
    pub fn mean(&self) -> f64 {
        if self.shape > 1.0 {
            self.shape * self.scale / (self.shape - 1.0)
        } else {
            f64::INFINITY
        }
    }

    /// Inverse-transform sample: `x_m · U^{-1/α}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale * u.powf(-1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(Pareto::new(0.0, 1.0).is_none());
        assert!(Pareto::new(1.0, 0.0).is_none());
        assert!(Pareto::new(f64::NAN, 1.0).is_none());
        assert!(Pareto::new(2.0, 1.0).is_some());
    }

    #[test]
    fn cdf_known_values() {
        let d = Pareto::new(2.0, 1.0).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1.0), 0.0);
        assert!((d.cdf(2.0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn mean_tail_behavior() {
        assert!(Pareto::new(0.9, 1.0).unwrap().mean().is_infinite());
        assert!((Pareto::new(3.0, 2.0).unwrap().mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_params() {
        let truth = Pareto::new(2.5, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..100_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Pareto::fit(&samples).unwrap();
        assert!(
            (fitted.shape() - 2.5).abs() / 2.5 < 0.02,
            "{}",
            fitted.shape()
        );
        assert!(
            (fitted.scale() - 0.7).abs() / 0.7 < 0.01,
            "{}",
            fitted.scale()
        );
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(Pareto::fit(&[]), Err(FitError::Empty)));
        assert!(matches!(Pareto::fit(&[0.0]), Err(FitError::InvalidSample)));
        assert!(matches!(
            Pareto::fit(&[3.0, 3.0]),
            Err(FitError::Degenerate(_))
        ));
    }

    #[test]
    fn samples_at_least_scale() {
        let d = Pareto::new(1.2, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) >= 4.0);
        }
    }
}
