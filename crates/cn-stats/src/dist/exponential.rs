//! Exponential distribution — the inter-arrival law of a Poisson process.
//!
//! The predominant classic model for network traffic arrivals (§4.1 of the
//! paper): `P(A > t) = e^{-λt}` with fixed rate λ.

use crate::fit::FitError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `λ > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create with the given rate. Returns `None` unless `rate` is finite
    /// and positive.
    pub fn new(rate: f64) -> Option<Exponential> {
        (rate.is_finite() && rate > 0.0).then_some(Exponential { rate })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Maximum-likelihood fit: `λ = 1 / mean(samples)`.
    pub fn fit(samples: &[f64]) -> Result<Exponential, FitError> {
        let n = samples.len();
        if n == 0 {
            return Err(FitError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(FitError::InvalidSample);
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            return Err(FitError::Degenerate("all samples are zero".into()));
        }
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// CDF: `1 - e^{-λx}` for `x ≥ 0`, else 0.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Inverse-transform sample: `-ln(U)/λ`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
        assert!(Exponential::new(2.5).is_some());
    }

    #[test]
    fn cdf_known_values() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
        assert!((d.cdf(f64::INFINITY) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mle_recovers_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let truth = Exponential::new(0.25).unwrap();
        let samples: Vec<f64> = (0..100_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Exponential::fit(&samples).unwrap();
        assert!(
            (fitted.rate() - 0.25).abs() / 0.25 < 0.02,
            "{}",
            fitted.rate()
        );
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(Exponential::fit(&[]), Err(FitError::Empty)));
        assert!(matches!(
            Exponential::fit(&[1.0, -2.0]),
            Err(FitError::InvalidSample)
        ));
        assert!(matches!(
            Exponential::fit(&[0.0, 0.0]),
            Err(FitError::Degenerate(_))
        ));
    }

    #[test]
    fn sample_mean_matches() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
