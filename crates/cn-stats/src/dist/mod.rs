//! Parametric (and one empirical) probability distributions.
//!
//! These are the classic models for Internet-traffic inter-arrival time
//! evaluated in §4 of the paper — exponential (i.e. Poisson arrivals),
//! Pareto, Weibull, Tcplib — plus the log-normal used by the ground-truth
//! world simulator. Each family exposes `cdf`, `mean`, and `sample`, and a
//! maximum-likelihood `fit` constructor (see [`crate::fit`] for the shared
//! error type).

mod exponential;
mod gamma;
mod lognormal;
mod pareto;
mod tcplib;
mod weibull;

pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use pareto::Pareto;
pub use tcplib::Tcplib;
pub use weibull::Weibull;

use crate::ecdf::Ecdf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sample a standard normal deviate (Box–Muller; one value per call).
pub(crate) fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A closed set of distribution models usable as a sojourn/inter-arrival
/// time law in the traffic models.
///
/// `Empirical` is the paper's own choice (§5.2); the parametric variants are
/// used by the Base/B1/B2 comparison methods and by the statistical-test
/// tables (Tables 8–10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Exponential inter-arrival (Poisson process).
    Exponential(Exponential),
    /// Pareto (power-law) model.
    Pareto(Pareto),
    /// Weibull model.
    Weibull(Weibull),
    /// Log-normal model.
    LogNormal(LogNormal),
    /// Gamma model.
    Gamma(Gamma),
    /// Tcplib-style empirical scale family.
    Tcplib(Tcplib),
    /// Empirical CDF of the observed samples.
    Empirical(Ecdf),
}

impl Dist {
    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            Dist::Exponential(d) => d.cdf(x),
            Dist::Pareto(d) => d.cdf(x),
            Dist::Weibull(d) => d.cdf(x),
            Dist::LogNormal(d) => d.cdf(x),
            Dist::Gamma(d) => d.cdf(x),
            Dist::Tcplib(d) => d.cdf(x),
            Dist::Empirical(e) => e.cdf(x),
        }
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Exponential(d) => d.mean(),
            Dist::Pareto(d) => d.mean(),
            Dist::Weibull(d) => d.mean(),
            Dist::LogNormal(d) => d.mean(),
            Dist::Gamma(d) => d.mean(),
            Dist::Tcplib(d) => d.mean(),
            Dist::Empirical(e) => e.mean(),
        }
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Exponential(d) => d.sample(rng),
            Dist::Pareto(d) => d.sample(rng),
            Dist::Weibull(d) => d.sample(rng),
            Dist::LogNormal(d) => d.sample(rng),
            Dist::Gamma(d) => d.sample(rng),
            Dist::Tcplib(d) => d.sample(rng),
            Dist::Empirical(e) => e.sample(rng),
        }
    }

    /// Multiply the distribution's *values* by `factor > 0` (e.g. scaling
    /// durations): the scaled distribution of `factor·X`.
    ///
    /// Used by the 5G adaptation (§6): making handovers `k×` more frequent
    /// shrinks HO-related sojourn/inter-arrival times by `1/k`.
    pub fn scale_values(&self, factor: f64) -> Dist {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        match self {
            Dist::Exponential(d) => {
                Dist::Exponential(Exponential::new(d.rate() / factor).expect("positive rate"))
            }
            Dist::Pareto(d) => {
                Dist::Pareto(Pareto::new(d.shape(), d.scale() * factor).expect("positive scale"))
            }
            Dist::Weibull(d) => {
                Dist::Weibull(Weibull::new(d.shape(), d.scale() * factor).expect("positive scale"))
            }
            Dist::LogNormal(d) => Dist::LogNormal(
                LogNormal::new(d.mu() + factor.ln(), d.sigma()).expect("valid params"),
            ),
            Dist::Gamma(d) => {
                Dist::Gamma(Gamma::new(d.shape(), d.scale() * factor).expect("positive scale"))
            }
            Dist::Tcplib(d) => {
                Dist::Tcplib(Tcplib::new(d.scale() * factor).expect("positive scale"))
            }
            Dist::Empirical(e) => Dist::Empirical(
                Ecdf::new(e.samples().iter().map(|&x| x * factor).collect())
                    .expect("non-empty finite samples"),
            ),
        }
    }

    /// Short family name for reports ("Poisson", "Pareto", ...).
    pub fn family(&self) -> &'static str {
        match self {
            Dist::Exponential(_) => "Poisson",
            Dist::Pareto(_) => "Pareto",
            Dist::Weibull(_) => "Weibull",
            Dist::LogNormal(_) => "LogNormal",
            Dist::Gamma(_) => "Gamma",
            Dist::Tcplib(_) => "Tcplib",
            Dist::Empirical(_) => "CDF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn dist_enum_dispatch_matches_inner() {
        let e = Exponential::new(2.0).unwrap();
        let d = Dist::Exponential(e.clone());
        assert_eq!(d.cdf(0.7), e.cdf(0.7));
        assert_eq!(d.mean(), e.mean());
        assert_eq!(d.family(), "Poisson");
    }

    #[test]
    fn scale_values_scales_the_mean() {
        let dists = vec![
            Dist::Exponential(Exponential::new(2.0).unwrap()),
            Dist::Pareto(Pareto::new(3.0, 1.0).unwrap()),
            Dist::Weibull(Weibull::new(1.5, 2.0).unwrap()),
            Dist::LogNormal(LogNormal::new(0.5, 0.7).unwrap()),
            Dist::Gamma(Gamma::new(2.0, 1.5).unwrap()),
            Dist::Tcplib(Tcplib::new(4.0).unwrap()),
            Dist::Empirical(crate::ecdf::Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap()),
        ];
        for d in dists {
            let scaled = d.scale_values(2.5);
            assert!(
                (scaled.mean() - 2.5 * d.mean()).abs() / d.mean() < 1e-9,
                "{}: {} vs {}",
                d.family(),
                scaled.mean(),
                2.5 * d.mean()
            );
        }
    }

    #[test]
    fn scale_values_preserves_shape() {
        let d = Dist::Empirical(crate::ecdf::Ecdf::new(vec![2.0, 4.0]).unwrap());
        let s = d.scale_values(0.5);
        assert_eq!(s.cdf(1.0), d.cdf(2.0));
        assert_eq!(s.cdf(2.0), d.cdf(4.0));
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_values_rejects_nonpositive() {
        let d = Dist::Exponential(Exponential::new(1.0).unwrap());
        let _ = d.scale_values(0.0);
    }

    #[test]
    fn dist_serde_round_trip() {
        let d = Dist::Weibull(Weibull::new(1.5, 3.0).unwrap());
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
