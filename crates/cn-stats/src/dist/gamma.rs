//! Gamma distribution.
//!
//! A further classic traffic-modeling family (often used for session
//! volumes and aggregated inter-arrival times). Not one of the paper's
//! four tested families, but included so downstream users can extend the
//! Tables 8–10 battery: density
//! `f(x) = x^{k−1} e^{−x/θ} / (Γ(k) θ^k)` for `x > 0`.

use crate::dist::weibull::gamma as gamma_fn;
use crate::fit::FitError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gamma distribution with shape `k > 0` and scale `θ > 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create with shape `k` and scale `θ`. Returns `None` unless both are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Option<Gamma> {
        (shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0)
            .then_some(Gamma { shape, scale })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit: Newton–Raphson on
    /// `ln k − ψ(k) = ln(mean) − mean(ln x)` (the standard reduction),
    /// then `θ = mean / k`.
    pub fn fit(samples: &[f64]) -> Result<Gamma, FitError> {
        let n = samples.len();
        if n == 0 {
            return Err(FitError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
            return Err(FitError::InvalidSample);
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mean_ln = samples.iter().map(|&x| x.ln()).sum::<f64>() / n as f64;
        let s = mean.ln() - mean_ln;
        if s <= 0.0 {
            return Err(FitError::Degenerate("all samples equal".into()));
        }
        // Minka's starting point.
        let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
        for _ in 0..100 {
            let g = k.ln() - digamma(k) - s;
            let g_prime = 1.0 / k - trigamma(k);
            if g_prime.abs() < 1e-300 || !g.is_finite() {
                return Err(FitError::DidNotConverge);
            }
            let next = (k - g / g_prime).max(k / 10.0);
            if (next - k).abs() < 1e-12 * k {
                k = next;
                break;
            }
            k = next;
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(FitError::DidNotConverge);
        }
        Gamma::new(k, mean / k).ok_or(FitError::DidNotConverge)
    }

    /// CDF via the regularized lower incomplete gamma function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            lower_regularized_gamma(self.shape, x / self.scale)
        }
    }

    /// Mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Sample via Marsaglia–Tsang (with the boost trick for `k < 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let k = self.shape;
        if k < 1.0 {
            // X_k = X_{k+1} · U^{1/k}.
            let u: f64 = 1.0 - rng.gen::<f64>();
            return Gamma {
                shape: k + 1.0,
                scale: self.scale,
            }
            .sample(rng)
                * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = crate::dist::std_normal(rng);
            let v = (1.0 + c * z).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = 1.0 - rng.gen::<f64>();
            if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
                return d * v * self.scale;
            }
        }
    }
}

/// Digamma function ψ(x) (asymptotic series after a recurrence shift to
/// `x ≥ 10`; |ε| ≲ 1e-12 there).
pub(crate) fn digamma(mut x: f64) -> f64 {
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Trigamma function ψ′(x) (same shift-then-series scheme).
pub(crate) fn trigamma(mut x: f64) -> f64 {
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + 0.5 * inv
                + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))))
}

/// Regularized lower incomplete gamma `P(a, x)` (series for `x < a+1`,
/// continued fraction otherwise — Numerical Recipes style).
fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_gamma_a = gamma_fn(a).ln();
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma_a)
            .exp()
            .clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a, x) = 1 − P(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma_a).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn special_functions_known_values() {
        // ψ(1) = −γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(2) = 1 − γ.
        assert!((digamma(2.0) - (1.0 - 0.577_215_664_901_532_9)).abs() < 1e-10);
        // ψ′(1) = π²/6.
        assert!((trigamma(1.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_known_values() {
        // Gamma(1, θ) is Exponential(1/θ).
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = crate::dist::Exponential::new(0.5).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-10, "x = {x}");
        }
        // Median of Gamma(2, 1) ≈ 1.6783.
        let g2 = Gamma::new(2.0, 1.0).unwrap();
        assert!((g2.cdf(1.678_35) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn sampling_matches_moments() {
        let g = Gamma::new(2.5, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.75).abs() / 3.75 < 0.02, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 2.5 * 1.5 * 1.5).abs() / 5.625 < 0.05, "var {var}");
    }

    #[test]
    fn sampling_small_shape() {
        let g = Gamma::new(0.4, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.8).abs() / 0.8 < 0.03, "mean {mean}");
    }

    #[test]
    fn mle_recovers_params() {
        let truth = Gamma::new(3.2, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..80_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Gamma::fit(&samples).unwrap();
        assert!(
            (fitted.shape() - 3.2).abs() / 3.2 < 0.03,
            "{}",
            fitted.shape()
        );
        assert!(
            (fitted.scale() - 0.7).abs() / 0.7 < 0.03,
            "{}",
            fitted.scale()
        );
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(Gamma::fit(&[]), Err(FitError::Empty)));
        assert!(matches!(
            Gamma::fit(&[1.0, -1.0]),
            Err(FitError::InvalidSample)
        ));
        assert!(matches!(
            Gamma::fit(&[2.0, 2.0]),
            Err(FitError::Degenerate(_))
        ));
    }
}
