//! Tcplib-style empirical scale family.
//!
//! Tcplib (Danzig & Jamin, 1991) models wide-area TCP/IP traffic with
//! *empirical* distributions measured from real traces — for inter-arrival
//! time, the distribution of packet inter-arrivals within TELNET
//! connections. Following that approach, this module ships a fixed
//! reference *shape* (a piecewise-linear quantile function with a log-normal
//! body and a heavy upper tail, normalized to mean 1, approximating the
//! published TELNET inter-arrival curve) and fits data by scaling the shape
//! to the sample mean — a one-parameter empirical scale family, which is how
//! the paper "fits" Tcplib with MLE for its Tables 8–10.

use crate::fit::FitError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probability levels of the reference quantile grid.
const P_GRID: [f64; 14] = [
    0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1.0,
];

/// Reference quantile values before normalization: log-normal-like body with
/// a long upper tail, in arbitrary units.
const Q_RAW: [f64; 14] = [
    0.008, 0.025, 0.045, 0.09, 0.16, 0.26, 0.40, 0.62, 0.98, 1.70, 3.60, 6.50, 18.0, 60.0,
];

/// Mean of the piecewise-linear quantile function on `Q_RAW` (trapezoid over
/// the probability grid), used to normalize the shape to mean 1.
fn raw_mean() -> f64 {
    let mut mean = 0.0;
    for i in 1..P_GRID.len() {
        mean += (P_GRID[i] - P_GRID[i - 1]) * (Q_RAW[i] + Q_RAW[i - 1]) / 2.0;
    }
    mean
}

/// Tcplib-style empirical distribution: the fixed reference shape scaled by
/// a positive factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcplib {
    scale: f64,
}

impl Tcplib {
    /// Create with the given scale (which equals the distribution mean).
    /// Returns `None` unless `scale` is finite and positive.
    pub fn new(scale: f64) -> Option<Tcplib> {
        (scale.is_finite() && scale > 0.0).then_some(Tcplib { scale })
    }

    /// Scale factor (= mean, since the reference shape has mean 1).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Fit by matching the sample mean (the MLE for a pure scale family is
    /// mean-matching when the shape is held fixed).
    pub fn fit(samples: &[f64]) -> Result<Tcplib, FitError> {
        let n = samples.len();
        if n == 0 {
            return Err(FitError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(FitError::InvalidSample);
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            return Err(FitError::Degenerate("all samples are zero".into()));
        }
        Ok(Tcplib { scale: mean })
    }

    /// Quantile function: piecewise-linear interpolation of the reference
    /// grid, scaled.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let norm = self.scale / raw_mean();
        let i = P_GRID.partition_point(|&g| g < p).min(P_GRID.len() - 1);
        if i == 0 {
            return Q_RAW[0] * norm;
        }
        let (p0, p1) = (P_GRID[i - 1], P_GRID[i]);
        let (q0, q1) = (Q_RAW[i - 1] * norm, Q_RAW[i] * norm);
        q0 + (q1 - q0) * (p - p0) / (p1 - p0)
    }

    /// CDF: inverse of the piecewise-linear quantile function.
    pub fn cdf(&self, x: f64) -> f64 {
        let norm = self.scale / raw_mean();
        let x_raw = x / norm;
        if x_raw <= Q_RAW[0] {
            return 0.0;
        }
        if x_raw >= Q_RAW[Q_RAW.len() - 1] {
            return 1.0;
        }
        let i = Q_RAW.partition_point(|&q| q < x_raw);
        let (q0, q1) = (Q_RAW[i - 1], Q_RAW[i]);
        let (p0, p1) = (P_GRID[i - 1], P_GRID[i]);
        p0 + (p1 - p0) * (x_raw - q0) / (q1 - q0)
    }

    /// Mean (= scale by construction of the normalized shape).
    pub fn mean(&self) -> f64 {
        self.scale
    }

    /// Inverse-transform sample from the piecewise-linear quantile function.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_is_monotone() {
        for w in Q_RAW.windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in P_GRID.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mean_equals_scale() {
        let d = Tcplib::new(3.5).unwrap();
        // Empirical check: average many samples.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() / 3.5 < 0.02, "mean {mean}");
    }

    #[test]
    fn cdf_quantile_inverse() {
        let d = Tcplib::new(1.0).unwrap();
        for &p in &[0.01, 0.1, 0.33, 0.5, 0.77, 0.95, 0.999] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9, "p {p}");
        }
    }

    #[test]
    fn cdf_bounds() {
        let d = Tcplib::new(2.0).unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(1e12), 1.0);
    }

    #[test]
    fn fit_matches_mean() {
        let samples = [1.0, 2.0, 3.0, 6.0];
        let d = Tcplib::fit(&samples).unwrap();
        assert!((d.scale() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(Tcplib::fit(&[]), Err(FitError::Empty)));
        assert!(matches!(Tcplib::fit(&[-1.0]), Err(FitError::InvalidSample)));
        assert!(matches!(Tcplib::fit(&[0.0]), Err(FitError::Degenerate(_))));
    }
}
