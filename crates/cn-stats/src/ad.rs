//! Anderson–Darling test for exponentiality.
//!
//! The A² test is a modification of K–S that weights the distribution tails
//! more heavily (§4.1.2). As in the paper — and as in scipy — it is applied
//! only to the exponential reference (the null "the data is exponential with
//! unknown scale"), using Stephens' (1974) critical values for the
//! estimated-parameter case.

use serde::{Deserialize, Serialize};

/// Significance levels for which Stephens' critical values are tabulated.
pub const AD_SIGNIFICANCE_LEVELS: [f64; 5] = [0.15, 0.10, 0.05, 0.025, 0.01];

/// Stephens' critical values for the exponential null with estimated scale,
/// applied to the corrected statistic `A*² = A²(1 + 0.6/n)`.
pub const AD_CRITICAL_VALUES: [f64; 5] = [0.922, 1.078, 1.341, 1.606, 1.957];

/// Result of an Anderson–Darling exponentiality test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdOutcome {
    /// Raw A² statistic.
    pub statistic: f64,
    /// Small-sample corrected statistic `A*² = A²(1 + 0.6/n)`.
    pub corrected: f64,
    /// Sample size.
    pub n: usize,
    /// Rate of the exponential fitted to the data (MLE).
    pub fitted_rate: f64,
}

impl AdOutcome {
    /// Whether the exponential null is *not* rejected at the given
    /// significance level (must be one of [`AD_SIGNIFICANCE_LEVELS`];
    /// unknown levels use the closest tabulated one).
    pub fn passes(&self, significance: f64) -> bool {
        let idx = AD_SIGNIFICANCE_LEVELS
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - significance)
                    .abs()
                    .partial_cmp(&(*b - significance).abs())
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty table");
        self.corrected < AD_CRITICAL_VALUES[idx]
    }
}

/// Anderson–Darling test of `samples` against the exponential family with
/// MLE-estimated rate.
///
/// Returns `None` for samples that are empty, non-finite, negative, or
/// all-zero (the exponential fit is undefined there).
pub fn ad_test_exponential(samples: &[f64]) -> Option<AdOutcome> {
    let n = samples.len();
    if n == 0 || samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
        return None;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 {
        return None;
    }
    let rate = 1.0 / mean;
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));

    // A² = -n - (1/n) Σ (2i-1) [ln F(x_i) + ln(1 - F(x_{n+1-i}))]
    // Clamp F away from {0, 1} so ln stays finite for ties at zero.
    let f = |x: f64| (1.0 - (-rate * x).exp()).clamp(1e-300, 1.0 - 1e-15);
    let nf = n as f64;
    let mut sum = 0.0;
    for i in 0..n {
        let fi = f(sorted[i]);
        let fni = f(sorted[n - 1 - i]);
        sum += (2.0 * i as f64 + 1.0) * (fi.ln() + (1.0 - fni).ln());
    }
    let a2 = -nf - sum / nf;
    let corrected = a2 * (1.0 + 0.6 / nf);
    Some(AdOutcome {
        statistic: a2,
        corrected,
        n,
        fitted_rate: rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Exponential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_bad_samples() {
        assert!(ad_test_exponential(&[]).is_none());
        assert!(ad_test_exponential(&[-1.0]).is_none());
        assert!(ad_test_exponential(&[0.0, 0.0]).is_none());
        assert!(ad_test_exponential(&[f64::NAN]).is_none());
    }

    #[test]
    fn exponential_data_usually_passes() {
        let truth = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut passes = 0;
        let trials = 50;
        for _ in 0..trials {
            let samples: Vec<f64> = (0..300).map(|_| truth.sample(&mut rng)).collect();
            let out = ad_test_exponential(&samples).unwrap();
            if out.passes(0.05) {
                passes += 1;
            }
        }
        assert!(passes >= 43, "only {passes}/{trials} passed");
    }

    #[test]
    fn uniform_data_fails() {
        let mut rng = StdRng::seed_from_u64(23);
        let samples: Vec<f64> = (0..500).map(|_| rng.gen_range(0.5..1.5)).collect();
        let out = ad_test_exponential(&samples).unwrap();
        assert!(!out.passes(0.05), "A*² = {}", out.corrected);
    }

    #[test]
    fn heavier_tail_fails() {
        // Log-normal with large sigma is far from exponential.
        let mut rng = StdRng::seed_from_u64(29);
        let ln = crate::dist::LogNormal::new(0.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..500).map(|_| ln.sample(&mut rng)).collect();
        let out = ad_test_exponential(&samples).unwrap();
        assert!(!out.passes(0.05), "A*² = {}", out.corrected);
    }

    #[test]
    fn corrected_exceeds_raw_for_small_n() {
        let samples: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let out = ad_test_exponential(&samples).unwrap();
        assert!(out.corrected > out.statistic);
        assert_eq!(out.n, 20);
    }

    #[test]
    fn passes_uses_nearest_level() {
        let out = AdOutcome {
            statistic: 1.0,
            corrected: 1.0,
            n: 100,
            fitted_rate: 1.0,
        };
        assert!(out.passes(0.05)); // 1.0 < 1.341
        assert!(!out.passes(0.15)); // 1.0 > 0.922
    }
}
