//! Kolmogorov–Smirnov tests.
//!
//! The paper uses the one-sample K–S test to decide whether per-cluster
//! inter-arrival/sojourn samples are drawn from a fitted reference
//! distribution (§4.1.2, Tables 8–10; significance level 5%), and the
//! two-sample maximum-y-distance as its microscopic fidelity metric (§8.1.2).

use crate::dist::Dist;
use serde::{Deserialize, Serialize};

/// Result of a one-sample K–S test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsOutcome {
    /// The K–S statistic `D_n = sup_x |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value for `D_n`.
    pub p_value: f64,
    /// The sample size the p-value was computed from: the sample count for
    /// one-sample tests, and the **rounded effective size** `n·m/(n+m)`
    /// for two-sample tests — so `kolmogorov_p_value(statistic, n)`
    /// reproduces `p_value` (exactly when the effective size is integral,
    /// to rounding otherwise).
    pub n: usize,
}

impl KsOutcome {
    /// Whether the null hypothesis ("samples are drawn from the reference
    /// distribution") is *not* rejected at the given significance level.
    pub fn passes(&self, significance: f64) -> bool {
        self.p_value > significance
    }
}

/// One-sample Kolmogorov–Smirnov test of `samples` against the reference
/// CDF `reference`.
///
/// Returns `None` for an empty sample. The p-value uses the
/// Stephens-corrected asymptotic Kolmogorov distribution
/// `λ = (√n + 0.12 + 0.11/√n)·D`, accurate for n ≳ 5 — the same
/// approximation scipy and Numerical Recipes use.
pub fn ks_test(samples: &[f64], reference: &Dist) -> Option<KsOutcome> {
    ks_test_cdf(samples, |x| reference.cdf(x))
}

/// One-sample K–S test against an arbitrary CDF closure.
pub fn ks_test_cdf<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Option<KsOutcome> {
    if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let d_plus = (i as f64 + 1.0) / nf - f;
        let d_minus = f - i as f64 / nf;
        d = d.max(d_plus).max(d_minus);
    }
    let p = kolmogorov_p_value(d, n);
    Some(KsOutcome {
        statistic: d,
        p_value: p,
        n,
    })
}

/// Asymptotic p-value of the K–S statistic `d` for sample size `n`
/// (Kolmogorov distribution with Stephens' small-sample correction).
pub fn kolmogorov_p_value(d: f64, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    q_ks(lambda)
}

/// Kolmogorov's `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn q_ks(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample K–S statistic: the maximum vertical distance between the
/// empirical CDFs of `a` and `b` (the paper's "maximum y-distance").
///
/// Returns `None` when either sample is empty or contains non-finite values.
pub fn two_sample_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let ea = crate::ecdf::Ecdf::new(a.to_vec())?;
    let eb = crate::ecdf::Ecdf::new(b.to_vec())?;
    Some(ea.max_y_distance(&eb))
}

/// Full two-sample K–S test: statistic plus the asymptotic p-value with
/// the effective sample size `n_eff = n·m/(n+m)`.
///
/// The returned outcome's `n` is the rounded `n_eff` — the size the
/// p-value was actually computed from — not `min(n, m)` as it once was:
/// a reported `(statistic, n)` pair now reproduces the reported p-value
/// through [`kolmogorov_p_value`]. The product is taken in `f64`, so
/// week-scale sample counts cannot overflow `usize` on any target.
pub fn two_sample_test(a: &[f64], b: &[f64]) -> Option<KsOutcome> {
    let d = two_sample_distance(a, b)?;
    let n_eff = a.len() as f64 * b.len() as f64 / (a.len() as f64 + b.len() as f64);
    let sqrt_n = n_eff.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Some(KsOutcome {
        statistic: d,
        p_value: q_ks(lambda),
        n: n_eff.round() as usize,
    })
}

/// The critical two-sample K–S distance at significance `alpha` for sample
/// sizes `n` and `m`: the smallest `D` for which [`two_sample_test`] would
/// reject. Lets a gate report its margin ("measured D vs critical D")
/// instead of a bare pass/fail.
///
/// Returns `None` for degenerate inputs (`alpha` outside `(0, 1)` or an
/// empty sample).
pub fn two_sample_critical_distance(alpha: f64, n: usize, m: usize) -> Option<f64> {
    if !(0.0..1.0).contains(&alpha) || alpha == 0.0 || n == 0 || m == 0 {
        return None;
    }
    // Multiply in f64: `n * m` in `usize` overflows for large samples on
    // 32-bit targets and for week-scale event counts even on 64-bit.
    let n_eff = n as f64 * m as f64 / (n as f64 + m as f64);
    let sqrt_n = n_eff.sqrt();
    // Invert Q(λ) = alpha by bisection (Q is continuous and strictly
    // decreasing on (0, ∞), from 1 to 0).
    let (mut lo, mut hi) = (1e-9, 4.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if q_ks(mid) > alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi) / (sqrt_n + 0.12 + 0.11 / sqrt_n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Exponential;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_sample_is_none() {
        let d = Dist::Exponential(Exponential::new(1.0).unwrap());
        assert!(ks_test(&[], &d).is_none());
        assert!(ks_test(&[f64::NAN], &d).is_none());
    }

    #[test]
    fn exponential_data_passes_against_truth() {
        let truth = Exponential::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut passes = 0;
        let trials = 50;
        for _ in 0..trials {
            let samples: Vec<f64> = (0..400).map(|_| truth.sample(&mut rng)).collect();
            let out = ks_test(&samples, &Dist::Exponential(truth.clone())).unwrap();
            if out.passes(0.05) {
                passes += 1;
            }
        }
        // Under the null, ~95% should pass; allow generous slack.
        assert!(passes >= 44, "only {passes}/{trials} passed");
    }

    #[test]
    fn uniform_data_fails_against_exponential() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let fitted = Exponential::fit(&samples).unwrap();
        let out = ks_test(&samples, &Dist::Exponential(fitted)).unwrap();
        assert!(!out.passes(0.05), "p={}", out.p_value);
    }

    #[test]
    fn p_value_monotone_in_d() {
        let p1 = kolmogorov_p_value(0.05, 100);
        let p2 = kolmogorov_p_value(0.10, 100);
        let p3 = kolmogorov_p_value(0.20, 100);
        assert!(p1 > p2 && p2 > p3);
    }

    #[test]
    fn p_value_known_magnitude() {
        // For λ ≈ 1.36, Q ≈ 0.049 (the classic 5% critical value).
        // With the Stephens correction at n = 1000, d = 1.36/√n ≈ 0.043.
        let n = 1_000;
        let d = 1.358 / (n as f64).sqrt();
        let p = kolmogorov_p_value(d, n);
        assert!((p - 0.05).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn two_sample_distance_basics() {
        assert!(two_sample_distance(&[], &[1.0]).is_none());
        let d = two_sample_distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d, 0.0);
        let d2 = two_sample_distance(&[1.0, 2.0], &[10.0, 20.0]).unwrap();
        assert_eq!(d2, 1.0);
    }

    #[test]
    fn critical_distance_matches_test_boundary() {
        // A distance just below the critical value passes; just above fails.
        let (n, m) = (400, 400);
        let d_crit = two_sample_critical_distance(0.05, n, m).unwrap();
        // Classic large-sample approximation: c(α)·√((n+m)/(n·m)),
        // c(0.05) = 1.358.
        let approx = 1.358 * ((n + m) as f64 / (n * m) as f64).sqrt();
        assert!((d_crit - approx).abs() < 0.01, "{d_crit} vs {approx}");
        // Consistency with the p-value: at D = d_crit, p ≈ alpha.
        let n_eff = (n * m) as f64 / (n + m) as f64;
        let p = kolmogorov_p_value(d_crit, n_eff.round() as usize);
        assert!((p - 0.05).abs() < 0.01, "p at critical D = {p}");
    }

    #[test]
    fn critical_distance_degenerate_inputs() {
        assert!(two_sample_critical_distance(0.0, 10, 10).is_none());
        assert!(two_sample_critical_distance(1.0, 10, 10).is_none());
        assert!(two_sample_critical_distance(0.05, 0, 10).is_none());
        // Stricter alpha demands a larger distance.
        let strict = two_sample_critical_distance(0.01, 100, 100).unwrap();
        let lax = two_sample_critical_distance(0.10, 100, 100).unwrap();
        assert!(strict > lax);
    }

    #[test]
    fn two_sample_n_is_the_p_value_basis() {
        // 400 and 100 samples: n_eff = 400·100/500 = 80 exactly, so the
        // reported (statistic, n) pair must reproduce the reported p-value.
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..1.0)).collect();
        let out = two_sample_test(&a, &b).unwrap();
        assert_eq!(out.n, 80);
        let p = kolmogorov_p_value(out.statistic, out.n);
        assert!((p - out.p_value).abs() < 1e-12, "{p} vs {}", out.p_value);
    }

    #[test]
    fn critical_distance_survives_week_scale_sample_counts() {
        // The old `usize` product overflowed here (debug: panic; release:
        // wraparound garbage). In f64 the result is small, positive, and
        // consistent with the large-sample approximation.
        let n = usize::MAX / 2;
        let d = two_sample_critical_distance(0.05, n, n).unwrap();
        assert!(d.is_finite() && d > 0.0, "d = {d}");
        let approx = 1.358 * (2.0 / n as f64).sqrt();
        assert!((d - approx).abs() / approx < 0.05, "{d} vs {approx}");
    }

    #[test]
    fn two_sample_test_discriminates() {
        let mut rng = StdRng::seed_from_u64(31);
        let a: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..1.0)).collect();
        let b: Vec<f64> = (0..400).map(|_| rng.gen_range(0.0..1.0)).collect();
        let same = two_sample_test(&a, &b).unwrap();
        assert!(same.passes(0.05), "same-dist p = {}", same.p_value);
        let c: Vec<f64> = (0..400).map(|_| rng.gen_range(0.3..1.3)).collect();
        let diff = two_sample_test(&a, &c).unwrap();
        assert!(!diff.passes(0.05), "shifted p = {}", diff.p_value);
    }

    #[test]
    fn ks_statistic_hand_computed() {
        // Samples {0.5} against U(0,1)-like cdf(x) = x.
        let out = ks_test_cdf(&[0.5], |x| x.clamp(0.0, 1.0)).unwrap();
        // F_n steps 0→1 at 0.5; sup distance = max(1-0.5, 0.5-0) = 0.5.
        assert!((out.statistic - 0.5).abs() < 1e-12);
    }
}
