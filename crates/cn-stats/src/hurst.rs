//! Hurst-exponent estimation via the aggregated-variance method.
//!
//! The variance–time plot of Fig. 3 is the graphical form of the
//! self-similarity analysis of Leland et al. (the paper's \[43\]): for a
//! self-similar count process the variance of `m`-aggregated block means
//! decays as `m^{−β}` with `β = 2 − 2H`. A Poisson process has `H = 0.5`
//! (slope −1); long-range-dependent (bursty) traffic has `H > 0.5` —
//! flatter variance–time curves, exactly what control-plane traffic shows.

use serde::{Deserialize, Serialize};

/// Result of a Hurst estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HurstEstimate {
    /// The estimated Hurst exponent `H = 1 − β/2`.
    pub h: f64,
    /// Coefficient of determination of the log–log regression (how well a
    /// single power law describes the decay).
    pub r_squared: f64,
    /// Number of aggregation scales used.
    pub scales: usize,
}

/// Estimate the Hurst exponent of a binned count series by the
/// aggregated-variance method.
///
/// Block sizes grow geometrically from 1 until fewer than `min_blocks`
/// whole blocks fit. Returns `None` when the series is too short (< 32
/// bins), constant, or yields fewer than 4 usable scales.
pub fn hurst_aggregated_variance(bins: &[u32], min_blocks: usize) -> Option<HurstEstimate> {
    if bins.len() < 32 {
        return None;
    }
    let min_blocks = min_blocks.max(4);
    let mut points: Vec<(f64, f64)> = Vec::new(); // (ln m, ln var)
    let mut m = 1usize;
    while bins.len() / m >= min_blocks {
        let n_blocks = bins.len() / m;
        let means: Vec<f64> = (0..n_blocks)
            .map(|b| {
                bins[b * m..(b + 1) * m]
                    .iter()
                    .map(|&c| f64::from(c))
                    .sum::<f64>()
                    / m as f64
            })
            .collect();
        let grand = means.iter().sum::<f64>() / n_blocks as f64;
        let var = means.iter().map(|&x| (x - grand).powi(2)).sum::<f64>() / n_blocks as f64;
        if var > 0.0 {
            points.push(((m as f64).ln(), var.ln()));
        }
        m = (m * 2).max(m + 1);
    }
    if points.len() < 4 {
        return None;
    }

    // Least-squares slope of ln var vs ln m.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let beta = -(n * sxy - sx * sy) / denom; // decay exponent (positive)
    let h = (1.0 - beta / 2.0).clamp(0.0, 1.0);

    // R² of the fit.
    let mean_y = sy / n;
    let slope = -(beta);
    let intercept = (sy - slope * sx) / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };

    Some(HurstEstimate {
        h,
        r_squared,
        scales: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Poisson-ish iid bins via thinning a uniform.
    fn iid_bins(n: usize, rate: f64, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Poisson via inversion for small rates.
                let mut k = 0u32;
                let mut p = (-rate).exp();
                let mut f = p;
                let u: f64 = rng.gen();
                while u > f && k < 1_000 {
                    k += 1;
                    p *= rate / f64::from(k);
                    f += p;
                }
                k
            })
            .collect()
    }

    #[test]
    fn iid_counts_have_h_half() {
        let bins = iid_bins(65_536, 3.0, 9);
        let est = hurst_aggregated_variance(&bins, 8).unwrap();
        assert!((est.h - 0.5).abs() < 0.08, "H = {}", est.h);
        assert!(est.r_squared > 0.95, "r² = {}", est.r_squared);
    }

    #[test]
    fn bursty_series_has_high_h() {
        // Superpose heavy-tailed ON/OFF sources (classic LRD construction).
        let mut rng = StdRng::seed_from_u64(17);
        let n = 65_536;
        let mut bins = vec![0u32; n];
        for _ in 0..50 {
            let mut t = 0usize;
            let mut on = rng.gen::<bool>();
            while t < n {
                // Pareto(α = 1.2) period lengths — infinite variance.
                let u: f64 = 1.0 - rng.gen::<f64>();
                let len = (4.0 * u.powf(-1.0 / 1.2)) as usize;
                if on {
                    for tick in bins.iter_mut().skip(t).take(len) {
                        *tick += 1;
                    }
                }
                t += len.max(1);
                on = !on;
            }
        }
        let est = hurst_aggregated_variance(&bins, 8).unwrap();
        assert!(
            est.h > 0.65,
            "H = {} (expected long-range dependence)",
            est.h
        );
    }

    #[test]
    fn shuffling_destroys_dependence() {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(23);
        // Build the bursty series, then shuffle its bins.
        let mut bins = vec![0u32; 32_768];
        let mut t = 0usize;
        while t < bins.len() {
            let u: f64 = 1.0 - rng.gen::<f64>();
            let len = (4.0 * u.powf(-1.0 / 1.2)) as usize;
            for tick in bins.iter_mut().skip(t).take(len) {
                *tick += 3;
            }
            t += 2 * len.max(1);
        }
        let bursty = hurst_aggregated_variance(&bins, 8).unwrap();
        bins.shuffle(&mut rng);
        let shuffled = hurst_aggregated_variance(&bins, 8).unwrap();
        assert!(
            bursty.h > shuffled.h + 0.1,
            "bursty {} vs shuffled {}",
            bursty.h,
            shuffled.h
        );
        assert!(
            (shuffled.h - 0.5).abs() < 0.1,
            "shuffled H = {}",
            shuffled.h
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(hurst_aggregated_variance(&[], 8).is_none());
        assert!(hurst_aggregated_variance(&[1; 16], 8).is_none());
        assert!(hurst_aggregated_variance(&[5; 4096], 8).is_none()); // constant
    }
}
