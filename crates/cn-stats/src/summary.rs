//! Box-plot summaries and basic sample statistics (Fig. 2).

use serde::{Deserialize, Serialize};

/// The five-number summary plus mean, as drawn in the paper's box plots
/// (whiskers at min/max, box at quartiles, median and mean lines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub n: usize,
}

impl BoxStats {
    /// Compute from samples. Returns `None` for empty or non-finite input.
    pub fn from_samples(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        Some(BoxStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.50),
            q3: percentile_sorted(&sorted, 0.75),
            max: sorted[n - 1],
            mean: sorted.iter().sum::<f64>() / n as f64,
            n,
        })
    }
}

/// Linear-interpolated percentile of an already-sorted slice
/// (the "linear"/type-7 method used by numpy's default).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (h - lo as f64)
}

/// Sample mean (0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Population standard deviation (0 for fewer than 2 samples).
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_known() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn box_stats_interpolates() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn box_stats_rejects_bad_input() {
        assert!(BoxStats::from_samples(&[]).is_none());
        assert!(BoxStats::from_samples(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn std_dev_known() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
