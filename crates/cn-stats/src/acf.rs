//! Autocorrelation of binned count series.
//!
//! The time-domain companion of the variance–time plot: long-range-
//! dependent traffic has slowly decaying autocorrelations
//! (`ρ(k) ~ k^{−β}` with `β = 2 − 2H`), while Poisson counts decorrelate
//! immediately. Used to sanity-check burstiness claims lag by lag.

use serde::{Deserialize, Serialize};

/// Autocorrelation estimates at lags `1..=max_lag`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autocorrelation {
    /// `rho[k-1]` is the autocorrelation at lag `k`.
    pub rho: Vec<f64>,
    /// Series length used.
    pub n: usize,
}

impl Autocorrelation {
    /// Autocorrelation at lag `k` (1-based); `None` out of range.
    pub fn at(&self, lag: usize) -> Option<f64> {
        (lag >= 1).then(|| self.rho.get(lag - 1).copied()).flatten()
    }

    /// Smallest lag with `|ρ| < threshold`, if any (how fast the series
    /// decorrelates).
    pub fn decorrelation_lag(&self, threshold: f64) -> Option<usize> {
        self.rho
            .iter()
            .position(|r| r.abs() < threshold)
            .map(|i| i + 1)
    }
}

/// Estimate the autocorrelation function of a count series.
///
/// Uses the standard biased estimator (normalizing by the lag-0
/// autocovariance). Returns `None` for series shorter than `max_lag + 2`
/// bins or with zero variance.
pub fn autocorrelation(bins: &[u32], max_lag: usize) -> Option<Autocorrelation> {
    let n = bins.len();
    if max_lag == 0 || n < max_lag + 2 {
        return None;
    }
    let xs: Vec<f64> = bins.iter().map(|&c| f64::from(c)).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if c0 <= 0.0 {
        return None;
    }
    let rho = (1..=max_lag)
        .map(|k| {
            let ck: f64 = xs[..n - k]
                .iter()
                .zip(&xs[k..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / n as f64;
            ck / c0
        })
        .collect();
    Some(Autocorrelation { rho, n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[], 5).is_none());
        assert!(autocorrelation(&[1, 2, 3], 5).is_none());
        assert!(autocorrelation(&[7; 100], 5).is_none()); // constant
        assert!(autocorrelation(&[1, 2, 3, 4, 5, 6], 0).is_none());
    }

    #[test]
    fn iid_counts_decorrelate_immediately() {
        let mut rng = StdRng::seed_from_u64(2);
        let bins: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..10)).collect();
        let acf = autocorrelation(&bins, 20).unwrap();
        for (k, r) in acf.rho.iter().enumerate() {
            assert!(r.abs() < 0.05, "lag {}: {r}", k + 1);
        }
        assert_eq!(acf.decorrelation_lag(0.05), Some(1));
    }

    #[test]
    fn smooth_series_has_long_memory() {
        // Slowly varying sinusoid + noise: high ACF at small lags.
        let mut rng = StdRng::seed_from_u64(3);
        let bins: Vec<u32> = (0..20_000)
            .map(|i| {
                let base = 50.0 + 40.0 * (i as f64 / 500.0).sin();
                (base + rng.gen_range(-2.0..2.0)).max(0.0) as u32
            })
            .collect();
        let acf = autocorrelation(&bins, 50).unwrap();
        assert!(acf.at(1).unwrap() > 0.9);
        assert!(acf.at(50).unwrap() > 0.5);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let bins: Vec<u32> = (0..1_000)
            .map(|i| if i % 2 == 0 { 10 } else { 0 })
            .collect();
        let acf = autocorrelation(&bins, 4).unwrap();
        assert!(acf.at(1).unwrap() < -0.9);
        assert!(acf.at(2).unwrap() > 0.9);
    }
}
