//! Shared fitting error type and convenience fitting helpers.

use crate::dist::{Dist, Exponential, Gamma, LogNormal, Pareto, Tcplib, Weibull};
use serde::{Deserialize, Serialize};

/// Why a maximum-likelihood fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitError {
    /// No samples were provided.
    Empty,
    /// A sample was non-finite or outside the distribution's support.
    InvalidSample,
    /// The samples are degenerate for this family (e.g. all identical).
    Degenerate(String),
    /// An iterative fit failed to converge.
    DidNotConverge,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => write!(f, "no samples"),
            FitError::InvalidSample => write!(f, "invalid sample value"),
            FitError::Degenerate(msg) => write!(f, "degenerate samples: {msg}"),
            FitError::DidNotConverge => write!(f, "iterative fit did not converge"),
        }
    }
}

impl std::error::Error for FitError {}

/// The parametric families the paper evaluates in §4 and Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Exponential inter-arrival (Poisson process).
    Poisson,
    /// Pareto power law.
    Pareto,
    /// Weibull.
    Weibull,
    /// Log-normal.
    LogNormal,
    /// Gamma.
    Gamma,
    /// Tcplib empirical scale family.
    Tcplib,
}

impl Family {
    /// The four families tested in the paper's Tables 8–10, in table order.
    pub const PAPER_TABLE: [Family; 4] = [
        Family::Poisson,
        Family::Pareto,
        Family::Weibull,
        Family::Tcplib,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Poisson => "Poisson",
            Family::Pareto => "Pareto",
            Family::Weibull => "Weibull",
            Family::LogNormal => "LogNormal",
            Family::Gamma => "Gamma",
            Family::Tcplib => "Tcplib",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fit one family to the samples via maximum likelihood.
pub fn fit_family(family: Family, samples: &[f64]) -> Result<Dist, FitError> {
    match family {
        Family::Poisson => Exponential::fit(samples).map(Dist::Exponential),
        Family::Pareto => Pareto::fit(samples).map(Dist::Pareto),
        Family::Weibull => {
            // Weibull's log-likelihood needs strictly positive samples; the
            // paper's millisecond timestamps can yield zero durations, which
            // we drop here (they carry no shape information for Weibull).
            let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
            Weibull::fit(&positive).map(Dist::Weibull)
        }
        Family::LogNormal => {
            let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
            LogNormal::fit(&positive).map(Dist::LogNormal)
        }
        Family::Gamma => {
            let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
            Gamma::fit(&positive).map(Dist::Gamma)
        }
        Family::Tcplib => Tcplib::fit(samples).map(Dist::Tcplib),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fit_family_dispatches() {
        let mut rng = StdRng::seed_from_u64(4);
        let exp = Exponential::new(1.0).unwrap();
        let samples: Vec<f64> = (0..5_000).map(|_| exp.sample(&mut rng)).collect();
        for family in Family::PAPER_TABLE {
            let d = fit_family(family, &samples).unwrap();
            assert_eq!(
                std::mem::discriminant(&d),
                std::mem::discriminant(&match family {
                    Family::Poisson => Dist::Exponential(Exponential::new(1.0).unwrap()),
                    Family::Pareto => Dist::Pareto(Pareto::new(1.0, 1.0).unwrap()),
                    Family::Weibull => Dist::Weibull(Weibull::new(1.0, 1.0).unwrap()),
                    Family::LogNormal => Dist::LogNormal(LogNormal::new(0.0, 1.0).unwrap()),
                    Family::Gamma => Dist::Gamma(Gamma::new(1.0, 1.0).unwrap()),
                    Family::Tcplib => Dist::Tcplib(Tcplib::new(1.0).unwrap()),
                })
            );
        }
    }

    #[test]
    fn gamma_family_fits() {
        let mut rng = StdRng::seed_from_u64(6);
        let truth = Gamma::new(2.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let d = fit_family(Family::Gamma, &samples).unwrap();
        assert_eq!(d.family(), "Gamma");
        assert!((d.mean() - 6.0).abs() / 6.0 < 0.05, "{}", d.mean());
    }

    #[test]
    fn weibull_fit_tolerates_zeros() {
        let samples = [0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(fit_family(Family::Weibull, &samples).is_ok());
    }

    #[test]
    fn family_names() {
        assert_eq!(Family::Poisson.to_string(), "Poisson");
        assert_eq!(Family::PAPER_TABLE.len(), 4);
    }

    #[test]
    fn error_display() {
        assert_eq!(FitError::Empty.to_string(), "no samples");
        assert!(FitError::Degenerate("x".into()).to_string().contains("x"));
    }
}
