//! Statistics substrate for control-plane traffic modeling.
//!
//! The paper relies on a statistical toolkit that is standard in
//! scipy/R but (per our design review) not mature in the Rust crate
//! ecosystem, so this crate implements it from scratch:
//!
//! * the four classic Internet-traffic distributions studied in §4 —
//!   exponential (Poisson process), [Pareto], [Weibull], and a
//!   Tcplib-style empirical scale family — plus the log-normal used by the
//!   ground-truth world simulator, each with maximum-likelihood fitting
//!   ([`fit`]);
//! * the **Kolmogorov–Smirnov** one-sample test with asymptotic p-values and
//!   the two-sample maximum-y-distance statistic used throughout §8 ([`ks`]);
//! * the **Anderson–Darling** test for exponentiality with Stephens'
//!   estimated-parameter critical values ([`ad`]);
//! * empirical CDFs with inverse-transform sampling — the paper's "CDF"
//!   sojourn-time models ([`ecdf`]);
//! * **variance–time plots** for burstiness analysis (Fig. 3), Hurst
//!   self-similarity estimation by the aggregated-variance method
//!   ([`hurst`]), and box-plot summaries (Fig. 2) ([`variance_time`],
//!   [`summary`]).
//!
//! All samplers take an explicit [`rand::Rng`] so every downstream
//! experiment is reproducible from a seed.
//!
//! [Pareto]: dist::Pareto
//! [Weibull]: dist::Weibull

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod ad;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod hurst;
pub mod ks;
pub mod summary;
pub mod variance_time;

pub use acf::{autocorrelation, Autocorrelation};
pub use ad::{ad_test_exponential, AdOutcome};
pub use dist::{Dist, Exponential, LogNormal, Pareto, Tcplib, Weibull};
pub use ecdf::Ecdf;
pub use fit::FitError;
pub use hurst::{hurst_aggregated_variance, HurstEstimate};
pub use ks::{
    kolmogorov_p_value, ks_test, ks_test_cdf, two_sample_critical_distance, two_sample_distance,
    two_sample_test, KsOutcome,
};
pub use summary::BoxStats;
pub use variance_time::{variance_time_plot, VarianceTimePoint};
