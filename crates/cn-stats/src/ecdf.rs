//! Empirical cumulative distribution functions.
//!
//! The paper's key modeling decision (§5.2) is to model sojourn times with
//! the *empirical CDF* of the observed samples rather than a fitted
//! parametric family. An [`Ecdf`] stores the sorted samples and supports
//! CDF evaluation, quantiles, inverse-transform sampling, and the
//! maximum-y-distance comparison used as the paper's microscopic fidelity
//! metric (§8.1.2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Invariant: `samples` is non-empty, finite, and sorted ascending.
///
/// ```
/// use cn_stats::Ecdf;
/// let e = Ecdf::new(vec![2.0, 1.0, 4.0, 4.0]).unwrap();
/// assert_eq!(e.cdf(1.0), 0.25);
/// assert_eq!(e.cdf(4.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    samples: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (any order). Returns `None` when `samples` is
    /// empty or contains non-finite values.
    pub fn new(mut samples: Vec<f64>) -> Option<Ecdf> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Ecdf { samples })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false: an `Ecdf` holds at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.samples[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.samples.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Empirical CDF: fraction of samples ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// Empirical quantile for `p ∈ [0, 1]` (inverse CDF, lower
    /// interpolation): the smallest sample `x` with `cdf(x) >= p`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return self.min();
        }
        let n = self.samples.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.samples[idx]
    }

    /// Draw one value by inverse-transform sampling (a uniformly random
    /// observed sample — the paper's generator "follows the CDF", §7).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let idx = rng.gen_range(0..self.samples.len());
        self.samples[idx]
    }

    /// Draw one value by *smoothed* inverse-transform sampling: linear
    /// interpolation between adjacent order statistics, so synthetic values
    /// are not limited to exactly the observed points.
    pub fn sample_smoothed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let u: f64 = rng.gen::<f64>() * (n - 1) as f64;
        let lo = u.floor() as usize;
        let frac = u - lo as f64;
        let hi = (lo + 1).min(n - 1);
        self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac
    }

    /// Maximum vertical distance between this ECDF and `other`
    /// (the two-sample Kolmogorov–Smirnov statistic; the paper's
    /// "maximum y-distance of the CDF", §8.1.2).
    pub fn max_y_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.samples {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
            // Also check just below x (left limit of the step).
            let eps_cdf_self = self.cdf_strictly_below(x);
            let eps_cdf_other = other.cdf_strictly_below(x);
            d = d.max((eps_cdf_self - eps_cdf_other).abs());
        }
        for &x in &other.samples {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
            let eps_cdf_self = self.cdf_strictly_below(x);
            let eps_cdf_other = other.cdf_strictly_below(x);
            d = d.max((eps_cdf_self - eps_cdf_other).abs());
        }
        d
    }

    /// Quantile–quantile points against another ECDF: `(self_q, other_q)`
    /// at `n_points` evenly spaced probability levels — the data behind a
    /// Q–Q plot (points far off the diagonal show where the distributions
    /// diverge, e.g. Fig. 4's uncovered tails).
    pub fn qq_points(&self, other: &Ecdf, n_points: usize) -> Vec<(f64, f64)> {
        let n_points = n_points.max(2);
        (0..n_points)
            .map(|i| {
                let p = (i as f64 + 0.5) / n_points as f64;
                (self.quantile(p), other.quantile(p))
            })
            .collect()
    }

    /// Fraction of samples strictly less than `x` (left limit of the CDF).
    fn cdf_strictly_below(&self, x: f64) -> f64 {
        let n = self.samples.partition_point(|&s| s < x);
        n as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn cdf_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.0), 0.75);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn sampling_stays_in_support() {
        let e = Ecdf::new(vec![3.0, 7.0, 9.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!([3.0, 7.0, 9.0].contains(&x));
            let y = e.sample_smoothed(&mut rng);
            assert!((3.0..=9.0).contains(&y));
        }
    }

    #[test]
    fn max_y_distance_identical_is_zero() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.max_y_distance(&e.clone()), 0.0);
    }

    #[test]
    fn max_y_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]).unwrap();
        let b = Ecdf::new(vec![10.0, 20.0]).unwrap();
        assert_eq!(a.max_y_distance(&b), 1.0);
        assert_eq!(b.max_y_distance(&a), 1.0);
    }

    #[test]
    fn max_y_distance_known_value() {
        // a: steps at 1,2,3,4 ; b: steps at 1,2 shifted mass
        let a = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Ecdf::new(vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        // At x slightly below 3: a has cdf 0.5, b has 0 → 0.5.
        assert!((a.max_y_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qq_points_diagonal_for_identical() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        for (a, b) in e.qq_points(&e.clone(), 10) {
            assert_eq!(a, b);
        }
        // Shifted distribution: constant offset off the diagonal.
        let shifted = Ecdf::new((1..=100).map(|i| f64::from(i) + 5.0).collect()).unwrap();
        for (a, b) in e.qq_points(&shifted, 10) {
            assert_eq!(b - a, 5.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = Ecdf::new(vec![2.0, 1.0, 5.5]).unwrap();
        let json = serde_json::to_string(&e).unwrap();
        let back: Ecdf = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
