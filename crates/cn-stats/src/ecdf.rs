//! Empirical cumulative distribution functions.
//!
//! The paper's key modeling decision (§5.2) is to model sojourn times with
//! the *empirical CDF* of the observed samples rather than a fitted
//! parametric family. An [`Ecdf`] stores the sorted samples and supports
//! CDF evaluation, quantiles, inverse-transform sampling, and the
//! maximum-y-distance comparison used as the paper's microscopic fidelity
//! metric (§8.1.2).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Invariant: `samples` is non-empty, finite, and sorted ascending.
///
/// ```
/// use cn_stats::Ecdf;
/// let e = Ecdf::new(vec![2.0, 1.0, 4.0, 4.0]).unwrap();
/// assert_eq!(e.cdf(1.0), 0.25);
/// assert_eq!(e.cdf(4.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    samples: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (any order). Returns `None` when `samples` is
    /// empty or contains non-finite values.
    pub fn new(mut samples: Vec<f64>) -> Option<Ecdf> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Ecdf { samples })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false: an `Ecdf` holds at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.samples[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.samples.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Number of samples ≤ `x` — the counting core behind [`Ecdf::cdf`].
    ///
    /// Inlined with a fast path for the single-sample ECDF: degenerate
    /// fitted models (one observed sojourn in a cluster-hour) are common
    /// enough that they should not pay the binary-search setup.
    #[inline]
    pub fn count_le(&self, x: f64) -> usize {
        if self.samples.len() == 1 {
            return usize::from(self.samples[0] <= x);
        }
        self.samples.partition_point(|&s| s <= x)
    }

    /// Number of samples strictly less than `x` (the left-limit core
    /// behind [`Ecdf::cdf`]'s step structure), with the same
    /// single-sample fast path as [`Ecdf::count_le`].
    #[inline]
    pub fn count_lt(&self, x: f64) -> usize {
        if self.samples.len() == 1 {
            return usize::from(self.samples[0] < x);
        }
        self.samples.partition_point(|&s| s < x)
    }

    /// Empirical CDF: fraction of samples ≤ `x`.
    #[inline]
    pub fn cdf(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.samples.len() as f64
    }

    /// Evaluate the CDF at many points in one merge-style sweep.
    ///
    /// Sorts the query points once and resolves every quantile count by
    /// advancing a single cursor over the samples — O((n + m) + m log m)
    /// instead of m independent O(log n) binary searches, and the sample
    /// array is walked sequentially (cache-friendly) rather than probed
    /// at random. Results are returned in the *input* order of `xs`.
    pub fn cdf_batch(&self, xs: &[f64]) -> Vec<f64> {
        let n = self.samples.len() as f64;
        let mut order: Vec<u32> = (0..xs.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| xs[a as usize].total_cmp(&xs[b as usize]));
        let mut out = vec![0.0; xs.len()];
        let mut cursor = 0usize;
        for idx in order {
            let x = xs[idx as usize];
            while cursor < self.samples.len() && self.samples[cursor] <= x {
                cursor += 1;
            }
            out[idx as usize] = cursor as f64 / n;
        }
        out
    }

    /// Empirical quantiles for many probability levels at once (each as
    /// [`Ecdf::quantile`]), returned in input order.
    pub fn quantile_batch(&self, ps: &[f64]) -> Vec<f64> {
        ps.iter().map(|&p| self.quantile(p)).collect()
    }

    /// Empirical quantile for `p ∈ [0, 1]` (inverse CDF, lower
    /// interpolation): the smallest sample `x` with `cdf(x) >= p`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return self.min();
        }
        let n = self.samples.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.samples[idx]
    }

    /// Draw one value by inverse-transform sampling (a uniformly random
    /// observed sample — the paper's generator "follows the CDF", §7).
    ///
    /// **RNG contract:** consumes exactly one draw. The generator's
    /// per-event sampling (`cn-gen`'s `sample_gap` and the state-machine
    /// sojourns) relies on this draw-for-draw stability — reordering or
    /// batching draws *within one RNG stream* would shift every
    /// subsequent event and break the pinned golden traces. Batch
    /// resolution is therefore only offered where the caller already
    /// holds all draws ([`Ecdf::sample_batch`]).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let idx = rng.gen_range(0..self.samples.len());
        self.samples[idx]
    }

    /// Draw `k` values by inverse-transform sampling in one call.
    ///
    /// Consumes exactly `k` draws in the same order as `k` successive
    /// [`Ecdf::sample`] calls — the returned vector is element-for-element
    /// identical, so callers can batch without perturbing the RNG stream.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<f64> {
        let n = self.samples.len();
        (0..k).map(|_| self.samples[rng.gen_range(0..n)]).collect()
    }

    /// Draw one value by *smoothed* inverse-transform sampling: linear
    /// interpolation between adjacent order statistics, so synthetic values
    /// are not limited to exactly the observed points.
    pub fn sample_smoothed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let u: f64 = rng.gen::<f64>() * (n - 1) as f64;
        let lo = u.floor() as usize;
        let frac = u - lo as f64;
        let hi = (lo + 1).min(n - 1);
        self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac
    }

    /// Maximum vertical distance between this ECDF and `other`
    /// (the two-sample Kolmogorov–Smirnov statistic; the paper's
    /// "maximum y-distance of the CDF", §8.1.2).
    ///
    /// A single merge sweep over both sorted sample arrays: at every
    /// distinct step location the sweep counts give both CDF values
    /// directly, so the statistic costs O(n + m) instead of the
    /// O((n + m) log(nm)) of evaluating two binary searches per step.
    /// Left limits need no separate pass — the value just below a step
    /// equals the value at the previous step (or 0 before the first),
    /// which the sweep has already compared.
    pub fn max_y_distance(&self, other: &Ecdf) -> f64 {
        let a = &self.samples;
        let b = &other.samples;
        let (n, m) = (a.len() as f64, b.len() as f64);
        let (mut i, mut j) = (0usize, 0usize);
        let mut d: f64 = 0.0;
        while i < a.len() || j < b.len() {
            let x = match (a.get(i), b.get(j)) {
                (Some(&xa), Some(&xb)) => xa.min(xb),
                (Some(&xa), None) => xa,
                (None, Some(&xb)) => xb,
                (None, None) => unreachable!("loop guard"),
            };
            while i < a.len() && a[i] == x {
                i += 1;
            }
            while j < b.len() && b[j] == x {
                j += 1;
            }
            d = d.max((i as f64 / n - j as f64 / m).abs());
        }
        d
    }

    /// Quantile–quantile points against another ECDF: `(self_q, other_q)`
    /// at `n_points` evenly spaced probability levels — the data behind a
    /// Q–Q plot (points far off the diagonal show where the distributions
    /// diverge, e.g. Fig. 4's uncovered tails).
    pub fn qq_points(&self, other: &Ecdf, n_points: usize) -> Vec<(f64, f64)> {
        let n_points = n_points.max(2);
        (0..n_points)
            .map(|i| {
                let p = (i as f64 + 0.5) / n_points as f64;
                (self.quantile(p), other.quantile(p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn cdf_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.0), 0.75);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn sampling_stays_in_support() {
        let e = Ecdf::new(vec![3.0, 7.0, 9.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = e.sample(&mut rng);
            assert!([3.0, 7.0, 9.0].contains(&x));
            let y = e.sample_smoothed(&mut rng);
            assert!((3.0..=9.0).contains(&y));
        }
    }

    #[test]
    fn max_y_distance_identical_is_zero() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.max_y_distance(&e.clone()), 0.0);
    }

    #[test]
    fn max_y_distance_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]).unwrap();
        let b = Ecdf::new(vec![10.0, 20.0]).unwrap();
        assert_eq!(a.max_y_distance(&b), 1.0);
        assert_eq!(b.max_y_distance(&a), 1.0);
    }

    #[test]
    fn max_y_distance_known_value() {
        // a: steps at 1,2,3,4 ; b: steps at 1,2 shifted mass
        let a = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Ecdf::new(vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        // At x slightly below 3: a has cdf 0.5, b has 0 → 0.5.
        assert!((a.max_y_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qq_points_diagonal_for_identical() {
        let e = Ecdf::new((1..=100).map(f64::from).collect()).unwrap();
        for (a, b) in e.qq_points(&e.clone(), 10) {
            assert_eq!(a, b);
        }
        // Shifted distribution: constant offset off the diagonal.
        let shifted = Ecdf::new((1..=100).map(|i| f64::from(i) + 5.0).collect()).unwrap();
        for (a, b) in e.qq_points(&shifted, 10) {
            assert_eq!(b - a, 5.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let e = Ecdf::new(vec![2.0, 1.0, 5.5]).unwrap();
        let json = serde_json::to_string(&e).unwrap();
        let back: Ecdf = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn counts_match_linear_scan() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        for x in [0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0] {
            assert_eq!(
                e.count_le(x),
                e.samples().iter().filter(|&&s| s <= x).count()
            );
            assert_eq!(
                e.count_lt(x),
                e.samples().iter().filter(|&&s| s < x).count()
            );
        }
        // The single-sample fast path agrees with the general path.
        let one = Ecdf::new(vec![3.0]).unwrap();
        assert_eq!((one.count_le(2.9), one.count_le(3.0)), (0, 1));
        assert_eq!((one.count_lt(3.0), one.count_lt(3.1)), (0, 1));
        assert_eq!(one.cdf(3.0), 1.0);
    }

    #[test]
    fn sample_batch_is_draw_identical_to_sequential_samples() {
        let e = Ecdf::new((0..97).map(f64::from).collect()).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let batch = e.sample_batch(&mut a, 33);
        let seq: Vec<f64> = (0..33).map(|_| e.sample(&mut b)).collect();
        assert_eq!(batch, seq);
        // The RNG streams stay aligned after the batch, too.
        assert_eq!(e.sample(&mut a), e.sample(&mut b));
    }

    #[test]
    fn quantile_batch_matches_pointwise() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let ps = [0.0, 0.25, 0.26, 0.5, 0.99, 1.0];
        assert_eq!(
            e.quantile_batch(&ps),
            ps.iter().map(|&p| e.quantile(p)).collect::<Vec<_>>()
        );
    }

    mod sweep_props {
        use super::*;
        use proptest::prelude::*;

        fn samples() -> impl Strategy<Value = Vec<f64>> {
            prop::collection::vec(0..200u32, 1..40)
                .prop_map(|v| v.into_iter().map(|x| f64::from(x) / 4.0).collect())
        }

        /// The pre-sweep reference: two binary searches per step, left
        /// limits probed explicitly.
        fn naive_max_y(a: &Ecdf, b: &Ecdf) -> f64 {
            let cdf_below = |e: &Ecdf, x: f64| e.count_lt(x) as f64 / e.len() as f64;
            let mut d: f64 = 0.0;
            for &x in a.samples().iter().chain(b.samples()) {
                d = d.max((a.cdf(x) - b.cdf(x)).abs());
                d = d.max((cdf_below(a, x) - cdf_below(b, x)).abs());
            }
            d
        }

        proptest! {
            #[test]
            fn sweep_equals_naive_ks(xs in samples(), ys in samples()) {
                let a = Ecdf::new(xs).unwrap();
                let b = Ecdf::new(ys).unwrap();
                prop_assert_eq!(a.max_y_distance(&b), naive_max_y(&a, &b));
                prop_assert_eq!(b.max_y_distance(&a), a.max_y_distance(&b));
            }

            #[test]
            fn cdf_batch_equals_pointwise(xs in samples(), qs in samples()) {
                let e = Ecdf::new(xs).unwrap();
                let batch = e.cdf_batch(&qs);
                let pointwise: Vec<f64> = qs.iter().map(|&q| e.cdf(q)).collect();
                prop_assert_eq!(batch, pointwise);
            }
        }
    }
}
