//! Variance–time plots for burstiness analysis (Fig. 3).
//!
//! The paper's procedure (§4.2): bin a point process into 100 ms intervals;
//! for each time scale `M` (1…10³ s), split the timeline into `M`-second
//! windows, compute each window's average count per 100 ms bin, and report
//! the variance of that per-window average across windows, normalized by
//! the squared mean. A Poisson process of the same rate gives a reference
//! line (`1/(mλ)` for `m` bins per window); burstier-than-Poisson traffic
//! sits above it.

use serde::{Deserialize, Serialize};

/// Bin width used by the paper: 100 ms.
pub const BIN_MS: u64 = 100;

/// One point of a variance–time plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceTimePoint {
    /// The time scale `M`, in seconds.
    pub scale_secs: u64,
    /// Normalized variance of per-window mean counts: `Var(k̄) / (E[k̄])²`.
    pub normalized_variance: f64,
    /// Number of `M`-second windows that contributed.
    pub windows: usize,
}

/// Count events into 100 ms bins over `[start_ms, end_ms)`.
///
/// `event_times_ms` need not be sorted; events outside the range are
/// ignored.
pub fn bin_counts(event_times_ms: &[u64], start_ms: u64, end_ms: u64) -> Vec<u32> {
    assert!(end_ms >= start_ms, "end before start");
    let n_bins = ((end_ms - start_ms) / BIN_MS) as usize;
    let mut bins = vec![0u32; n_bins];
    for &t in event_times_ms {
        if t >= start_ms && t < start_ms + n_bins as u64 * BIN_MS {
            bins[((t - start_ms) / BIN_MS) as usize] += 1;
        }
    }
    bins
}

/// Compute the variance–time plot of pre-binned 100 ms counts for the given
/// time scales (in seconds).
///
/// Scales for which fewer than 2 whole windows fit are skipped.
pub fn variance_time_plot(bins: &[u32], scales_secs: &[u64]) -> Vec<VarianceTimePoint> {
    let mut out = Vec::new();
    for &m in scales_secs {
        if m == 0 {
            continue;
        }
        let bins_per_window = (m * 1_000 / BIN_MS) as usize;
        if bins_per_window == 0 {
            continue;
        }
        let n_windows = bins.len() / bins_per_window;
        if n_windows < 2 {
            continue;
        }
        let means: Vec<f64> = (0..n_windows)
            .map(|w| {
                let slice = &bins[w * bins_per_window..(w + 1) * bins_per_window];
                slice.iter().map(|&c| f64::from(c)).sum::<f64>() / bins_per_window as f64
            })
            .collect();
        let grand_mean = means.iter().sum::<f64>() / n_windows as f64;
        if grand_mean <= 0.0 {
            continue;
        }
        let var = means.iter().map(|&k| (k - grand_mean).powi(2)).sum::<f64>() / n_windows as f64;
        out.push(VarianceTimePoint {
            scale_secs: m,
            normalized_variance: var / (grand_mean * grand_mean),
            windows: n_windows,
        });
    }
    out
}

/// The paper's log-spaced scale grid: 1 s to 1000 s.
pub fn default_scales() -> Vec<u64> {
    vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000]
}

/// Analytic variance–time reference for a Poisson process with per-100 ms
/// rate `lambda_per_bin` at time scale `scale_secs`:
/// `Var(k̄)/(E k̄)² = 1 / (m·λ)` where `m` is the bins per window.
pub fn poisson_reference(lambda_per_bin: f64, scale_secs: u64) -> f64 {
    let m = (scale_secs * 1_000 / BIN_MS) as f64;
    1.0 / (m * lambda_per_bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn binning_counts_correctly() {
        let times = [0, 50, 99, 100, 250, 999, 1_000];
        let bins = bin_counts(&times, 0, 1_000);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0], 3);
        assert_eq!(bins[1], 1);
        assert_eq!(bins[2], 1);
        assert_eq!(bins[9], 1);
        assert_eq!(bins.iter().sum::<u32>(), 6); // t=1000 excluded
    }

    #[test]
    fn binning_respects_offset() {
        let times = [1_000, 1_050, 2_000];
        let bins = bin_counts(&times, 1_000, 2_000);
        assert_eq!(bins[0], 2);
        assert_eq!(bins.iter().sum::<u32>(), 2);
    }

    #[test]
    fn poisson_trace_tracks_reference() {
        // Generate a Poisson process at 5 events/s for 4000 s.
        let mut rng = StdRng::seed_from_u64(99);
        let rate_per_ms = 0.005;
        let mut t = 0.0f64;
        let mut times = Vec::new();
        let horizon = 4_000_000.0;
        loop {
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / rate_per_ms;
            if t >= horizon {
                break;
            }
            times.push(t as u64);
        }
        let bins = bin_counts(&times, 0, horizon as u64);
        let lambda_per_bin = rate_per_ms * BIN_MS as f64;
        let plot = variance_time_plot(&bins, &[1, 10, 100]);
        for p in plot {
            let reference = poisson_reference(lambda_per_bin, p.scale_secs);
            let ratio = p.normalized_variance / reference;
            assert!(
                (0.5..2.0).contains(&ratio),
                "scale {} ratio {}",
                p.scale_secs,
                ratio
            );
        }
    }

    #[test]
    fn bursty_trace_exceeds_poisson() {
        // Bursts: 100 events in one 100 ms bin every 100 s.
        let mut times = Vec::new();
        for burst in 0..40u64 {
            let base = burst * 100_000;
            for i in 0..100 {
                times.push(base + i % 100);
            }
        }
        let bins = bin_counts(&times, 0, 4_000_000);
        let total_bins = bins.len() as f64;
        let lambda_per_bin = times.len() as f64 / total_bins;
        let plot = variance_time_plot(&bins, &[10]);
        let p = &plot[0];
        assert!(p.normalized_variance > 5.0 * poisson_reference(lambda_per_bin, 10));
    }

    #[test]
    fn degenerate_inputs_skip_gracefully() {
        assert!(variance_time_plot(&[], &[1, 10]).is_empty());
        assert!(variance_time_plot(&[0; 100], &[1]).is_empty()); // zero mean
        let one_window = vec![1u32; 10]; // only 1 window at 1 s
        assert!(variance_time_plot(&one_window, &[1]).is_empty());
    }
}
