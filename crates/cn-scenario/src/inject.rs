//! Deterministic materialization of a phase's injected events.
//!
//! Injections are a pure function of `(spec seed, phase index, ue)` — no
//! state leaks in from the baseline engine, its shard count, or the order
//! in which the overlay stream is drained. Per `(phase, ue)` the RNG
//! stream is consumed *sequentially per burst*, so a storm of intensity
//! `k` injects exactly the first `k` bursts of an intensity-`k'` storm
//! (`k < k'`): scenario intensity sweeps produce nested event multisets,
//! which is what makes shed-monotonicity under storms a theorem of the
//! overload controller rather than a coincidence of seeds.
//!
//! Every injected record is confined **by construction** to its phase's
//! half-open window and UE subset; the metamorphic suite in `cn-verify`
//! and this crate's tests then re-prove the confinement from the outside.

use crate::spec::{Phase, PhaseKind, StormKind, UeSubset};
use cn_gen::GenConfig;
use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId, MS_PER_SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paging-storm release delay bounds (ms after the paged `SRV_REQ`).
const PAGE_RELEASE_MIN_MS: u64 = 100;
const PAGE_RELEASE_MAX_MS: u64 = 2_000;

/// SplitMix64 finalizer (the same mix the generator uses for per-UE
/// stream seeds).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for one `(scenario seed, phase, ue)` cell: decorrelated from
/// both the master seed and the generator's per-UE streams.
fn cell_rng(seed: u64, phase: usize, ue: u32) -> StdRng {
    let cell = ((phase as u64) << 32 | u64::from(ue)) ^ 0x5CE2_A510_0000_0000;
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(cell)))
}

/// Device type of an injected record: UEs inside the baseline population
/// keep their configured type (anything else would make the composed
/// trace structurally ill-formed); overlay UEs beyond it take the
/// phase-declared type (M2M) or the population layout's extrapolation.
fn device_for(config: &GenConfig, ue: u32, overlay: Option<DeviceType>) -> DeviceType {
    if ue < config.population.total() {
        config.device_of(ue)
    } else {
        overlay.unwrap_or_else(|| config.device_of(ue))
    }
}

/// Materialize one phase's injected records, sorted by `(t, ue, event)`.
///
/// `phase_index` is the phase's position in the spec (the RNG
/// decorrelation key); `epoch` is the generation config's `start`.
pub fn materialize_phase(
    phase: &Phase,
    phase_index: usize,
    seed: u64,
    config: &GenConfig,
) -> Vec<TraceRecord> {
    let epoch = config.start;
    let start = phase.window.start_ms(epoch);
    let end = phase.window.end_ms(epoch);
    debug_assert!(start < end, "materialize_phase on an unvalidated window");
    let mut records = Vec::new();
    match &phase.kind {
        PhaseKind::FlashCrowd {
            ues,
            waves,
            handovers_per_ue,
        } => {
            flash_crowd(
                &mut records,
                *ues,
                *waves,
                *handovers_per_ue,
                start,
                end,
                phase_index,
                seed,
                config,
            );
        }
        PhaseKind::SignalingStorm {
            ues,
            kind,
            bursts_per_ue,
        } => {
            for ue in ues.iter() {
                let mut rng = cell_rng(seed, phase_index, ue);
                let device = device_for(config, ue, None);
                for _ in 0..*bursts_per_ue {
                    let t = rng.gen_range(start..end);
                    match kind {
                        StormKind::Paging => {
                            // The paged UE answers, then releases shortly
                            // after — both clamped inside the window.
                            let delta = rng.gen_range(PAGE_RELEASE_MIN_MS..PAGE_RELEASE_MAX_MS);
                            push(&mut records, t, ue, device, EventType::ServiceRequest);
                            let rel = (t + delta).min(end - 1);
                            push(&mut records, rel, ue, device, EventType::S1ConnRelease);
                        }
                        StormKind::Reestablishment => {
                            push(&mut records, t, ue, device, EventType::ServiceRequest);
                        }
                        StormKind::TauFlood => {
                            push(&mut records, t, ue, device, EventType::Tau);
                        }
                    }
                }
            }
        }
        PhaseKind::Outage { .. } => {
            // Pure suppression: nothing to inject.
        }
        PhaseKind::M2mReporting {
            ues,
            period_s,
            device,
        } => {
            let raw = (*period_s * MS_PER_SEC as f64).round() as u64;
            debug_assert!(raw >= 1, "unvalidated M2mReporting period (rounds to 0 ms)");
            // `ScenarioSpec::validate()` rejects periods that round to
            // 0 ms (`SpecError::ZeroIntensity`), but this function is
            // public and a debug_assert vanishes in release builds — where
            // `t += 0` below would spin forever. Clamp defensively so an
            // unvalidated call degrades to a 1 ms period instead of
            // wedging the process.
            let period = raw.max(1);
            // Synchronized: every fleet UE reports at exactly the same
            // instants — the zero-jitter pathological case.
            let mut t = start;
            while t < end {
                for ue in ues.iter() {
                    push(
                        &mut records,
                        t,
                        ue,
                        device_for(config, ue, Some(*device)),
                        EventType::Tau,
                    );
                }
                t = t.saturating_add(period);
            }
        }
    }
    records.sort_unstable();
    debug_assert!(
        records
            .iter()
            .all(|r| start <= r.t.as_millis() && r.t.as_millis() < end),
        "injection escaped its window"
    );
    records
}

#[allow(clippy::too_many_arguments)]
fn flash_crowd(
    records: &mut Vec<TraceRecord>,
    ues: UeSubset,
    waves: u32,
    handovers_per_ue: u32,
    start: u64,
    end: u64,
    phase_index: usize,
    seed: u64,
    config: &GenConfig,
) {
    let span = (end - start) / u64::from(waves);
    for ue in ues.iter() {
        let wave = u64::from((ue - ues.lo) % waves);
        // Wave w arrives in [start + w·span, start + (w+1)·span); the last
        // wave absorbs the division remainder so the whole window is used.
        let wave_start = start + wave * span.max(1);
        let wave_end = if wave == u64::from(waves) - 1 {
            end
        } else {
            (wave_start + span).min(end)
        };
        let (wave_start, wave_end) = if wave_start >= end {
            // Degenerate: more waves than milliseconds; collapse into the
            // final instant rather than escaping the window.
            (end - 1, end)
        } else {
            (wave_start, wave_end.max(wave_start + 1))
        };
        let mut rng = cell_rng(seed, phase_index, ue);
        let device = device_for(config, ue, None);
        let arrival = rng.gen_range(wave_start..wave_end);
        push(records, arrival, ue, device, EventType::Attach);
        // Handover-in events as the crowd converges on the venue cells.
        for _ in 0..handovers_per_ue {
            let t = rng.gen_range(arrival..end.max(arrival + 1));
            push(records, t, ue, device, EventType::Handover);
        }
    }
}

fn push(records: &mut Vec<TraceRecord>, t_ms: u64, ue: u32, device: DeviceType, event: EventType) {
    records.push(TraceRecord::new(
        Timestamp::from_millis(t_ms),
        UeId(ue),
        device,
        event,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TimeWindow;
    use cn_trace::PopulationMix;

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 9),
            2.0,
            7,
        )
    }

    fn in_window(records: &[TraceRecord], phase: &Phase, config: &GenConfig) -> bool {
        let (s, e) = (
            phase.window.start_ms(config.start),
            phase.window.end_ms(config.start),
        );
        records.iter().all(|r| {
            s <= r.t.as_millis() && r.t.as_millis() < e && phase.kind.ues().contains(r.ue.get())
        })
    }

    #[test]
    fn storm_confined_and_deterministic() {
        let phase = Phase {
            name: "tau".into(),
            window: TimeWindow::new(60.0, 120.0),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(2, 9),
                kind: StormKind::TauFlood,
                bursts_per_ue: 5,
            },
        };
        let cfg = config();
        let a = materialize_phase(&phase, 0, 42, &cfg);
        let b = materialize_phase(&phase, 0, 42, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7 * 5);
        assert!(in_window(&a, &phase, &cfg));
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        assert!(a.iter().all(|r| r.event == EventType::Tau));
        // A different seed draws different instants.
        let c = materialize_phase(&phase, 0, 43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn storm_intensity_is_a_prefix_multiset() {
        let cfg = config();
        for kind in [
            StormKind::Paging,
            StormKind::Reestablishment,
            StormKind::TauFlood,
        ] {
            let mk = |bursts| Phase {
                name: "s".into(),
                window: TimeWindow::new(10.0, 300.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 6),
                    kind,
                    bursts_per_ue: bursts,
                },
            };
            let small = materialize_phase(&mk(3), 1, 5, &cfg);
            let big = materialize_phase(&mk(8), 1, 5, &cfg);
            // Every record of the small storm appears (with multiplicity)
            // in the big one.
            let mut pool = big.clone();
            for r in &small {
                let i = pool.iter().position(|p| p == r).unwrap_or_else(|| {
                    panic!("{kind:?}: record {r:?} of the small storm missing from the big one")
                });
                pool.swap_remove(i);
            }
        }
    }

    #[test]
    fn paging_storm_pairs_requests_with_releases() {
        let phase = Phase {
            name: "page".into(),
            window: TimeWindow::new(0.0, 30.0),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(0, 4),
                kind: StormKind::Paging,
                bursts_per_ue: 6,
            },
        };
        let cfg = config();
        let recs = materialize_phase(&phase, 0, 9, &cfg);
        let reqs = recs
            .iter()
            .filter(|r| r.event == EventType::ServiceRequest)
            .count();
        let rels = recs
            .iter()
            .filter(|r| r.event == EventType::S1ConnRelease)
            .count();
        assert_eq!(reqs, 4 * 6);
        assert_eq!(rels, 4 * 6);
        assert!(in_window(&recs, &phase, &cfg));
    }

    #[test]
    fn flash_crowd_attaches_every_ue_once() {
        let phase = Phase {
            name: "stadium".into(),
            window: TimeWindow::new(120.0, 600.0),
            kind: PhaseKind::FlashCrowd {
                ues: UeSubset::new(0, 12),
                waves: 3,
                handovers_per_ue: 2,
            },
        };
        let cfg = config();
        let recs = materialize_phase(&phase, 2, 77, &cfg);
        assert!(in_window(&recs, &phase, &cfg));
        for ue in 0..12u32 {
            let mine: Vec<_> = recs.iter().filter(|r| r.ue.get() == ue).collect();
            assert_eq!(
                mine.iter().filter(|r| r.event == EventType::Attach).count(),
                1
            );
            assert_eq!(
                mine.iter()
                    .filter(|r| r.event == EventType::Handover)
                    .count(),
                2
            );
            // The attach precedes (or ties) every handover of its UE.
            let attach_t = mine
                .iter()
                .find(|r| r.event == EventType::Attach)
                .unwrap()
                .t;
            assert!(mine.iter().all(|r| r.t >= attach_t));
        }
    }

    #[test]
    fn m2m_reporting_is_synchronized() {
        let phase = Phase {
            name: "fleet".into(),
            window: TimeWindow::new(0.0, 100.0),
            kind: PhaseKind::M2mReporting {
                ues: UeSubset::new(20, 25), // beyond the 16-UE population
                period_s: 30.0,
                device: DeviceType::ConnectedCar,
            },
        };
        let cfg = config();
        let recs = materialize_phase(&phase, 0, 1, &cfg);
        // Instants 0, 30, 60, 90 s into the window × 5 UEs.
        assert_eq!(recs.len(), 4 * 5);
        let mut instants: Vec<u64> = recs.iter().map(|r| r.t.as_millis()).collect();
        instants.dedup();
        assert_eq!(instants.len(), 4, "reports must be synchronized");
        assert!(recs.iter().all(|r| r.device == DeviceType::ConnectedCar));
        assert!(recs.iter().all(|r| r.event == EventType::Tau));
    }

    #[test]
    fn in_population_ues_keep_their_configured_device() {
        let cfg = config(); // 10 phones, 4 cars, 2 tablets
        let phase = Phase {
            name: "fleet".into(),
            window: TimeWindow::new(0.0, 60.0),
            kind: PhaseKind::M2mReporting {
                ues: UeSubset::new(8, 12), // straddles the phone/car boundary
                period_s: 60.0,
                device: DeviceType::Tablet,
            },
        };
        let recs = materialize_phase(&phase, 0, 1, &cfg);
        for r in &recs {
            assert_eq!(r.device, cfg.device_of(r.ue.get()), "{r:?}");
        }
    }

    /// Regression for the release-build infinite loop: a period that
    /// rounds to 0 ms must be rejected by validation, and — because
    /// `materialize_phase` is public — must terminate (clamped to 1 ms)
    /// even when validation is bypassed. The termination half only runs
    /// in release tests; in debug the defensive `debug_assert` fires
    /// first, which is the intended misuse signal there.
    #[test]
    fn zero_rounding_m2m_period_is_rejected_and_cannot_wedge() {
        let phase = Phase {
            name: "zero-period".into(),
            window: TimeWindow::new(0.0, 1.0),
            kind: PhaseKind::M2mReporting {
                ues: UeSubset::new(0, 2),
                period_s: 0.0004, // rounds to 0 ms
                device: DeviceType::ConnectedCar,
            },
        };
        let spec = crate::ScenarioSpec {
            name: "bad".into(),
            seed: 1,
            phases: vec![phase.clone()],
        };
        assert_eq!(
            spec.validate(),
            Err(crate::SpecError::ZeroIntensity {
                phase: 0,
                field: "period_s"
            })
        );
        #[cfg(not(debug_assertions))]
        {
            let recs = materialize_phase(&phase, 0, 1, &config());
            // Clamped to 1 ms: one report per UE per millisecond of the
            // 1 s window — finite, not an infinite loop.
            assert_eq!(recs.len(), 1_000 * 2);
        }
    }

    #[test]
    fn outage_injects_nothing() {
        let phase = Phase {
            name: "dark".into(),
            window: TimeWindow::new(0.0, 60.0),
            kind: PhaseKind::Outage {
                ues: UeSubset::new(0, 16),
            },
        };
        assert!(materialize_phase(&phase, 0, 1, &config()).is_empty());
    }
}
