//! Scenario specifications: serde-able, validated, seedable.
//!
//! A [`ScenarioSpec`] is a *pure description* of a stress scenario: a
//! timeline of [`Phase`]s, each confining one perturbation primitive to a
//! half-open [`TimeWindow`] (seconds relative to the synthesis start) and
//! a [`UeSubset`] of the synthesized population. Specs carry their own
//! seed, so a scenario is replay-deterministic independently of the
//! baseline generator's seed and shard count.
//!
//! Validation follows the `GenConfig` saturation discipline from the
//! sharded-stream work: every `f64` field is checked for NaN / infinity /
//! sign *up front* and rejected with a typed [`SpecError`] — a spec that
//! validates can be resolved to millisecond windows without any further
//! range checks. Phase windows must be pairwise disjoint: the metamorphic
//! contract ("each perturbation changes exactly its own window") is only
//! decidable when no two phases share an instant.

use cn_trace::{DeviceType, Timestamp, MS_PER_SEC};
use serde::{Deserialize, Serialize};

/// A half-open time window `[start_s, start_s + duration_s)`, in seconds
/// relative to the scenario epoch (the generation config's `start`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Window start, seconds after the scenario epoch (finite, ≥ 0).
    pub start_s: f64,
    /// Window length in seconds (finite, > 0 after millisecond rounding).
    pub duration_s: f64,
}

impl TimeWindow {
    /// A window starting `start_s` seconds into the scenario and lasting
    /// `duration_s` seconds.
    pub fn new(start_s: f64, duration_s: f64) -> TimeWindow {
        TimeWindow {
            start_s,
            duration_s,
        }
    }

    /// Start of the window resolved against an epoch, in absolute
    /// milliseconds. Only meaningful on a validated spec.
    pub fn start_ms(&self, epoch: Timestamp) -> u64 {
        epoch
            .saturating_add((self.start_s * MS_PER_SEC as f64).round() as u64)
            .as_millis()
    }

    /// Exclusive end of the window resolved against an epoch.
    pub fn end_ms(&self, epoch: Timestamp) -> u64 {
        self.start_ms(epoch)
            .saturating_add((self.duration_s * MS_PER_SEC as f64).round() as u64)
    }
}

/// A contiguous, half-open range `[lo, hi)` of synthesized UE indices the
/// phase is confined to.
///
/// Indices follow the generation config's layout (phones, then connected
/// cars, then tablets); a subset may deliberately reach *beyond* the
/// baseline population to model overlay devices (e.g. an M2M fleet) that
/// emit only scenario traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UeSubset {
    /// First UE index in the subset.
    pub lo: u32,
    /// One past the last UE index in the subset.
    pub hi: u32,
}

impl UeSubset {
    /// The subset `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> UeSubset {
        UeSubset { lo, hi }
    }

    /// Number of UEs in the subset.
    pub fn len(&self) -> u32 {
        self.hi.saturating_sub(self.lo)
    }

    /// True when the subset contains no UEs.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// True when `ue` falls inside the subset.
    pub fn contains(&self, ue: u32) -> bool {
        self.lo <= ue && ue < self.hi
    }

    /// Iterate the subset's UE indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        self.lo..self.hi
    }
}

/// Which signaling-storm flavor a storm phase injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StormKind {
    /// Paging storm: each burst is a `SRV_REQ` (the paged UE answering)
    /// followed by its `S1_CONN_REL` shortly after.
    Paging,
    /// RRC re-establishment storm after an outage: a flood of bare
    /// `SRV_REQ` as every UE races to restore its signaling connection.
    Reestablishment,
    /// TAU flood at a tracking-area boundary: bare `TAU` events.
    TauFlood,
}

/// One perturbation primitive, confined to its phase's window and subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// A flash crowd (stadium event): the subset mass-attaches in `waves`
    /// arrival waves spread across the window, each arrival followed by
    /// `handovers_per_ue` handover-in events as the crowd converges on
    /// the venue's cells.
    FlashCrowd {
        /// UEs that take part in the crowd.
        ues: UeSubset,
        /// Number of arrival waves (≥ 1); UE `u` joins wave
        /// `(u - lo) % waves`.
        waves: u32,
        /// Handover-in events injected per arriving UE (may be 0).
        handovers_per_ue: u32,
    },
    /// A signaling storm of the given flavor: `bursts_per_ue` bursts per
    /// subset UE at uniform times in the window.
    SignalingStorm {
        /// UEs caught in the storm.
        ues: UeSubset,
        /// Storm flavor (what each burst injects).
        kind: StormKind,
        /// Bursts per UE (≥ 1). Burst `i` of a UE reuses the first `i`
        /// RNG draws of burst `i+1`'s stream, so a storm of intensity `k`
        /// injects a sub-multiset of one of intensity `k' > k` — the
        /// property the overload monotonicity tests lean on.
        bursts_per_ue: u32,
    },
    /// A simulated outage: *suppress* every baseline event of the subset
    /// inside the window (the RAN is down; nothing reaches the core).
    /// Typically followed by a `SignalingStorm` phase modeling recovery.
    Outage {
        /// UEs behind the failed site.
        ues: UeSubset,
    },
    /// Synchronized M2M periodic reporting: every subset UE emits a `TAU`
    /// (periodic-timer expiry) at exactly `start + k·period_s` for every
    /// `k` with that instant inside the window — the pathological
    /// zero-jitter fleet.
    M2mReporting {
        /// The reporting fleet.
        ues: UeSubset,
        /// Reporting period in seconds (finite, ≥ 0.001).
        period_s: f64,
        /// Device type of fleet UEs *beyond* the baseline population
        /// (UEs inside it keep their configured device type).
        device: DeviceType,
    },
}

impl PhaseKind {
    /// The UE subset this phase is confined to.
    pub fn ues(&self) -> UeSubset {
        match self {
            PhaseKind::FlashCrowd { ues, .. }
            | PhaseKind::SignalingStorm { ues, .. }
            | PhaseKind::Outage { ues }
            | PhaseKind::M2mReporting { ues, .. } => *ues,
        }
    }

    /// Short label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::FlashCrowd { .. } => "flash_crowd",
            PhaseKind::SignalingStorm { .. } => "signaling_storm",
            PhaseKind::Outage { .. } => "outage",
            PhaseKind::M2mReporting { .. } => "m2m_reporting",
        }
    }
}

/// One phase of a scenario timeline: a named perturbation confined to a
/// window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase name (metric label, report rows).
    pub name: String,
    /// The phase's half-open time window.
    pub window: TimeWindow,
    /// The perturbation primitive.
    pub kind: PhaseKind,
}

/// A complete scenario: named, seeded, and a timeline of phases.
///
/// The empty timeline is the **identity scenario**: applying it to any
/// baseline stream reproduces that stream byte for byte (the anchor of
/// the metamorphic test suite).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (artifact file names, reports).
    pub name: String,
    /// Scenario seed: injections are a pure function of
    /// `(seed, phase index, ue)`, independent of the baseline engine.
    pub seed: u64,
    /// Timeline phases; windows must be pairwise disjoint.
    pub phases: Vec<Phase>,
}

/// Why a [`ScenarioSpec`] failed validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpecError {
    /// An `f64` field is NaN or infinite.
    NonFinite {
        /// Index of the offending phase.
        phase: usize,
        /// Field name.
        field: &'static str,
        /// The offending value (NaN serializes as `null`; compare via
        /// the error's rendered form in that case).
        value: f64,
    },
    /// An `f64` field is negative.
    Negative {
        /// Index of the offending phase.
        phase: usize,
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A window rounds to zero milliseconds.
    EmptyWindow {
        /// Index of the offending phase.
        phase: usize,
    },
    /// Two phase windows share at least one instant.
    OverlappingWindows {
        /// Index of the earlier-starting phase.
        earlier: usize,
        /// Index of the later-starting phase.
        later: usize,
    },
    /// A phase's UE subset is empty.
    EmptyUeSubset {
        /// Index of the offending phase.
        phase: usize,
    },
    /// An intensity knob (waves, bursts, period) is zero or too small to
    /// inject anything.
    ZeroIntensity {
        /// Index of the offending phase.
        phase: usize,
        /// Field name.
        field: &'static str,
    },
    /// Composing populations overflowed the dense `u32` UE id space
    /// ([`crate::ComposedStream`]): the cumulative population total
    /// through this slot exceeds `u32::MAX`, so the slot's UEs cannot be
    /// relabeled onto a disjoint range without aliasing earlier slots.
    UeRangeOverflow {
        /// Index of the first slot whose relabeled range does not fit.
        slot: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NonFinite {
                phase,
                field,
                value,
            } => write!(f, "phase {phase}: `{field}` is not finite ({value})"),
            SpecError::Negative {
                phase,
                field,
                value,
            } => write!(f, "phase {phase}: `{field}` is negative ({value})"),
            SpecError::EmptyWindow { phase } => {
                write!(f, "phase {phase}: window rounds to zero milliseconds")
            }
            SpecError::OverlappingWindows { earlier, later } => {
                write!(f, "phases {earlier} and {later} have overlapping windows")
            }
            SpecError::EmptyUeSubset { phase } => {
                write!(f, "phase {phase}: UE subset is empty")
            }
            SpecError::ZeroIntensity { phase, field } => {
                write!(f, "phase {phase}: `{field}` must be positive")
            }
            SpecError::UeRangeOverflow { slot } => {
                write!(
                    f,
                    "slot {slot}: cumulative population total overflows the u32 UE id space"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Check one `f64` field: finite and non-negative.
fn check_f64(phase: usize, field: &'static str, value: f64) -> Result<(), SpecError> {
    if !value.is_finite() {
        return Err(SpecError::NonFinite {
            phase,
            field,
            value,
        });
    }
    if value < 0.0 {
        return Err(SpecError::Negative {
            phase,
            field,
            value,
        });
    }
    Ok(())
}

impl ScenarioSpec {
    /// The identity scenario: no phases, any stream passes through
    /// untouched.
    pub fn identity(name: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            seed,
            phases: Vec::new(),
        }
    }

    /// Validate the spec: every float finite and in range, every window
    /// non-empty at millisecond resolution, every subset non-empty, every
    /// intensity positive, and all windows pairwise disjoint.
    ///
    /// A validated spec can be compiled and resolved without further
    /// range checks (the saturation discipline: reject up front, then
    /// trust the numbers).
    pub fn validate(&self) -> Result<(), SpecError> {
        for (i, phase) in self.phases.iter().enumerate() {
            check_f64(i, "window.start_s", phase.window.start_s)?;
            check_f64(i, "window.duration_s", phase.window.duration_s)?;
            let start = phase.window.start_ms(Timestamp::from_millis(0));
            let end = phase.window.end_ms(Timestamp::from_millis(0));
            if end <= start {
                return Err(SpecError::EmptyWindow { phase: i });
            }
            if phase.kind.ues().is_empty() {
                return Err(SpecError::EmptyUeSubset { phase: i });
            }
            match &phase.kind {
                PhaseKind::FlashCrowd { waves, .. } => {
                    if *waves == 0 {
                        return Err(SpecError::ZeroIntensity {
                            phase: i,
                            field: "waves",
                        });
                    }
                }
                PhaseKind::SignalingStorm { bursts_per_ue, .. } => {
                    if *bursts_per_ue == 0 {
                        return Err(SpecError::ZeroIntensity {
                            phase: i,
                            field: "bursts_per_ue",
                        });
                    }
                }
                PhaseKind::M2mReporting { period_s, .. } => {
                    check_f64(i, "period_s", *period_s)?;
                    if (*period_s * MS_PER_SEC as f64).round() < 1.0 {
                        return Err(SpecError::ZeroIntensity {
                            phase: i,
                            field: "period_s",
                        });
                    }
                }
                PhaseKind::Outage { .. } => {}
            }
        }
        // Pairwise disjoint windows, at millisecond resolution against a
        // zero epoch (disjointness is translation-invariant).
        let epoch = Timestamp::from_millis(0);
        let mut order: Vec<usize> = (0..self.phases.len()).collect();
        order.sort_by_key(|&i| self.phases[i].window.start_ms(epoch));
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if self.phases[b].window.start_ms(epoch) < self.phases[a].window.end_ms(epoch) {
                return Err(SpecError::OverlappingWindows {
                    earlier: a,
                    later: b,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm(start_s: f64, duration_s: f64) -> Phase {
        Phase {
            name: "storm".into(),
            window: TimeWindow::new(start_s, duration_s),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(0, 10),
                kind: StormKind::TauFlood,
                bursts_per_ue: 3,
            },
        }
    }

    #[test]
    fn identity_validates() {
        assert_eq!(ScenarioSpec::identity("id", 1).validate(), Ok(()));
    }

    #[test]
    fn nan_and_negative_windows_are_typed_errors() {
        let mut spec = ScenarioSpec::identity("bad", 1);
        spec.phases.push(storm(f64::NAN, 10.0));
        assert!(matches!(
            spec.validate(),
            Err(SpecError::NonFinite {
                phase: 0,
                field: "window.start_s",
                ..
            })
        ));
        spec.phases[0].window = TimeWindow::new(5.0, f64::INFINITY);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::NonFinite {
                phase: 0,
                field: "window.duration_s",
                ..
            })
        ));
        spec.phases[0].window = TimeWindow::new(-1.0, 10.0);
        assert!(matches!(
            spec.validate(),
            Err(SpecError::Negative {
                phase: 0,
                field: "window.start_s",
                ..
            })
        ));
        spec.phases[0].window = TimeWindow::new(1.0, 0.0);
        assert_eq!(spec.validate(), Err(SpecError::EmptyWindow { phase: 0 }));
        // Sub-millisecond duration rounds to an empty window.
        spec.phases[0].window = TimeWindow::new(1.0, 0.0004);
        assert_eq!(spec.validate(), Err(SpecError::EmptyWindow { phase: 0 }));
    }

    #[test]
    fn overlap_is_rejected_in_any_declaration_order() {
        let mut spec = ScenarioSpec::identity("overlap", 1);
        spec.phases.push(storm(100.0, 50.0));
        spec.phases.push(storm(10.0, 91.0)); // [10,101) overlaps [100,150)
        assert_eq!(
            spec.validate(),
            Err(SpecError::OverlappingWindows {
                earlier: 1,
                later: 0
            })
        );
        // Touching windows ([10,100) then [100,150)) are disjoint.
        spec.phases[1].window = TimeWindow::new(10.0, 90.0);
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn empty_subset_and_zero_intensity_are_rejected() {
        let mut spec = ScenarioSpec::identity("bad", 1);
        spec.phases.push(Phase {
            name: "crowd".into(),
            window: TimeWindow::new(0.0, 60.0),
            kind: PhaseKind::FlashCrowd {
                ues: UeSubset::new(7, 7),
                waves: 2,
                handovers_per_ue: 1,
            },
        });
        assert_eq!(spec.validate(), Err(SpecError::EmptyUeSubset { phase: 0 }));
        spec.phases[0].kind = PhaseKind::FlashCrowd {
            ues: UeSubset::new(0, 5),
            waves: 0,
            handovers_per_ue: 1,
        };
        assert_eq!(
            spec.validate(),
            Err(SpecError::ZeroIntensity {
                phase: 0,
                field: "waves"
            })
        );
        spec.phases[0].kind = PhaseKind::M2mReporting {
            ues: UeSubset::new(0, 5),
            period_s: 0.0001,
            device: DeviceType::ConnectedCar,
        };
        assert_eq!(
            spec.validate(),
            Err(SpecError::ZeroIntensity {
                phase: 0,
                field: "period_s"
            })
        );
    }

    #[test]
    fn subset_basics() {
        let s = UeSubset::new(4, 9);
        assert_eq!(s.len(), 5);
        assert!(s.contains(4) && s.contains(8));
        assert!(!s.contains(3) && !s.contains(9));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![4, 5, 6, 7, 8]);
        assert!(UeSubset::new(9, 4).is_empty());
    }

    #[test]
    fn windows_resolve_against_the_epoch() {
        let w = TimeWindow::new(1.5, 2.25);
        let epoch = Timestamp::from_millis(1_000);
        assert_eq!(w.start_ms(epoch), 2_500);
        assert_eq!(w.end_ms(epoch), 4_750);
    }

    #[test]
    fn spec_serde_round_trips() {
        let mut spec = ScenarioSpec::identity("round", 99);
        spec.phases.push(storm(30.0, 120.0));
        spec.phases.push(Phase {
            name: "fleet".into(),
            window: TimeWindow::new(400.0, 60.0),
            kind: PhaseKind::M2mReporting {
                ues: UeSubset::new(40, 80),
                period_s: 10.0,
                device: DeviceType::ConnectedCar,
            },
        });
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
