//! Scenario export: stream a scenario straight into the binary trace
//! format, with the PR-5 failure-containment contract on the sink leg.
//!
//! [`write_scenario_binary`] takes the sink **by mutable reference** so a
//! caller keeps it when the export faults — the bytes that reached it
//! before the fault are a verbatim prefix of the fault-free export, and
//! obey `cn-trace`'s finish-or-recover contract: `from_binary` rejects
//! the partial file (zero-count header), `recover_binary` salvages every
//! record that landed.

use std::io::{Seek, Write};

use cn_gen::StreamError;
use cn_trace::io::{BinaryStreamWriter, IoError};

use crate::apply::{RecordSource, ScenarioStats, ScenarioStream};

fn io_fault(stage: &'static str, e: IoError) -> StreamError {
    StreamError::Io {
        stage,
        message: e.to_string(),
    }
}

/// Drain `stream` into `sink` as a binary trace, returning the drained
/// stats.
///
/// Faults — baseline (worker panic, spill I/O) or sink — surface as the
/// same typed [`StreamError`] the rest of the streaming stack uses; sink
/// failures carry the stage that failed (`export-header`,
/// `export-write`, `export-finish`). On any error the sink's header
/// count is still the zero placeholder, so the partial file fails
/// `from_binary` loudly and is salvageable with `recover_binary`.
pub fn write_scenario_binary<S: RecordSource, W: Write + Seek>(
    mut stream: ScenarioStream<'_, S>,
    sink: &mut W,
) -> Result<ScenarioStats, StreamError> {
    let mut writer =
        BinaryStreamWriter::new(&mut *sink).map_err(|e| io_fault("export-header", e))?;
    while let Some(rec) = stream.try_next()? {
        writer
            .write(&rec)
            .map_err(|e| io_fault("export-write", e))?;
    }
    writer.finish().map_err(|e| io_fault("export-finish", e))?;
    stream.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::IterSource;
    use crate::spec::{Phase, PhaseKind, ScenarioSpec, StormKind, TimeWindow, UeSubset};
    use cn_fit::{fit, FitConfig, Method, ModelSet};
    use cn_gen::GenConfig;
    use cn_obs::Registry;
    use cn_trace::io::{from_binary, recover_binary, to_binary, FailingWriter};
    use cn_trace::{PopulationMix, Timestamp};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(16, 6, 4),
            Timestamp::at_hour(0, 9),
            2.0,
            0xFEED,
        )
    }

    fn storm() -> ScenarioSpec {
        ScenarioSpec {
            name: "storm".into(),
            seed: 7,
            phases: vec![Phase {
                name: "paging".into(),
                window: TimeWindow::new(1200.0, 1800.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 12),
                    kind: StormKind::Paging,
                    bursts_per_ue: 3,
                },
            }],
        }
    }

    #[test]
    fn export_matches_batch_bytes() {
        let models = fitted();
        let config = config();
        let spec = storm();
        let (batch, _) =
            crate::apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        let baseline = cn_gen::generate(&models, &config);
        let stream = ScenarioStream::new(
            &spec,
            &config,
            IterSource(baseline.into_records().into_iter()),
            &Registry::disabled(),
        )
        .unwrap();
        let mut sink = std::io::Cursor::new(Vec::new());
        let stats = write_scenario_binary(stream, &mut sink).unwrap();
        let bytes = sink.into_inner();
        assert_eq!(bytes, to_binary(&batch));
        assert_eq!(from_binary(&bytes).unwrap(), batch);
        assert_eq!(stats.events, batch.len() as u64);
    }

    #[test]
    fn sink_fault_is_typed_and_leaves_a_salvageable_prefix() {
        let models = fitted();
        let config = config();
        let spec = storm();
        let baseline = cn_gen::generate(&models, &config);
        let stream = ScenarioStream::new(
            &spec,
            &config,
            IterSource(baseline.into_records().into_iter()),
            &Registry::disabled(),
        )
        .unwrap();
        // Header + 40 whole records, then the sink dies.
        let mut sink = FailingWriter::new(std::io::Cursor::new(Vec::new()), 16 + 40 * 14);
        let err = write_scenario_binary(stream, &mut sink).unwrap_err();
        assert!(
            matches!(
                err,
                StreamError::Io {
                    stage: "export-write",
                    ..
                }
            ),
            "{err}"
        );
        let bytes = sink.into_inner().into_inner();
        // Finish never ran: zero-count header fails from_binary…
        assert!(from_binary(&bytes).is_err());
        // …and the salvaged prefix is verbatim the fault-free head.
        let salvaged = recover_binary(&bytes).unwrap();
        let (full, _) =
            crate::apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        assert_eq!(salvaged.len(), 40);
        assert!(salvaged.iter().zip(full.iter()).all(|(a, b)| a == b));
    }
}
