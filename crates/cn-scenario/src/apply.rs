//! The scenario overlay stream: baseline engine × compiled scenario.
//!
//! [`ScenarioStream`] is a two-way ordered merge between a baseline
//! [`RecordSource`] (any generation engine) and the scenario's injected
//! events, with outage phases *suppressing* baseline records inside their
//! window/subset. Because phase windows are pairwise disjoint and each
//! phase's injections are sorted, the global injection sequence is the
//! concatenation of per-phase sequences — the stream materializes at most
//! **one phase at a time**, keeping memory bounded by the largest phase
//! rather than the whole scenario.
//!
//! Metamorphic contract (enforced by `cn-verify`'s suite):
//!
//! * the **identity scenario** (no phases) emits the baseline byte for
//!   byte — the overlay machinery is provably inert;
//! * every emitted perturbation is confined to its phase's window and UE
//!   subset; records outside every window pass through verbatim;
//! * the output is replay-deterministic per `(spec seed, config)`,
//!   independent of the baseline engine or shard count.
//!
//! Failure containment follows the sharded-stream contract: a baseline
//! fault surfaces through [`ScenarioStream::try_next`] as the same typed
//! [`StreamError`], and everything emitted before the fault is a verbatim
//! prefix of the fault-free scenario stream.

use std::collections::VecDeque;

use crate::inject::materialize_phase;
use crate::spec::{PhaseKind, ScenarioSpec, SpecError, UeSubset};
use cn_fit::ModelSet;
use cn_gen::{GenConfig, PopulationStream, ShardedStream, StreamError};
use cn_obs::{Counter, Registry};
use cn_trace::{Trace, TraceRecord};

/// A fallible, ordered record source — the baseline leg of a scenario.
///
/// Implemented for the sharded parallel stream (faults surface as typed
/// errors), the sequential population stream, and any plain iterator of
/// records (batch traces, binary readers, composed populations).
pub trait RecordSource {
    /// Pull the next record, or a typed stream fault.
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError>;

    /// Wind the source down; sources with workers refuse success if any
    /// worker failed (the sharded-stream containment contract).
    fn finish(self) -> Result<(), StreamError>
    where
        Self: Sized,
    {
        Ok(())
    }
}

impl RecordSource for ShardedStream<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        ShardedStream::try_next(self)
    }

    fn finish(self) -> Result<(), StreamError> {
        ShardedStream::finish(self).map(|_| ())
    }
}

impl RecordSource for PopulationStream<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.next())
    }
}

/// Adapter making any record iterator a (never-failing) [`RecordSource`].
pub struct IterSource<I>(pub I);

impl<I: Iterator<Item = TraceRecord>> RecordSource for IterSource<I> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.0.next())
    }
}

/// One compiled (validated + resolved) phase.
struct CompiledPhase {
    index: usize,
    start_ms: u64,
    end_ms: u64,
    ues: UeSubset,
    suppresses: bool,
    injected: Counter,
    suppressed: Counter,
}

/// What a drained scenario stream did, by phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Records emitted in total (baseline survivors + injections).
    pub events: u64,
    /// Baseline records passed through untouched.
    pub passthrough: u64,
    /// Records injected by scenario phases.
    pub injected: u64,
    /// Baseline records suppressed by outage phases.
    pub suppressed: u64,
}

/// A scenario applied over a baseline source (see module docs).
pub struct ScenarioStream<'m, S> {
    source: S,
    spec: &'m ScenarioSpec,
    config: GenConfig,
    /// Phase order by window start; `next_phase` indexes into this.
    order: Vec<CompiledPhase>,
    next_phase: usize,
    queue: VecDeque<TraceRecord>,
    /// Index into `order` of the phase currently draining in `queue`.
    queue_phase: usize,
    src_peek: Option<TraceRecord>,
    src_done: bool,
    stats: ScenarioStats,
    passthrough: Counter,
    emitted: Counter,
}

impl<'m, S: RecordSource> ScenarioStream<'m, S> {
    /// Compile `spec` against `config` and wrap `source`. Fails with the
    /// spec's typed validation error; a returned stream can no longer
    /// fail for spec reasons.
    ///
    /// `registry` feeds the `cn_scenario_*` counter family
    /// (`cn_scenario_injected_total{phase=..}`,
    /// `cn_scenario_suppressed_total{phase=..}`,
    /// `cn_scenario_passthrough_total`, `cn_scenario_events_total`);
    /// pass [`Registry::disabled`] for a zero-cost no-op.
    pub fn new(
        spec: &'m ScenarioSpec,
        config: &GenConfig,
        source: S,
        registry: &Registry,
    ) -> Result<ScenarioStream<'m, S>, SpecError> {
        spec.validate()?;
        let mut order: Vec<CompiledPhase> = spec
            .phases
            .iter()
            .enumerate()
            .map(|(index, phase)| {
                let labels: &[(&str, &str)] =
                    &[("phase", phase.name.as_str()), ("kind", phase.kind.label())];
                CompiledPhase {
                    index,
                    start_ms: phase.window.start_ms(config.start),
                    end_ms: phase.window.end_ms(config.start),
                    ues: phase.kind.ues(),
                    suppresses: matches!(phase.kind, PhaseKind::Outage { .. }),
                    injected: registry.counter_with("cn_scenario_injected_total", labels),
                    suppressed: registry.counter_with("cn_scenario_suppressed_total", labels),
                }
            })
            .collect();
        order.sort_by_key(|p| p.start_ms);
        Ok(ScenarioStream {
            source,
            spec,
            config: *config,
            order,
            next_phase: 0,
            queue: VecDeque::new(),
            queue_phase: usize::MAX,
            src_peek: None,
            src_done: false,
            stats: ScenarioStats::default(),
            passthrough: registry.counter("cn_scenario_passthrough_total"),
            emitted: registry.counter("cn_scenario_events_total"),
        })
    }

    /// Pull the next scenario record, or a typed baseline fault.
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        // Fill the baseline peek slot, dropping suppressed records.
        while self.src_peek.is_none() && !self.src_done {
            match self.source.try_next()? {
                None => self.src_done = true,
                Some(rec) => {
                    if let Some(p) = self.suppressor_of(&rec) {
                        self.order[p].suppressed.inc();
                        self.stats.suppressed += 1;
                    } else {
                        self.src_peek = Some(rec);
                    }
                }
            }
        }
        // Fill the injection queue from the next phase in window order.
        while self.queue.is_empty() && self.next_phase < self.order.len() {
            let p = &self.order[self.next_phase];
            // Cold: once per phase, not per record.
            let _inject = cn_obs::trace::global_span("cn_scenario_inject");
            self.queue = materialize_phase(
                &self.spec.phases[p.index],
                p.index,
                self.spec.seed,
                &self.config,
            )
            .into();
            self.queue_phase = self.next_phase;
            self.next_phase += 1;
        }
        // Ordered two-way merge; ties go to the baseline so equal records
        // interleave deterministically.
        let take_source = match (&self.src_peek, self.queue.front()) {
            (None, None) => return Ok(None),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(s), Some(q)) => s <= q,
        };
        self.stats.events += 1;
        self.emitted.inc();
        if take_source {
            self.stats.passthrough += 1;
            self.passthrough.inc();
            Ok(self.src_peek.take())
        } else {
            self.order[self.queue_phase].injected.inc();
            self.stats.injected += 1;
            Ok(self.queue.pop_front())
        }
    }

    /// The outage phase (index into `order`) that suppresses `rec`, if
    /// any.
    fn suppressor_of(&self, rec: &TraceRecord) -> Option<usize> {
        let t = rec.t.as_millis();
        self.order.iter().position(|p| {
            p.suppresses && p.start_ms <= t && t < p.end_ms && p.ues.contains(rec.ue.get())
        })
    }

    /// Per-phase and total accounting so far.
    pub fn stats(&self) -> &ScenarioStats {
        &self.stats
    }

    /// Wind down: drains nothing further, but propagates the baseline
    /// source's terminal verdict (a panicked shard worker fails `finish`
    /// even if its records were never needed).
    pub fn finish(self) -> Result<ScenarioStats, StreamError> {
        self.source.finish()?;
        Ok(self.stats)
    }

    /// Drain the stream into a materialized [`Trace`] plus its stats
    /// (convenience for tests and batch callers).
    pub fn collect_trace(mut self) -> Result<(Trace, ScenarioStats), StreamError> {
        let mut records = Vec::new();
        while let Some(rec) = self.try_next()? {
            records.push(rec);
        }
        let stats = self.finish()?;
        // The merge of sorted inputs is sorted: from_records re-sorts
        // (cheaply, already-sorted input) and would hide a violation, so
        // assert it here where the invariant lives.
        debug_assert!(
            records.windows(2).all(|w| w[0] <= w[1]),
            "scenario stream emitted out of order"
        );
        Ok((Trace::from_records(records), stats))
    }
}

/// A scenario overlay is itself a [`RecordSource`]: downstream stages
/// (binary export, the live pacing server) drain it through the same
/// fallible protocol as any engine, and `finish` keeps the containment
/// contract (a panicked baseline worker still fails the wind-down).
impl<S: RecordSource> RecordSource for ScenarioStream<'_, S> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        ScenarioStream::try_next(self)
    }

    fn finish(self) -> Result<(), StreamError> {
        ScenarioStream::finish(self).map(|_| ())
    }
}

/// Apply a scenario over the **batch** engine: generate with
/// [`cn_gen::generate`], overlay, materialize.
pub fn apply_scenario(
    spec: &ScenarioSpec,
    models: &ModelSet,
    config: &GenConfig,
    registry: &Registry,
) -> Result<(Trace, ScenarioStats), ScenarioError> {
    let baseline = cn_gen::generate(models, config);
    let stream = ScenarioStream::new(
        spec,
        config,
        IterSource(baseline.into_records().into_iter()),
        registry,
    )?;
    Ok(stream.collect_trace()?)
}

/// A scenario failure: either the spec was invalid, or the baseline
/// stream faulted.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The spec failed validation.
    Spec(SpecError),
    /// The baseline engine or the export sink faulted.
    Stream(StreamError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Spec(e) => write!(f, "invalid scenario spec: {e}"),
            ScenarioError::Stream(e) => write!(f, "scenario stream fault: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<SpecError> for ScenarioError {
    fn from(e: SpecError) -> Self {
        ScenarioError::Spec(e)
    }
}

impl From<StreamError> for ScenarioError {
    fn from(e: StreamError) -> Self {
        ScenarioError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Phase, StormKind, TimeWindow};
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Timestamp};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(20, 8, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(20, 8, 4),
            Timestamp::at_hour(0, 9),
            2.0,
            0xBEEF,
        )
    }

    fn storm_spec(bursts: u32) -> ScenarioSpec {
        ScenarioSpec {
            name: "storm".into(),
            seed: 31,
            phases: vec![Phase {
                name: "tau-flood".into(),
                window: TimeWindow::new(600.0, 900.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 16),
                    kind: StormKind::TauFlood,
                    bursts_per_ue: bursts,
                },
            }],
        }
    }

    #[test]
    fn identity_scenario_is_inert() {
        let models = fitted();
        let config = config();
        let spec = ScenarioSpec::identity("id", 5);
        let baseline = cn_gen::generate(&models, &config);
        let (out, stats) = apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        assert_eq!(out, baseline);
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(stats.passthrough, baseline.len() as u64);
    }

    #[test]
    fn storm_injects_exactly_its_events_and_stays_sorted() {
        let models = fitted();
        let config = config();
        let spec = storm_spec(4);
        let baseline = cn_gen::generate(&models, &config);
        let (out, stats) = apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        assert_eq!(stats.injected, 16 * 4);
        assert_eq!(stats.suppressed, 0);
        assert_eq!(out.len(), baseline.len() + 16 * 4);
        assert!(cn_trace::check_well_formed(&out).is_empty());
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let models = fitted();
        let config = config();
        let mut spec = storm_spec(4);
        spec.phases[0].window.duration_s = f64::NAN;
        let err = apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::Spec(SpecError::NonFinite { .. })
        ));
    }

    #[test]
    fn outage_suppresses_only_its_subset() {
        let models = fitted();
        let config = config();
        let spec = ScenarioSpec {
            name: "dark".into(),
            seed: 1,
            phases: vec![Phase {
                name: "site-down".into(),
                window: TimeWindow::new(0.0, 3600.0),
                kind: PhaseKind::Outage {
                    ues: UeSubset::new(0, 8),
                },
            }],
        };
        let baseline = cn_gen::generate(&models, &config);
        let (out, stats) = apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        let (s, e) = (
            spec.phases[0].window.start_ms(config.start),
            spec.phases[0].window.end_ms(config.start),
        );
        let dropped = baseline
            .iter()
            .filter(|r| r.ue.get() < 8 && s <= r.t.as_millis() && r.t.as_millis() < e)
            .count() as u64;
        assert!(dropped > 0, "outage window saw no baseline traffic");
        assert_eq!(stats.suppressed, dropped);
        assert_eq!(out.len() as u64 + dropped, baseline.len() as u64);
        // Nothing outside the subset/window was touched.
        assert!(out
            .iter()
            .all(|r| !(r.ue.get() < 8 && s <= r.t.as_millis() && r.t.as_millis() < e)));
    }

    #[test]
    fn scenario_counters_mirror_stats() {
        let models = fitted();
        let config = config();
        let spec = storm_spec(2);
        let registry = Registry::new();
        let (_, stats) = apply_scenario(&spec, &models, &config, &registry).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_total("cn_scenario_injected_total"),
            Some(stats.injected)
        );
        assert_eq!(
            snap.counter_total("cn_scenario_passthrough_total"),
            Some(stats.passthrough)
        );
        assert_eq!(
            snap.counter_total("cn_scenario_events_total"),
            Some(stats.events)
        );
        // Registered at stream construction, never incremented by a storm.
        assert_eq!(snap.counter_total("cn_scenario_suppressed_total"), Some(0));
        assert!(snap
            .get(
                "cn_scenario_injected_total",
                &[("phase", "tau-flood"), ("kind", "signaling_storm")]
            )
            .is_some());
    }

    #[test]
    fn sharded_and_batch_scenarios_agree() {
        let models = fitted();
        let config = config();
        let spec = storm_spec(3);
        let (batch, _) = apply_scenario(&spec, &models, &config, &Registry::disabled()).unwrap();
        for shards in [1usize, 4, 8] {
            let source = ShardedStream::with_shards(&models, &config, shards);
            let stream =
                ScenarioStream::new(&spec, &config, source, &Registry::disabled()).unwrap();
            let (out, _) = stream.collect_trace().unwrap();
            assert_eq!(out, batch, "{shards}-shard scenario diverged");
        }
    }
}
