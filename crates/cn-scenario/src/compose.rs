//! Multi-population composition with time-zone offsets.
//!
//! A nationwide core serves populations whose diurnal cycles are shifted
//! against each other: the same fitted model, synthesized per region,
//! each region's clock offset by its time zone. [`ComposedStream`] merges
//! any number of `(model set, config, offset)` slots into one globally
//! time-ordered stream, relabeling each slot's UEs onto a disjoint dense
//! range (slot order, cumulative population totals) so the composed
//! trace stays structurally well-formed.
//!
//! The offset shifts *emission timestamps only*: a slot's generator still
//! starts at its config's `start` (so its hour-of-day models see the
//! local clock), and the composed record's time is
//! `local t + offset`. Offsets are validated with the same typed-error
//! discipline as scenario windows (finite; negative offsets allowed,
//! clamping at the epoch rather than wrapping).

use cn_fit::ModelSet;
use cn_gen::{GenConfig, PopulationStream, StreamError};
use cn_trace::{Timestamp, TraceRecord, UeId, MS_PER_HOUR};

use crate::apply::RecordSource;
use crate::spec::SpecError;

/// One regional population in a composition.
pub struct PopulationSlot<'m> {
    /// The region's fitted models.
    pub models: &'m ModelSet,
    /// The region's synthesis config (population, local start, seed).
    pub config: GenConfig,
    /// Time-zone offset in hours applied to emitted timestamps
    /// (finite; may be negative — shifted times clamp at 0).
    pub offset_hours: f64,
}

struct Slot<'m> {
    stream: PopulationStream<'m>,
    peek: Option<TraceRecord>,
    shift_ms: i64,
    ue_base: u32,
}

impl Slot<'_> {
    fn refill(&mut self) {
        self.peek = self.stream.next().map(|r| {
            let t = if self.shift_ms >= 0 {
                r.t.saturating_add(self.shift_ms as u64)
            } else {
                Timestamp::from_millis(r.t.as_millis().saturating_sub(self.shift_ms.unsigned_abs()))
            };
            TraceRecord::new(t, UeId(self.ue_base + r.ue.get()), r.device, r.event)
        });
    }
}

/// The ordered merge of several time-zone-shifted populations.
///
/// Implements [`RecordSource`], so a scenario can overlay a composed
/// baseline exactly like a single-population one.
pub struct ComposedStream<'m> {
    slots: Vec<Slot<'m>>,
    total_ues: u32,
}

impl<'m> ComposedStream<'m> {
    /// Build the composition. Slot `i`'s UEs are relabeled to start at
    /// the sum of earlier slots' population totals.
    ///
    /// Fails with [`SpecError::NonFinite`] (phase = slot index) when an
    /// offset is NaN or infinite — the same reject-up-front discipline
    /// as scenario windows.
    pub fn new(slots: &[PopulationSlot<'m>]) -> Result<ComposedStream<'m>, SpecError> {
        for (i, slot) in slots.iter().enumerate() {
            if !slot.offset_hours.is_finite() {
                return Err(SpecError::NonFinite {
                    phase: i,
                    field: "offset_hours",
                    value: slot.offset_hours,
                });
            }
        }
        let mut ue_base = 0u32;
        let mut compiled = Vec::with_capacity(slots.len());
        for slot in slots {
            let mut s = Slot {
                stream: PopulationStream::new(slot.models, &slot.config),
                peek: None,
                shift_ms: (slot.offset_hours * MS_PER_HOUR as f64).round() as i64,
                ue_base,
            };
            s.refill();
            compiled.push(s);
            ue_base += slot.config.population.total();
        }
        Ok(ComposedStream {
            slots: compiled,
            total_ues: ue_base,
        })
    }

    /// UEs across all slots (sum of per-slot population totals).
    pub fn total_ues(&self) -> u32 {
        self.total_ues
    }
}

impl Iterator for ComposedStream<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Linear min over the (few) slot peeks, full-record order so the
        // output is sorted by (t, ue, event).
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.peek.map(|r| (i, r)))
            .min_by_key(|&(_, r)| r)?
            .0;
        let rec = self.slots[best].peek;
        self.slots[best].refill();
        rec
    }
}

impl RecordSource for ComposedStream<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{check_well_formed, PopulationMix, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config(seed: u64) -> GenConfig {
        GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 9),
            1.0,
            seed,
        )
    }

    #[test]
    fn composition_is_sorted_disjoint_and_complete() {
        let models = fitted();
        let slots = [
            PopulationSlot {
                models: &models,
                config: config(1),
                offset_hours: 0.0,
            },
            PopulationSlot {
                models: &models,
                config: config(2),
                offset_hours: 3.0,
            },
        ];
        let composed: Trace = ComposedStream::new(&slots).unwrap().collect();
        assert!(check_well_formed(&composed).is_empty());
        let a = cn_gen::generate(&models, &config(1));
        let b = cn_gen::generate(&models, &config(2));
        assert_eq!(composed.len(), a.len() + b.len());
        // Slot 0 keeps ids < 16; slot 1 is relabeled to 16..32 and
        // shifted +3h.
        let shift = 3 * MS_PER_HOUR;
        let slot1: Vec<_> = composed.iter().filter(|r| r.ue.get() >= 16).collect();
        assert_eq!(slot1.len(), b.len());
        for (got, want) in slot1.iter().zip(b.iter()) {
            assert_eq!(got.t.as_millis(), want.t.as_millis() + shift);
            assert_eq!(got.ue.get(), want.ue.get() + 16);
            assert_eq!(got.event, want.event);
        }
    }

    #[test]
    fn negative_offsets_clamp_instead_of_wrapping() {
        let models = fitted();
        let slots = [PopulationSlot {
            models: &models,
            config: config(3),
            offset_hours: -1_000_000.0,
        }];
        let composed: Trace = ComposedStream::new(&slots).unwrap().collect();
        assert!(composed.iter().all(|r| r.t.as_millis() == 0) || composed.is_empty());
    }

    #[test]
    fn non_finite_offset_is_a_typed_error() {
        let models = fitted();
        let slots = [PopulationSlot {
            models: &models,
            config: config(4),
            offset_hours: f64::NAN,
        }];
        assert!(matches!(
            ComposedStream::new(&slots),
            Err(SpecError::NonFinite {
                phase: 0,
                field: "offset_hours",
                ..
            })
        ));
    }

    #[test]
    fn empty_composition_is_empty() {
        assert_eq!(ComposedStream::new(&[]).unwrap().count(), 0);
    }
}
