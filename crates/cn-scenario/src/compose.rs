//! Multi-population composition with time-zone offsets.
//!
//! A nationwide core serves populations whose diurnal cycles are shifted
//! against each other: the same fitted model, synthesized per region,
//! each region's clock offset by its time zone. [`ComposedStream`] merges
//! any number of `(model set, config, offset)` slots into one globally
//! time-ordered stream, relabeling each slot's UEs onto a disjoint dense
//! range (slot order, cumulative population totals) so the composed
//! trace stays structurally well-formed.
//!
//! The offset shifts *emission timestamps only*: a slot's generator still
//! starts at its config's `start` (so its hour-of-day models see the
//! local clock), and the composed record's time is
//! `local t + offset`. Offsets are validated with the same typed-error
//! discipline as scenario windows (finite; negative offsets allowed,
//! clamping at the epoch rather than wrapping).
//!
//! ### Clamped prefixes and ordering
//!
//! A negative offset clamps every record at local `t ≤ |offset|` onto the
//! epoch (`t = 0`). Those records leave the baseline generator in
//! *pre-shift* `(t, ue, event)` order — distinct local instants collapse
//! onto one composed instant, so their relative order is no longer the
//! composed total order. Because the baseline stream is sorted, the
//! clamping records form exactly its leading prefix: the slot drains that
//! prefix up front, re-sorts it, and serves it before the live stream,
//! which from then on shifts strictly monotonically. Memory is bounded by
//! the number of clamped records (for pathological offsets that clamp an
//! entire slot, that is the slot's whole trace — the price of keeping
//! clamping semantics instead of rejecting such offsets).

use std::collections::VecDeque;

use cn_fit::ModelSet;
use cn_gen::{GenConfig, PopulationStream, StreamError};
use cn_trace::{Timestamp, TraceRecord, UeId, MS_PER_HOUR};

use crate::apply::RecordSource;
use crate::spec::SpecError;

/// One regional population in a composition.
pub struct PopulationSlot<'m> {
    /// The region's fitted models.
    pub models: &'m ModelSet,
    /// The region's synthesis config (population, local start, seed).
    pub config: GenConfig,
    /// Time-zone offset in hours applied to emitted timestamps
    /// (finite; may be negative — shifted times clamp at 0).
    pub offset_hours: f64,
}

struct Slot<'m> {
    stream: PopulationStream<'m>,
    /// Records a negative offset clamped onto `t = 0`, re-sorted into
    /// composed `(t, ue, event)` order; drained before the live stream
    /// (see the module docs on clamped prefixes).
    clamped: VecDeque<TraceRecord>,
    peek: Option<TraceRecord>,
    shift_ms: i64,
    ue_base: u32,
}

impl Slot<'_> {
    /// Apply the slot's time shift and UE relabeling to a baseline record.
    fn shift(&self, r: TraceRecord) -> TraceRecord {
        let t = if self.shift_ms >= 0 {
            r.t.saturating_add(self.shift_ms as u64)
        } else {
            Timestamp::from_millis(r.t.as_millis().saturating_sub(self.shift_ms.unsigned_abs()))
        };
        TraceRecord::new(t, UeId(self.ue_base + r.ue.get()), r.device, r.event)
    }

    /// Drain and re-sort the prefix a negative offset clamps onto `t = 0`.
    ///
    /// Records at local `t ≤ |shift|` all map to the epoch; everything
    /// after them maps to `t ≥ 1` and stays strictly ordered, so exactly
    /// this prefix needs buffering. The first unclamped record is pushed
    /// onto the back of the (all-`t = 0`) buffer, where it is trivially in
    /// order.
    fn buffer_clamped_prefix(&mut self) {
        if self.shift_ms >= 0 {
            return;
        }
        let cut = self.shift_ms.unsigned_abs();
        let mut prefix: Vec<TraceRecord> = Vec::new();
        let tail = loop {
            match self.stream.next() {
                Some(r) if r.t.as_millis() <= cut => prefix.push(self.shift(r)),
                other => break other,
            }
        };
        prefix.sort_unstable();
        self.clamped = prefix.into();
        if let Some(r) = tail {
            let shifted = self.shift(r);
            debug_assert!(self.clamped.back().is_none_or(|c| *c <= shifted));
            self.clamped.push_back(shifted);
        }
    }

    fn refill(&mut self) {
        self.peek = self
            .clamped
            .pop_front()
            .or_else(|| self.stream.next().map(|r| self.shift(r)));
    }
}

/// The ordered merge of several time-zone-shifted populations.
///
/// Implements [`RecordSource`], so a scenario can overlay a composed
/// baseline exactly like a single-population one.
pub struct ComposedStream<'m> {
    slots: Vec<Slot<'m>>,
    total_ues: u32,
}

impl<'m> ComposedStream<'m> {
    /// Build the composition. Slot `i`'s UEs are relabeled to start at
    /// the sum of earlier slots' population totals.
    ///
    /// Fails with [`SpecError::NonFinite`] (phase = slot index) when an
    /// offset is NaN or infinite, and with [`SpecError::UeRangeOverflow`]
    /// when the cumulative population total exceeds `u32::MAX` (an
    /// unchecked sum would silently alias UE ranges across slots) — the
    /// same reject-up-front discipline as scenario windows.
    pub fn new(slots: &[PopulationSlot<'m>]) -> Result<ComposedStream<'m>, SpecError> {
        let mut total = 0u32;
        for (i, slot) in slots.iter().enumerate() {
            if !slot.offset_hours.is_finite() {
                return Err(SpecError::NonFinite {
                    phase: i,
                    field: "offset_hours",
                    value: slot.offset_hours,
                });
            }
            total = total
                .checked_add(slot.config.population.total())
                .ok_or(SpecError::UeRangeOverflow { slot: i })?;
        }
        let mut ue_base = 0u32;
        let mut compiled = Vec::with_capacity(slots.len());
        for slot in slots {
            let mut s = Slot {
                stream: PopulationStream::new(slot.models, &slot.config),
                clamped: VecDeque::new(),
                peek: None,
                shift_ms: (slot.offset_hours * MS_PER_HOUR as f64).round() as i64,
                ue_base,
            };
            s.buffer_clamped_prefix();
            s.refill();
            compiled.push(s);
            ue_base += slot.config.population.total();
        }
        Ok(ComposedStream {
            slots: compiled,
            total_ues: ue_base,
        })
    }

    /// UEs across all slots (sum of per-slot population totals).
    pub fn total_ues(&self) -> u32 {
        self.total_ues
    }
}

impl Iterator for ComposedStream<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        // Linear min over the (few) slot peeks, full-record order so the
        // output is sorted by (t, ue, event).
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.peek.map(|r| (i, r)))
            .min_by_key(|&(_, r)| r)?
            .0;
        let rec = self.slots[best].peek;
        self.slots[best].refill();
        rec
    }
}

impl RecordSource for ComposedStream<'_> {
    fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        Ok(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{check_well_formed, PopulationMix, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config(seed: u64) -> GenConfig {
        GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 9),
            1.0,
            seed,
        )
    }

    #[test]
    fn composition_is_sorted_disjoint_and_complete() {
        let models = fitted();
        let slots = [
            PopulationSlot {
                models: &models,
                config: config(1),
                offset_hours: 0.0,
            },
            PopulationSlot {
                models: &models,
                config: config(2),
                offset_hours: 3.0,
            },
        ];
        let composed: Trace = ComposedStream::new(&slots).unwrap().collect();
        assert!(check_well_formed(&composed).is_empty());
        let a = cn_gen::generate(&models, &config(1));
        let b = cn_gen::generate(&models, &config(2));
        assert_eq!(composed.len(), a.len() + b.len());
        // Slot 0 keeps ids < 16; slot 1 is relabeled to 16..32 and
        // shifted +3h.
        let shift = 3 * MS_PER_HOUR;
        let slot1: Vec<_> = composed.iter().filter(|r| r.ue.get() >= 16).collect();
        assert_eq!(slot1.len(), b.len());
        for (got, want) in slot1.iter().zip(b.iter()) {
            assert_eq!(got.t.as_millis(), want.t.as_millis() + shift);
            assert_eq!(got.ue.get(), want.ue.get() + 16);
            assert_eq!(got.event, want.event);
        }
    }

    #[test]
    fn negative_offsets_clamp_instead_of_wrapping() {
        let models = fitted();
        let slots = [PopulationSlot {
            models: &models,
            config: config(3),
            offset_hours: -1_000_000.0,
        }];
        let composed: Trace = ComposedStream::new(&slots).unwrap().collect();
        assert!(composed.iter().all(|r| r.t.as_millis() == 0) || composed.is_empty());
    }

    #[test]
    fn clamped_prefix_is_reordered_not_emitted_in_preshift_order() {
        // Regression: records clamped onto t = 0 by a negative offset used
        // to keep their pre-shift emission order, so (0, ue_hi) could
        // precede (0, ue_lo) and break the (t, ue, event) total order. The
        // clamped prefix must be re-sorted and the stream must lose
        // nothing in the process.
        let models = fitted();
        let mk = |offset_hours| {
            [PopulationSlot {
                models: &models,
                config: config(3),
                offset_hours,
            }]
        };
        let unshifted: Trace = ComposedStream::new(&mk(0.0)).unwrap().collect();
        // The slot starts at absolute hour 9, so -9.5 h clamps the first
        // half of its 1 h window onto t = 0 and shifts the rest to
        // (0, 0.5 h] — plenty of records collapse onto the epoch while
        // the slot stays live.
        let composed: Vec<_> = ComposedStream::new(&mk(-9.5)).unwrap().collect();
        assert!(
            composed.windows(2).all(|w| w[0] <= w[1]),
            "composed stream emitted out of (t, ue, event) order"
        );
        assert_eq!(
            composed.len(),
            unshifted.len(),
            "clamping must not drop records"
        );
        let clamped = composed.iter().filter(|r| r.t.as_millis() == 0).count();
        assert!(
            clamped > 0,
            "offset -0.5 h clamped nothing — test is vacuous"
        );
        let t: Trace = composed.into_iter().collect();
        assert!(check_well_formed(&t).is_empty());
    }

    #[test]
    fn ue_range_overflow_is_a_typed_error() {
        // Two slots of 2^31 UEs each: the cumulative base overflows u32 on
        // the second slot. Validation must reject before any stream (or
        // its per-UE state) is built.
        let models = fitted();
        let big = |seed| {
            GenConfig::new(
                PopulationMix::new(1 << 31, 0, 0),
                Timestamp::at_hour(0, 9),
                1.0,
                seed,
            )
        };
        let slots = [
            PopulationSlot {
                models: &models,
                config: big(1),
                offset_hours: 0.0,
            },
            PopulationSlot {
                models: &models,
                config: big(2),
                offset_hours: 1.0,
            },
        ];
        assert_eq!(
            ComposedStream::new(&slots).map(|_| ()).unwrap_err(),
            SpecError::UeRangeOverflow { slot: 1 }
        );
    }

    #[test]
    fn non_finite_offset_is_a_typed_error() {
        let models = fitted();
        let slots = [PopulationSlot {
            models: &models,
            config: config(4),
            offset_hours: f64::NAN,
        }];
        assert!(matches!(
            ComposedStream::new(&slots),
            Err(SpecError::NonFinite {
                phase: 0,
                field: "offset_hours",
                ..
            })
        ));
    }

    #[test]
    fn empty_composition_is_empty() {
        assert_eq!(ComposedStream::new(&[]).unwrap().count(), 0);
    }
}
