//! # cn-scenario — composable what-if scenarios over the steady state
//!
//! The fitted models in `cn-fit` reproduce the *steady state* of a
//! cellular control plane; operators, though, provision for the days the
//! steady state breaks: a stadium emptying into one tracking area, a
//! fiber cut dropping an eNodeB and the re-registration storm that
//! follows it, a firmware push making a million NB-IoT meters phone home
//! in the same minute. `cn-scenario` synthesizes those days by overlaying
//! deterministic, declaratively-specified perturbations on any of the
//! generation engines, so capacity experiments (`cn-mcn`) can be driven
//! far outside the fitted envelope without refitting anything.
//!
//! ## Model
//!
//! A [`ScenarioSpec`] is a seed plus a timeline of [`Phase`]s, each a
//! [`TimeWindow`] (relative to the generation epoch), a [`UeSubset`],
//! and a [`PhaseKind`]:
//!
//! * **Flash crowd** — a UE subset attaches in waves inside the window,
//!   each arrival followed by a burst of handovers (the stadium,
//!   the protest, the train station at rush hour).
//! * **Signaling storm** — paging storms (service request +
//!   connection-release pairs), RRC re-establishment floods, or TAU
//!   floods over a subset (the post-outage re-registration avalanche,
//!   [`StormKind`]).
//! * **Outage** — baseline records from the subset are suppressed inside
//!   the window; pair with a trailing storm phase to model
//!   recovery-after-dark.
//! * **Synchronized M2M reporting** — a device fleet emits TAU beacons
//!   on a shared period with zero jitter, the pathological firmware
//!   default the paper's M2M analysis warns about.
//!
//! Validation is strict and typed ([`SpecError`]): non-finite or negative
//! times, empty windows or subsets, zero intensities, and overlapping
//! phase windows are all rejected up front, never silently clamped.
//!
//! ## Determinism and confinement
//!
//! Every injected record is a pure function of `(spec.seed, phase index,
//! ue)` — nothing reads the baseline stream — so a scenario replays
//! byte-identically over the batch, sharded (any shard count), and
//! out-of-core engines. Each perturbation is confined to its declared
//! window and subset by construction; outside every window the baseline
//! passes through verbatim. The identity scenario (no phases) is
//! provably inert. `cn-verify` pins all three properties with golden
//! hashes and metamorphic proptest suites.
//!
//! ## Plumbing
//!
//! [`ScenarioStream`] wraps any [`RecordSource`] (sharded stream,
//! population stream, iterator, [`ComposedStream`] of time-zone-offset
//! populations) and is itself drained via the same fallible
//! `try_next`/`finish` protocol, propagating [`cn_gen::StreamError`]
//! faults unchanged. [`write_scenario_binary`] exports to the binary
//! trace format under the finish-or-recover containment contract, and a
//! [`cn_obs::Registry`] surfaces the `cn_scenario_*` counter family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
mod compose;
mod export;
mod inject;
mod spec;

pub use apply::{
    apply_scenario, IterSource, RecordSource, ScenarioError, ScenarioStats, ScenarioStream,
};
pub use compose::{ComposedStream, PopulationSlot};
pub use export::write_scenario_binary;
pub use inject::materialize_phase;
pub use spec::{Phase, PhaseKind, ScenarioSpec, SpecError, StormKind, TimeWindow, UeSubset};
