//! Property suite for [`ScenarioSpec`]: serde round-trips, typed
//! validation rejections, and seed-determinism of the overlay across
//! shard counts — the spec-level half of the metamorphic contract
//! (`cn-verify`'s scenario suite holds the trace-level half).

use std::sync::OnceLock;

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{GenConfig, ShardedStream};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, Phase, PhaseKind, ScenarioSpec, ScenarioStream, SpecError, StormKind,
    TimeWindow, UeSubset,
};
use cn_trace::{DeviceType, PopulationMix, Timestamp};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;

/// One fitted model set shared by every case (fitting per case would
/// dominate the suite's runtime without adding coverage).
fn models() -> &'static ModelSet {
    static MODELS: OnceLock<ModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    })
}

fn config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(16, 6, 4),
        Timestamp::at_hour(0, 9),
        1.0,
        0xD00D,
    )
}

fn arb_subset() -> impl Strategy<Value = UeSubset> {
    (0u32..22, 1u32..6).prop_map(|(lo, len)| UeSubset::new(lo, lo + len))
}

fn arb_storm_kind() -> impl Strategy<Value = StormKind> {
    prop_oneof![
        Just(StormKind::Paging),
        Just(StormKind::Reestablishment),
        Just(StormKind::TauFlood),
    ]
}

fn arb_kind() -> impl Strategy<Value = PhaseKind> {
    prop_oneof![
        (arb_subset(), 1u32..4, 0u32..3).prop_map(|(ues, waves, handovers_per_ue)| {
            PhaseKind::FlashCrowd {
                ues,
                waves,
                handovers_per_ue,
            }
        }),
        (arb_subset(), arb_storm_kind(), 1u32..5).prop_map(|(ues, kind, bursts_per_ue)| {
            PhaseKind::SignalingStorm {
                ues,
                kind,
                bursts_per_ue,
            }
        }),
        arb_subset().prop_map(|ues| PhaseKind::Outage { ues }),
        (arb_subset(), 10u32..200).prop_map(|(ues, period)| PhaseKind::M2mReporting {
            ues,
            period_s: f64::from(period),
            device: DeviceType::ConnectedCar,
        }),
    ]
}

/// A valid spec: up to three phases, windows structurally disjoint (each
/// phase confined to its own 1200 s slot of the hour).
fn arb_valid_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        0u64..10_000,
        prop::collection::vec((0u32..900, 30u32..300, arb_kind()), 0..3),
    )
        .prop_map(|(seed, phases)| ScenarioSpec {
            name: "prop".into(),
            seed,
            phases: phases
                .into_iter()
                .enumerate()
                .map(|(i, (offset, dur, kind))| Phase {
                    name: format!("p{i}"),
                    window: TimeWindow::new(f64::from(i as u32 * 1_200 + offset), f64::from(dur)),
                    kind,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Specs survive a serde round trip exactly (including phase order,
    /// float windows, and every kind variant).
    #[test]
    fn spec_serde_round_trips(spec in arb_valid_spec()) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(spec, back);
    }

    /// Structurally disjoint windows always validate.
    #[test]
    fn disjoint_specs_validate(spec in arb_valid_spec()) {
        prop_assert_eq!(spec.validate(), Ok(()));
    }

    /// Corrupting any window float with NaN / infinity / a negative value
    /// yields the matching typed error, never a panic or a silent clamp.
    #[test]
    fn corrupted_windows_are_rejected_with_typed_errors(
        spec in arb_valid_spec(),
        which in 0usize..3,
        bad in 0usize..4,
    ) {
        prop_assume!(!spec.phases.is_empty());
        let mut spec = spec;
        let i = which % spec.phases.len();
        let w = &mut spec.phases[i].window;
        let expect_field = match bad {
            0 => { w.start_s = f64::NAN; "window.start_s" }
            1 => { w.duration_s = f64::INFINITY; "window.duration_s" }
            2 => { w.start_s = -4.5; "window.start_s" }
            _ => { w.duration_s = -0.25; "window.duration_s" }
        };
        match spec.validate() {
            Err(SpecError::NonFinite { phase, field, .. })
            | Err(SpecError::Negative { phase, field, .. }) => {
                prop_assert_eq!(phase, i);
                prop_assert_eq!(field, expect_field);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected a typed window error, got {other:?}"
            ))),
        }
    }

    /// Shrinking a phase window onto a later one is always caught as an
    /// overlap (or stays valid if the windows remain disjoint) — never a
    /// different error class.
    #[test]
    fn overlap_detection_is_order_independent(
        spec in arb_valid_spec(),
        stretch in 1u32..2_000,
    ) {
        prop_assume!(spec.phases.len() >= 2);
        let mut spec = spec;
        spec.phases[0].window.duration_s += f64::from(stretch);
        let overlaps = spec.phases[0].window.end_ms(Timestamp::from_millis(0))
            > spec.phases[1].window.start_ms(Timestamp::from_millis(0));
        let verdict = spec.validate();
        if overlaps {
            prop_assert!(
                matches!(verdict, Err(SpecError::OverlappingWindows { .. })),
                "stretched window must overlap: {verdict:?}"
            );
            // Declaration order must not matter.
            spec.phases.reverse();
            prop_assert!(matches!(
                spec.validate(),
                Err(SpecError::OverlappingWindows { .. })
            ));
        } else {
            prop_assert_eq!(verdict, Ok(()));
        }
    }

    /// The overlay is a pure function of the spec seed: the same spec
    /// replays identically over shard counts {1, 4, 8}, and (when it
    /// injects anything) a different seed moves the injected events.
    #[test]
    fn overlay_is_seed_deterministic_across_shards(spec in arb_valid_spec()) {
        let models = models();
        let config = config();
        let registry = Registry::disabled();
        let (batch, stats) = apply_scenario(&spec, models, &config, &registry).unwrap();
        for shards in [1usize, 4, 8] {
            let source = ShardedStream::with_shards(models, &config, shards);
            let stream = ScenarioStream::new(&spec, &config, source, &registry).unwrap();
            let (out, sharded_stats) = stream.collect_trace().unwrap();
            prop_assert_eq!(&out, &batch, "shards={} diverged", shards);
            prop_assert_eq!(&sharded_stats, &stats);
        }
        // Storms and crowds draw times from the seeded RNG, so reseeding
        // moves them; the purely structural phases (outage, M2M) are
        // seed-independent by design.
        let seed_sensitive = spec.phases.iter().any(|p| match &p.kind {
            PhaseKind::FlashCrowd { .. } => true,
            PhaseKind::SignalingStorm { .. } => true,
            PhaseKind::Outage { .. } | PhaseKind::M2mReporting { .. } => false,
        });
        if seed_sensitive {
            let mut reseeded = spec.clone();
            reseeded.seed = spec.seed.wrapping_add(1);
            let (other, _) = apply_scenario(&reseeded, models, &config, &registry).unwrap();
            prop_assert_ne!(other, batch);
        }
    }
}
