//! Ordering contract of [`ComposedStream`] under clamping offsets.
//!
//! Regression suite for the clamped-prefix ordering bug: a negative
//! time-zone offset clamps every record at local `t ≤ |offset|` onto the
//! epoch, and the stream used to emit those records in *pre-shift* order
//! — violating the `(t, ue, event)` total order every other engine is
//! golden-pinned on. The composed stream must stay sorted, well-formed,
//! and lossless for **any** finite offset (promoted from the reviewer's
//! `scratch_review.rs` probe, plus a property sweep).

use std::sync::OnceLock;

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::GenConfig;
use cn_scenario::{ComposedStream, PopulationSlot};
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;

/// One fitted model set shared by every case (fitting per case would
/// dominate the suite's runtime without adding coverage).
fn models() -> &'static ModelSet {
    static MODELS: OnceLock<ModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    })
}

fn slot_config(seed: u64) -> GenConfig {
    GenConfig::new(
        PopulationMix::new(8, 3, 2),
        Timestamp::at_hour(0, 9),
        1.0,
        seed,
    )
}

/// The reviewer's original probe, verbatim in shape: start at hour 9,
/// offset -15 h, so everything clamps to the epoch.
#[test]
fn clamped_negative_offset_stream_stays_sorted() {
    let slots = [PopulationSlot {
        models: models(),
        config: GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 9),
            12.0,
            3,
        ),
        offset_hours: -15.0,
    }];
    let composed: Vec<_> = ComposedStream::new(&slots).unwrap().collect();
    let clamped = composed.iter().filter(|r| r.t.as_millis() == 0).count();
    assert!(clamped > 0, "offset -15 h must clamp the early records");
    assert!(
        composed.windows(2).all(|w| w[0] <= w[1]),
        "composed stream emitted out of (t, ue, event) order"
    );
    let t: Trace = composed.into_iter().collect();
    assert!(cn_trace::check_well_formed(&t).is_empty());
}

/// A *partially* clamping offset is the sharpest case: the clamped prefix
/// must merge in order with the still-live remainder of the same slot and
/// with other, unclamped slots.
#[test]
fn partially_clamped_slot_merges_in_order_with_unclamped_slots() {
    let slots = [
        PopulationSlot {
            models: models(),
            config: slot_config(11),
            offset_hours: -9.25, // clamps the first quarter hour of traffic
        },
        PopulationSlot {
            models: models(),
            config: slot_config(12),
            offset_hours: 0.0,
        },
    ];
    let composed: Vec<_> = ComposedStream::new(&slots).unwrap().collect();
    assert!(composed.windows(2).all(|w| w[0] <= w[1]));
    let a = cn_gen::generate(models(), &slot_config(11));
    let b = cn_gen::generate(models(), &slot_config(12));
    assert_eq!(
        composed.len(),
        a.len() + b.len(),
        "clamping must not drop records"
    );
    let t: Trace = composed.into_iter().collect();
    assert!(cn_trace::check_well_formed(&t).is_empty());
}

fn arb_offset() -> impl Strategy<Value = f64> {
    prop_oneof![
        // The interesting band around the 9 h start: non-clamping,
        // partially clamping, and fully clamping negatives.
        (-1_500i32..1_500).prop_map(|hundredths| f64::from(hundredths) / 100.0),
        // Pathological magnitudes: everything clamps / everything shifts
        // far out; the stream must stay ordered either way.
        Just(-1.0e6),
        Just(1.0e6),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any finite offsets — including clamping negatives — compose into a
    /// sorted, well-formed, lossless stream.
    #[test]
    fn composed_stream_is_sorted_and_well_formed_for_any_finite_offsets(
        offsets in prop::collection::vec(arb_offset(), 1..4),
    ) {
        let slots: Vec<PopulationSlot> = offsets
            .iter()
            .enumerate()
            .map(|(i, &offset_hours)| PopulationSlot {
                models: models(),
                config: slot_config(100 + i as u64),
                offset_hours,
            })
            .collect();
        let composed: Vec<_> = ComposedStream::new(&slots).unwrap().collect();
        prop_assert!(
            composed.windows(2).all(|w| w[0] <= w[1]),
            "composed stream emitted out of (t, ue, event) order (offsets {offsets:?})"
        );
        let expected: usize = (0..offsets.len())
            .map(|i| cn_gen::generate(models(), &slot_config(100 + i as u64)).len())
            .sum();
        prop_assert_eq!(composed.len(), expected, "composition dropped records");
        let t: Trace = composed.into_iter().collect();
        prop_assert!(cn_trace::check_well_formed(&t).is_empty());
    }
}
