//! Failure containment through the scenario overlay.
//!
//! The scenario stream sits between a fallible baseline engine and a
//! fallible export sink; both legs must keep the sharded-stream
//! containment contract when a scenario is riding on top:
//!
//! * a **worker panic** mid-storm surfaces through
//!   [`ScenarioStream::try_next`] as the same typed
//!   [`StreamError::WorkerPanicked`], and every record emitted before the
//!   fault is a *verbatim prefix* of the fault-free scenario stream;
//! * a **sink failure** mid-storm surfaces from
//!   [`write_scenario_binary`] as [`StreamError::Io`] with the failing
//!   export stage, and the bytes that reached the sink obey the
//!   finish-or-recover contract: `from_binary` rejects them,
//!   `recover_binary` salvages a byte-identical prefix of the fault-free
//!   export.

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{FaultPlan, GenConfig, ShardedStream, StreamError};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, write_scenario_binary, IterSource, Phase, PhaseKind, ScenarioSpec,
    ScenarioStream, StormKind, TimeWindow, UeSubset,
};
use cn_trace::io::{from_binary, recover_binary, to_binary, FailingWriter};
use cn_trace::{PopulationMix, Timestamp, Trace, TraceRecord};
use cn_world::{generate_world, WorldConfig};

fn fitted() -> ModelSet {
    let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
    fit(&trace, &FitConfig::new(Method::Ours))
}

fn config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(16, 6, 4),
        Timestamp::at_hour(0, 9),
        2.0,
        0xFA11,
    )
}

/// A workload whose shards each produce well past one channel block
/// (4096 records), so a mid-stream worker fault fires *after* data has
/// flowed into the scenario merge — the same sizing discipline as
/// `cn-gen`'s failure-containment suite.
fn big_config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(240, 100, 60),
        Timestamp::at_hour(0, 9),
        3.0,
        0xFA12,
    )
}

/// A storm that spans most of the run, so faults land mid-storm.
fn storm_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "storm".into(),
        seed: 99,
        phases: vec![Phase {
            name: "paging".into(),
            window: TimeWindow::new(300.0, 6_000.0),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(0, 16),
                kind: StormKind::Paging,
                bursts_per_ue: 5,
            },
        }],
    }
}

/// The fault-free scenario trace `config` + the storm spec produce.
fn clean_trace(models: &ModelSet, config: &GenConfig) -> Trace {
    let (trace, _) = apply_scenario(&storm_spec(), models, config, &Registry::disabled())
        .expect("clean scenario run");
    trace
}

#[test]
fn worker_panic_mid_storm_surfaces_typed_with_a_verbatim_prefix() {
    let models = fitted();
    let config = big_config();
    let spec = storm_spec();
    let clean = clean_trace(&models, &config);
    // Shard 1 of 2 panics well past its first shipped block, so the
    // fault is genuinely mid-stream: scenario records have flowed.
    let plan = FaultPlan::new().panic_shard_at(1, 5_000);
    let source =
        ShardedStream::with_shards_faulted(&models, &config, 2, &Registry::disabled(), &plan);
    let mut stream = ScenarioStream::new(&spec, &config, source, &Registry::disabled()).unwrap();
    let mut got: Vec<TraceRecord> = Vec::new();
    let err = loop {
        match stream.try_next() {
            Ok(Some(r)) => got.push(r),
            Ok(None) => panic!("faulted stream drained cleanly"),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, StreamError::WorkerPanicked { shard: 1, .. }),
        "{err}"
    );
    // Containment: everything emitted before the fault is a verbatim
    // prefix of the fault-free scenario stream — injected storm events
    // included, nothing reordered or fabricated.
    assert!(!got.is_empty(), "fault should land after data flowed");
    assert!(
        got.len() < clean.len(),
        "fault must truncate the stream ({} vs {})",
        got.len(),
        clean.len()
    );
    let clean_records: Vec<TraceRecord> = clean.iter().copied().collect();
    assert_eq!(got.as_slice(), &clean_records[..got.len()]);
    // The prefix is not baseline-only: injected storm events made it out
    // before the fault (the overlay keeps streaming, not batching).
    let baseline: Vec<TraceRecord> = cn_gen::generate(&models, &config).into_records();
    assert_ne!(
        got.as_slice(),
        &baseline[..got.len().min(baseline.len())],
        "prefix should contain injected events"
    );
    // finish() refuses to bless the run.
    assert!(stream.finish().is_err());
}

#[test]
fn sink_failure_mid_storm_is_typed_and_prefix_identical() {
    let models = fitted();
    let config = config();
    let spec = storm_spec();
    let clean = clean_trace(&models, &config);
    let clean_bytes = to_binary(&clean);

    let baseline = cn_gen::generate(&models, &config);
    let stream = ScenarioStream::new(
        &spec,
        &config,
        IterSource(baseline.into_records().into_iter()),
        &Registry::disabled(),
    )
    .unwrap();
    // Enough budget for the header plus 100 whole records, then the disk
    // "fills up" mid-storm.
    let prefix_records = 100usize;
    let mut sink = FailingWriter::new(std::io::Cursor::new(Vec::new()), 16 + prefix_records * 14);
    let err = write_scenario_binary(stream, &mut sink).unwrap_err();
    assert!(
        matches!(
            err,
            StreamError::Io {
                stage: "export-write",
                ..
            }
        ),
        "{err}"
    );
    let bytes = sink.into_inner().into_inner();
    assert!(!bytes.is_empty(), "header and prefix reached the sink");
    // Byte-identical prefix policy: what landed is exactly the fault-free
    // export's head, except for the header count (zero placeholder).
    assert_eq!(bytes.len(), 16 + prefix_records * 14);
    assert_eq!(&bytes[..8], &clean_bytes[..8], "magic differs");
    assert_eq!(
        &bytes[8..16],
        &0u64.to_le_bytes(),
        "count must be unpatched"
    );
    assert_eq!(
        &bytes[16..],
        &clean_bytes[16..bytes.len()],
        "payload prefix differs"
    );
    // Finish-or-recover: the partial file can never pose as complete…
    assert!(from_binary(&bytes).is_err());
    // …but every record that landed is salvageable and verbatim.
    let salvaged = recover_binary(&bytes).unwrap();
    assert_eq!(salvaged.len(), prefix_records);
    let clean_records: Vec<TraceRecord> = clean.iter().copied().collect();
    let salvaged_records: Vec<TraceRecord> = salvaged.iter().copied().collect();
    assert_eq!(
        salvaged_records.as_slice(),
        &clean_records[..prefix_records]
    );
}

#[test]
fn header_failure_is_typed_before_any_record_work() {
    let models = fitted();
    let config = config();
    let spec = storm_spec();
    let baseline = cn_gen::generate(&models, &config);
    let stream = ScenarioStream::new(
        &spec,
        &config,
        IterSource(baseline.into_records().into_iter()),
        &Registry::disabled(),
    )
    .unwrap();
    // Not even the 8-byte magic fits.
    let mut sink = FailingWriter::new(std::io::Cursor::new(Vec::new()), 4);
    let err = write_scenario_binary(stream, &mut sink).unwrap_err();
    assert!(
        matches!(
            err,
            StreamError::Io {
                stage: "export-header",
                ..
            }
        ),
        "{err}"
    );
    assert!(sink.into_inner().into_inner().is_empty());
}

#[test]
fn worker_panic_fails_export_even_when_the_sink_is_healthy() {
    let models = fitted();
    let config = big_config();
    let spec = storm_spec();
    let plan = FaultPlan::new().panic_shard_at(0, 5_000);
    let source =
        ShardedStream::with_shards_faulted(&models, &config, 2, &Registry::disabled(), &plan);
    let stream = ScenarioStream::new(&spec, &config, source, &Registry::disabled()).unwrap();
    let mut sink = std::io::Cursor::new(Vec::new());
    let err = write_scenario_binary(stream, &mut sink).unwrap_err();
    assert!(
        matches!(err, StreamError::WorkerPanicked { shard: 0, .. }),
        "{err}"
    );
    // The sink holds an unfinished (recoverable, never complete-looking)
    // non-empty prefix: the records that flowed before the worker died.
    let bytes = sink.into_inner();
    assert!(from_binary(&bytes).is_err());
    let salvaged = recover_binary(&bytes).unwrap();
    assert!(!salvaged.is_empty(), "records flowed before the fault");
    let clean = clean_trace(&models, &config);
    assert!(salvaged.iter().zip(clean.iter()).all(|(a, b)| a == b));
}
