//! Scratch review test (not part of the PR).

use cn_fit::{fit, FitConfig, Method};
use cn_gen::GenConfig;
use cn_scenario::{ComposedStream, PopulationSlot};
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};

#[test]
fn clamped_negative_offset_stream_stays_sorted() {
    let trace = generate_world(&WorldConfig::new(PopulationMix::new(16, 6, 4), 2.0, 3));
    let models = fit(&trace, &FitConfig::new(Method::Ours));
    // Start at hour 9, offset -6h: everything before 15:00 local clamps to 0.
    let slots = [PopulationSlot {
        models: &models,
        config: GenConfig::new(PopulationMix::new(10, 4, 2), Timestamp::at_hour(0, 9), 12.0, 3),
        offset_hours: -15.0,
    }];
    let composed: Vec<_> = ComposedStream::new(&slots).unwrap().collect();
    let clamped = composed.iter().filter(|r| r.t.as_millis() == 0).count();
    eprintln!("clamped records: {clamped} / {}", composed.len());
    let sorted = composed.windows(2).all(|w| w[0] <= w[1]);
    assert!(sorted, "composed stream emitted out of (t, ue, event) order");
    let t: Trace = composed.into_iter().collect();
    assert!(cn_trace::check_well_formed(&t).is_empty());
}
