//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS
//!     table1 fig2 fig3 fig4 table2 table3 table4 table5 table6 table7
//!     table8 table9 table10 table11 fig7 all
//!
//! OPTIONS
//!     --scale quick|default|paper   lab scale (default: default)
//!     --seed N                      override the master seed
//!     --markdown                    shorthand for --format markdown
//!     --format text|markdown|csv    output format (default: text)
//!     --out FILE                    write tables to FILE instead of stdout
//! ```

use cn_eval::experiments;
use cn_eval::lab::{scale_summary, Scenario};
use cn_eval::{ExperimentConfig, Lab, Table};
use cn_trace::{DeviceType, EventType};
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: repro [--scale quick|default|paper] [--seed N] [--format text|markdown|csv] [--out FILE] <experiment>...
experiments: table1 fig2 fig3 fig4 table2 table3 table4 table5 table6 table7
             table8 table9 table9x table10 table11 fig7 diurnal generalize holdout summary verdicts dot ablations all";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "default".to_string();
    let mut seed: Option<u64> = None;
    let mut format = Format::Text;
    let mut out_path: Option<String> = None;
    let mut experiments_requested: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next() {
                Some(s) => scale = s,
                None => return usage_error("--scale needs a value"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage_error("--seed needs an integer"),
            },
            "--markdown" => format = Format::Markdown,
            "--format" => match it.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("markdown") => format = Format::Markdown,
                Some("csv") => format = Format::Csv,
                _ => return usage_error("--format needs text|markdown|csv"),
            },
            "--out" => match it.next() {
                Some(path) => out_path = Some(path),
                None => return usage_error("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            exp => experiments_requested.push(exp.to_string()),
        }
    }
    if experiments_requested.is_empty() {
        return usage_error("no experiment given");
    }

    let mut cfg = match scale.as_str() {
        "quick" => ExperimentConfig::quick(),
        "default" => ExperimentConfig::default_scale(),
        "paper" => ExperimentConfig::paper_scale(),
        other => return usage_error(&format!("unknown scale `{other}`")),
    };
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let lab = Lab::new(cfg);
    let mut sink: Box<dyn Write> = match &out_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => Box::new(std::io::stdout()),
    };
    let _ = writeln!(sink, "{}", render(&scale_summary(&lab.cfg), format));

    for exp in &experiments_requested {
        let tables: Vec<Table> = match exp.as_str() {
            "table1" => vec![experiments::table1(&lab)],
            "fig2" => {
                let mut v = vec![experiments::fig2_summary(&lab)];
                for device in DeviceType::ALL {
                    for event in [
                        EventType::ServiceRequest,
                        EventType::S1ConnRelease,
                        EventType::Handover,
                        EventType::Tau,
                    ] {
                        v.push(experiments::fig2(&lab, device, event));
                    }
                }
                v
            }
            "fig3" => vec![
                experiments::fig3(&lab, DeviceType::Phone),
                experiments::fig3_hurst(&lab),
            ],
            "fig4" => vec![experiments::fig4(&lab, DeviceType::Phone)],
            "table2" => vec![experiments::table2()],
            "table3" => vec![experiments::table3()],
            "table4" => vec![experiments::table4(&lab, Scenario::Two)],
            "table11" => vec![experiments::table4(&lab, Scenario::One)],
            "table5" => vec![experiments::table5(&lab)],
            "table6" => vec![experiments::table6(&lab)],
            "table7" => vec![experiments::table7(&lab)],
            "table8" => vec![experiments::table8or9(&lab, false)],
            "table9" => vec![experiments::table8or9(&lab, true)],
            "table10" => vec![experiments::table10(&lab)],
            "table9x" => vec![experiments::table9_extended(&lab)],
            "fig7" => vec![
                experiments::fig7(&lab, EventType::ServiceRequest),
                experiments::fig7(&lab, EventType::S1ConnRelease),
            ],
            "diurnal" => vec![experiments::diurnal_fidelity(&lab)],
            "generalize" => vec![cn_eval::generalize::generalizability(
                lab.cfg.seed,
                (lab.cfg.model_mix.total() / 12).max(10),
            )],
            "holdout" => vec![cn_eval::generalize::holdout(
                lab.world(),
                lab.cfg.busy_hour,
                lab.cfg.seed,
            )],
            "verdicts" => {
                let (table, all_pass) = cn_eval::verdicts::verdicts(&lab);
                let _ = writeln!(sink, "{}", render(&table, format));
                if !all_pass {
                    let _ = sink.flush();
                    return ExitCode::from(3);
                }
                continue;
            }
            "summary" => {
                let world = lab.world();
                let _ = writeln!(sink, "world: {}\n", cn_trace::TraceSummary::of(world));
                let inv = cn_fit::inspect::inventory(lab.models(cn_fit::Method::Ours));
                let _ = writeln!(
                    sink,
                    "models (Ours): {} cluster-hour models ({} empty), \
                     clusters/hour P/CC/T = {:.0}/{:.0}/{:.0}, \
                     top coverage {:.0}%, first-event coverage {:.0}%",
                    inv.total_models,
                    inv.empty_models,
                    inv.mean_clusters_per_hour[0],
                    inv.mean_clusters_per_hour[1],
                    inv.mean_clusters_per_hour[2],
                    inv.top_coverage * 100.0,
                    inv.first_event_coverage * 100.0,
                );
                continue;
            }
            "dot" => {
                println!("{}", cn_statemachine::dot::two_level_dot());
                println!("{}", cn_statemachine::dot::fiveg_sa_dot());
                continue;
            }
            "ablations" => cn_eval::ablation::all(&lab),
            "all" => {
                let mut v = experiments::all(&lab);
                v.extend(cn_eval::ablation::all(&lab));
                v.push(cn_eval::generalize::generalizability(
                    lab.cfg.seed,
                    (lab.cfg.model_mix.total() / 12).max(10),
                ));
                v
            }
            other => return usage_error(&format!("unknown experiment `{other}`")),
        };
        for t in tables {
            let _ = writeln!(sink, "{}", render(&t, format));
        }
    }
    let _ = sink.flush();
    ExitCode::SUCCESS
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
}

fn render(t: &Table, format: Format) -> String {
    match format {
        Format::Text => t.render(),
        Format::Markdown => t.render_markdown(),
        Format::Csv => t.render_csv(),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
