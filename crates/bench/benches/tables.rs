//! One Criterion group per paper table/figure: times the cost of
//! regenerating each artifact at quick lab scale (the artifact content
//! itself is produced by `repro <table>`; these benches keep regeneration
//! cost visible and exercised).
//!
//! Artifacts share a lazily-built quick-scale [`Lab`], so per-table numbers
//! measure the table computation itself, not world generation or fitting.

use cn_eval::experiments;
use cn_eval::lab::Scenario;
use cn_eval::{ExperimentConfig, Lab};
use cn_trace::{DeviceType, EventType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| {
        let lab = Lab::new(ExperimentConfig::quick());
        // Pre-build the shared artifacts so each bench times only itself.
        lab.world();
        for m in cn_fit::Method::ALL {
            lab.models(m);
            lab.synth(m, Scenario::One);
            lab.synth(m, Scenario::Two);
        }
        lab.real(Scenario::One);
        lab.real(Scenario::Two);
        lab
    })
}

fn bench_tables(c: &mut Criterion) {
    let lab = lab();
    c.bench_function("table1_breakdown", |b| {
        b.iter(|| black_box(experiments::table1(lab)))
    });
    c.bench_function("fig2_boxplots", |b| {
        b.iter(|| {
            black_box(experiments::fig2(
                lab,
                DeviceType::Phone,
                EventType::ServiceRequest,
            ))
        })
    });
    c.bench_function("fig2_summary", |b| {
        b.iter(|| black_box(experiments::fig2_summary(lab)))
    });
    c.bench_function("fig3_variance_time", |b| {
        b.iter(|| black_box(experiments::fig3(lab, DeviceType::Phone)))
    });
    c.bench_function("fig4_cdf_ranges", |b| {
        b.iter(|| black_box(experiments::fig4(lab, DeviceType::Phone)))
    });
    c.bench_function("table4_scenario2", |b| {
        b.iter(|| black_box(experiments::table4(lab, Scenario::Two)))
    });
    c.bench_function("table11_scenario1", |b| {
        b.iter(|| black_box(experiments::table4(lab, Scenario::One)))
    });
    c.bench_function("table5_max_y_distance", |b| {
        b.iter(|| black_box(experiments::table5(lab)))
    });
    c.bench_function("table6_activity_split", |b| {
        b.iter(|| black_box(experiments::table6(lab)))
    });
    c.bench_function("fig7_count_cdfs", |b| {
        b.iter(|| black_box(experiments::fig7(lab, EventType::ServiceRequest)))
    });
}

fn bench_suites(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("test_suites");
    group.sample_size(10);
    group.bench_function("table8_no_clustering", |b| {
        b.iter(|| black_box(experiments::table8or9(lab, false)))
    });
    group.bench_function("table9_with_clustering", |b| {
        b.iter(|| black_box(experiments::table8or9(lab, true)))
    });
    group.bench_function("table10_second_level", |b| {
        b.iter(|| black_box(experiments::table10(lab)))
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("diurnal_fidelity", |b| {
        b.iter(|| black_box(experiments::diurnal_fidelity(lab)))
    });
    group.bench_function("verdicts", |b| {
        b.iter(|| black_box(cn_eval::verdicts::verdicts(lab)))
    });
    group.bench_function("holdout", |b| {
        b.iter(|| {
            black_box(cn_eval::generalize::holdout(
                lab.world(),
                lab.cfg.busy_hour,
                lab.cfg.seed,
            ))
        })
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("exit_prob_ablation", |b| {
        b.iter(|| black_box(cn_eval::ablation::ablation_exit_prob(lab)))
    });
    group.bench_function("persona_ablation", |b| {
        b.iter(|| black_box(cn_eval::ablation::ablation_personas(lab)))
    });
    group.finish();
}

fn bench_fiveg(c: &mut Criterion) {
    let lab = lab();
    let mut group = c.benchmark_group("fiveg");
    group.sample_size(10);
    group.bench_function("table7_projection", |b| {
        b.iter(|| black_box(experiments::table7(lab)))
    });
    group.finish();
}

criterion_group!(
    tables,
    bench_tables,
    bench_suites,
    bench_extensions,
    bench_ablations,
    bench_fiveg
);
criterion_main!(tables);
