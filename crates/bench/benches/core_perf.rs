//! Core performance benchmarks: the hot paths of the library.
//!
//! The paper reports 1.46 / 0.68 / 0.55 seconds to synthesize one UE-hour
//! (phone / connected car / tablet) on a 1.9 GHz Xeon; the
//! `generate_ue_hour` group is our equivalent (expect microseconds —
//! a compiled Semi-Markov sampler, not a Python process per UE).

use cn_cluster::ClusteringParams;
use cn_fit::{fit, FitConfig, Method};
use cn_gen::{generate_ue, PopulationStream};
use cn_mcn::{Mme, QueueSim, ServiceProfile};
use cn_statemachine::replay_ue;
use cn_stats::fit::{fit_family, Family};
use cn_stats::{ad_test_exponential, ks_test};
use cn_trace::{DeviceType, PopulationMix, Timestamp, Trace, UeId};
use cn_world::{generate_world, simulate_ue, DeviceProfile, WorldConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::OnceLock;

fn small_world() -> &'static Trace {
    static WORLD: OnceLock<Trace> = OnceLock::new();
    WORLD.get_or_init(|| generate_world(&WorldConfig::new(PopulationMix::new(60, 25, 15), 2.0, 7)))
}

fn fitted_models() -> &'static cn_fit::ModelSet {
    static MODELS: OnceLock<cn_fit::ModelSet> = OnceLock::new();
    MODELS.get_or_init(|| fit(small_world(), &FitConfig::new(Method::Ours)))
}

fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_simulation");
    for device in DeviceType::ALL {
        let profile = DeviceProfile::preset(device);
        group.bench_with_input(
            BenchmarkId::new("simulate_ue_day", device.abbrev()),
            &profile,
            |b, profile| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(simulate_ue(UeId(0), profile, 86_400.0, seed))
                })
            },
        );
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let models = fitted_models();
    let mut group = c.benchmark_group("generate_ue_hour");
    let start = Timestamp::at_hour(0, 18);
    let end = Timestamp::at_hour(0, 19);
    for device in DeviceType::ALL {
        group.bench_function(BenchmarkId::from_parameter(device.abbrev()), |b| {
            let dm = models.device(device);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(generate_ue(dm, Method::Ours, UeId(0), start, end, seed))
            })
        });
    }
    group.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let world = small_world();
    let mut group = c.benchmark_group("fitting");
    group.sample_size(10);
    group.throughput(Throughput::Elements(world.len() as u64));
    for method in [Method::Base, Method::Ours] {
        group.bench_function(BenchmarkId::from_parameter(method.name()), |b| {
            b.iter(|| black_box(fit(world, &FitConfig::new(method))))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let world = small_world();
    let per_ue = world.per_ue();
    let (_, busiest) = per_ue
        .iter()
        .max_by_key(|(_, ev)| ev.len())
        .expect("non-empty world");
    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(busiest.len() as u64));
    group.bench_function("replay_ue", |b| b.iter(|| black_box(replay_ue(busiest))));
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<f64> = (0..2_000)
        .map(|_| rng.gen::<f64>() * 100.0 + 0.01)
        .collect();
    let mut group = c.benchmark_group("statistics");
    for family in Family::PAPER_TABLE {
        group.bench_function(BenchmarkId::new("mle_fit", family.name()), |b| {
            b.iter(|| black_box(fit_family(family, &samples).unwrap()))
        });
    }
    let exp = fit_family(Family::Poisson, &samples).unwrap();
    group.bench_function("ks_test_2k", |b| {
        b.iter(|| black_box(ks_test(&samples, &exp).unwrap()))
    });
    group.bench_function("ad_test_2k", |b| {
        b.iter(|| black_box(ad_test_exponential(&samples).unwrap()))
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let features: Vec<Vec<f64>> = (0..5_000)
        .map(|_| (0..4).map(|_| rng.gen::<f64>() * 150.0).collect())
        .collect();
    let params = ClusteringParams {
        theta_n: 100,
        ..ClusteringParams::default()
    };
    let mut group = c.benchmark_group("clustering");
    group.throughput(Throughput::Elements(features.len() as u64));
    group.bench_function("quadtree_5k_ues", |b| {
        b.iter(|| black_box(cn_cluster::cluster(&features, &params)))
    });
    group.finish();
}

fn bench_trace_ops(c: &mut Criterion) {
    let world = small_world();
    let mut group = c.benchmark_group("trace_ops");
    group.throughput(Throughput::Elements(world.len() as u64));
    group.bench_function("per_ue_grouping", |b| b.iter(|| black_box(world.per_ue())));
    group.bench_function("binary_round_trip", |b| {
        b.iter(|| {
            let bin = cn_trace::io::to_binary(world);
            black_box(cn_trace::io::from_binary(&bin).unwrap())
        })
    });
    let halves: Vec<Trace> = vec![
        world.filter_device(DeviceType::Phone),
        world.filter_device(DeviceType::ConnectedCar),
        world.filter_device(DeviceType::Tablet),
    ];
    group.bench_function("merge_3way", |b| {
        b.iter(|| black_box(Trace::merge(halves.clone())))
    });
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let models = fitted_models();
    let mut group = c.benchmark_group("streaming");
    group.sample_size(20);
    let config = cn_gen::GenConfig::new(
        PopulationMix::new(60, 25, 15),
        Timestamp::at_hour(0, 12),
        2.0,
        11,
    );
    group.bench_function("population_stream_2h", |b| {
        b.iter(|| black_box(PopulationStream::new(models, &config).count()))
    });
    group.bench_function("batch_generate_2h", |b| {
        b.iter(|| black_box(cn_gen::generate(models, &config)))
    });
    group.finish();
}

fn bench_hurst(c: &mut Criterion) {
    let world = small_world();
    let times: Vec<u64> = world.iter().map(|r| r.t.as_millis()).collect();
    let end = world.end().map_or(0, |e| e.as_millis());
    let bins = cn_stats::variance_time::bin_counts(&times, 0, end);
    let mut group = c.benchmark_group("hurst");
    group.throughput(Throughput::Elements(bins.len() as u64));
    group.bench_function("aggregated_variance", |b| {
        b.iter(|| black_box(cn_stats::hurst_aggregated_variance(&bins, 8)))
    });
    group.finish();
}

fn bench_mcn(c: &mut Criterion) {
    let world = small_world();
    let mut group = c.benchmark_group("mcn");
    group.throughput(Throughput::Elements(world.len() as u64));
    group.bench_function("mme_state_tracking", |b| {
        b.iter(|| black_box(Mme::new().run(world)))
    });
    group.bench_function("queue_sim_4_workers", |b| {
        let sim = QueueSim::new(ServiceProfile::default_mme(), 4);
        b.iter(|| black_box(sim.run(world).unwrap()))
    });
    group.bench_function("nf_fanout", |b| {
        let matrix = cn_mcn::TransactionMatrix::default_epc();
        b.iter(|| black_box(cn_mcn::nf_load(world, &matrix)))
    });
    group.finish();
}

criterion_group!(
    core_perf,
    bench_world,
    bench_generator,
    bench_fitting,
    bench_replay,
    bench_stats,
    bench_clustering,
    bench_trace_ops,
    bench_streaming,
    bench_hurst,
    bench_mcn
);
criterion_main!(core_perf);
