//! Tier-1 smoke of the tracked generation benchmark: a tiny population
//! through the exact code path `gen_bench` measures, so a regression in
//! the streaming pipeline (or the bench plumbing itself) breaks
//! `cargo test` instead of silently corrupting the recorded trajectory.

use bench::{
    bench_json, check_snapshot_events, measure_reps, measure_scale_point, run_sequential,
    run_sharded, run_sharded_observed, ShardPoint,
};
use cn_fit::{fit, FitConfig, Method};
use cn_gen::{generate, GenConfig, OutOfCoreConfig};
use cn_obs::Registry;
use cn_trace::{PopulationMix, Timestamp};
use cn_world::{generate_world, WorldConfig};

#[test]
fn bench_pipeline_smoke() {
    let world = generate_world(&WorldConfig::new(PopulationMix::new(20, 8, 5), 1.0, 3));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(
        PopulationMix::new(20, 8, 5),
        Timestamp::at_hour(0, 10),
        1.0,
        11,
    );

    let batch_events = generate(&models, &config).len() as u64;
    let baseline = measure_reps(2, || run_sequential(&models, &config));
    let p1 = ShardPoint::against(
        1,
        measure_reps(2, || run_sharded(&models, &config, 1)),
        &baseline,
    );
    let p3 = ShardPoint::against(
        3,
        measure_reps(2, || run_sharded(&models, &config, 3)),
        &baseline,
    );

    assert!(baseline.events > 0, "smoke workload produced no events");
    assert_eq!(baseline.events, batch_events, "stream vs batch event count");
    assert_eq!(baseline.events, p1.stats.events, "1-shard event count");
    assert_eq!(baseline.events, p3.stats.events, "3-shard event count");

    // The instrumented configuration `--metrics` measures: same workload,
    // live registry. Keep the final rep's snapshot and hold its ledger to
    // the stream's event count, exactly as `gen_bench` does.
    let mut snapshot = None;
    let observed = ShardPoint::against(
        3,
        measure_reps(2, || {
            let registry = Registry::new();
            let events = run_sharded_observed(&models, &config, 3, &registry);
            snapshot = Some(registry.snapshot());
            events
        }),
        &baseline,
    );
    let snapshot = snapshot.expect("at least one observed rep ran");
    assert_eq!(baseline.events, observed.stats.events, "observed count");
    check_snapshot_events(&snapshot, observed.stats.events)
        .expect("telemetry ledger must balance against the stream");

    // The scaling axis's code path at smoke size: the out-of-core
    // exporter through `measure_scale_point`, twice with ascending
    // populations, exactly as `gen_bench` measures it. A zero spill
    // budget forces the spill/merge machinery through the smoke too.
    let occ = OutOfCoreConfig {
        chunk_ues: 8,
        buffer_budget_bytes: 0,
        temp_dir: None,
    };
    let s_small = measure_scale_point(&models, &config, &occ);
    assert_eq!(s_small.events, baseline.events, "scaling point event count");
    assert!(s_small.spilled_runs > 0, "zero budget must spill");
    let bigger = GenConfig::new(
        cn_trace::PopulationMix::new(40, 16, 10),
        Timestamp::at_hour(0, 10),
        1.0,
        11,
    );
    let s_big = measure_scale_point(&models, &bigger, &occ);
    assert!(s_big.ues > s_small.ues);

    // `bench_json` itself re-asserts both shard points and equal event
    // counts — rendering succeeding is part of the smoke.
    let json = bench_json(
        "smoke",
        3,
        &baseline,
        &[p1, p3],
        Some(&observed),
        &[s_small, s_big],
        None,
    );
    for key in [
        "\"events_per_sec\"",
        "\"peak_rss_mb\"",
        "\"wall_ms\"",
        "\"wall_ms_min\"",
        "\"cores\": 3",
        "\"single_core\": false",
        "\"reps\": 2",
        "\"speedup_vs_baseline\"",
        "\"baseline_single_thread\"",
        "\"instrumented\": { \"shards\": 3,",
        "{ \"shards\": 1,",
        "{ \"shards\": 3,",
        "\"scaling\": [",
        "\"spilled_runs\"",
    ] {
        assert!(json.contains(key), "bench json missing {key}: {json}");
    }

    // The snapshot itself must survive a JSON round trip — `obs_check`
    // reads it back from disk in CI.
    let parsed = cn_obs::ObsSnapshot::from_json(&snapshot.to_json()).expect("snapshot round trip");
    assert_eq!(
        parsed.counter("cn_gen_merge_events_total"),
        Some(baseline.events)
    );

    // A file whose headline poses as parallel without the cores point
    // measured must be refused outright.
    let refused =
        std::panic::catch_unwind(|| bench_json("smoke", 3, &baseline, &[p1], None, &[], None));
    assert!(
        refused.is_err(),
        "bench_json accepted a headline without the shards == cores point"
    );
}
