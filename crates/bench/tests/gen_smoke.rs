//! Tier-1 smoke of the tracked generation benchmark: a tiny population
//! through the exact code path `gen_bench` measures, so a regression in
//! the streaming pipeline (or the bench plumbing itself) breaks
//! `cargo test` instead of silently corrupting the recorded trajectory.

use bench::{bench_json, run_sequential, run_sharded, BenchPoint};
use cn_fit::{fit, FitConfig, Method};
use cn_gen::{generate, GenConfig};
use cn_trace::{PopulationMix, Timestamp};
use cn_world::{generate_world, WorldConfig};

#[test]
fn bench_pipeline_smoke() {
    let world = generate_world(&WorldConfig::new(PopulationMix::new(20, 8, 5), 1.0, 3));
    let models = fit(&world, &FitConfig::new(Method::Ours));
    let config = GenConfig::new(
        PopulationMix::new(20, 8, 5),
        Timestamp::at_hour(0, 10),
        1.0,
        11,
    );

    let batch_events = generate(&models, &config).len() as u64;
    let baseline = BenchPoint::measure(|| run_sequential(&models, &config));
    let sharded = BenchPoint::measure(|| run_sharded(&models, &config, 3));

    assert!(baseline.events > 0, "smoke workload produced no events");
    assert_eq!(baseline.events, batch_events, "stream vs batch event count");
    assert_eq!(
        baseline.events, sharded.events,
        "sequential vs sharded event count"
    );

    let json = bench_json("smoke", 3, baseline, sharded);
    for key in [
        "events_per_sec",
        "peak_rss_mb",
        "wall_ms",
        "baseline_single_thread",
    ] {
        assert!(json.contains(key), "bench json missing {key}: {json}");
    }
}
