//! Shared measurement plumbing for the benchmark harness.
//!
//! The criterion benches under `benches/` cover micro-level hot paths;
//! this library backs the *tracked* macro benchmark `gen_bench`
//! (`src/bin/gen_bench.rs`), which generates a fixed workload and records
//! `BENCH_gen.json`, so the generator's performance trajectory is visible
//! PR over PR. The protocol is deliberately noise-hostile:
//!
//! * every configuration runs **≥ 5 repetitions** ([`measure_reps`]) and
//!   reports the **median** wall time (the headline) alongside the **min**
//!   (the noise floor) — a single 29 ms run is timing noise, not a
//!   measurement;
//! * the sequential single-thread baseline and the sharded stream at
//!   shard counts `{1, N_cores}` are all measured in the same process
//!   ([`ShardPoint`]), each with its own `speedup_vs_baseline`, so a
//!   1-shard result can never silently masquerade as a parallel one —
//!   [`bench_json`] refuses to render a file that omits either point or
//!   whose per-point event counts disagree;
//! * a **population-scaling axis** ([`ScalePoint`]) runs the out-of-core
//!   exporter at ascending populations with the RSS watermark reset
//!   between points ([`reset_peak_rss`]), so `BENCH_gen.json` records
//!   `events_per_sec` *and* `peak_rss_mb` per point — the bounded-memory
//!   contract is a gated number, not a claim.
//!
//! A tiny-population smoke of the same code path runs under `cargo test`
//! (see `tests/gen_smoke.rs`), so a broken pipeline fails tier-1 rather
//! than only surfacing at bench time.

use cn_fit::ModelSet;
use cn_gen::{generate_out_of_core, GenConfig, OutOfCoreConfig, PopulationStream, ShardedStream};
use cn_obs::{MetricValue, ObsSnapshot, Registry};
use std::time::Instant;

/// One measured generation run.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Events produced.
    pub events: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Throughput in events per second.
    pub events_per_sec: f64,
}

impl BenchPoint {
    /// Time `run` (which reports how many events it produced).
    pub fn measure<F: FnOnce() -> u64>(run: F) -> BenchPoint {
        let t0 = Instant::now();
        let events = run();
        let secs = t0.elapsed().as_secs_f64();
        BenchPoint {
            events,
            wall_ms: secs * 1e3,
            events_per_sec: if secs > 0.0 {
                events as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// Median / min wall-time statistics over repeated runs of one fixed
/// configuration.
#[derive(Debug, Clone, Copy)]
pub struct RepStats {
    /// Events per run (identical across reps — the workload is fixed).
    pub events: u64,
    /// Repetitions measured.
    pub reps: usize,
    /// Median wall time — the headline; robust to one-sided scheduler
    /// noise in a way the mean is not.
    pub wall_ms_median: f64,
    /// Fastest rep — the machine's noise floor for this configuration.
    pub wall_ms_min: f64,
    /// Throughput at the median wall time.
    pub events_per_sec: f64,
}

/// Run `run` `reps` times (≥ 1) and fold the wall times into [`RepStats`].
/// Panics if the event count varies across reps: the tracked workload is
/// fixed, so a varying count means the benchmark is measuring different
/// work each rep and its numbers would be meaningless.
pub fn measure_reps<F: FnMut() -> u64>(reps: usize, mut run: F) -> RepStats {
    assert!(reps >= 1, "at least one repetition required");
    let mut walls = Vec::with_capacity(reps);
    let mut events = None;
    for rep in 0..reps {
        let p = BenchPoint::measure(&mut run);
        match events {
            None => events = Some(p.events),
            Some(e) => assert_eq!(
                e, p.events,
                "event count varied across reps (rep {rep}): the workload must be fixed"
            ),
        }
        walls.push(p.wall_ms);
    }
    walls.sort_by(f64::total_cmp);
    let wall_ms_median = if reps % 2 == 1 {
        walls[reps / 2]
    } else {
        0.5 * (walls[reps / 2 - 1] + walls[reps / 2])
    };
    let events = events.expect("reps >= 1");
    RepStats {
        events,
        reps,
        wall_ms_median,
        wall_ms_min: walls[0],
        events_per_sec: if wall_ms_median > 0.0 {
            events as f64 / (wall_ms_median / 1e3)
        } else {
            0.0
        },
    }
}

/// One measured shard count, with its speedup against the sequential
/// baseline (median-over-median wall-time ratio; > 1 is faster).
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Shard count this point was measured at.
    pub shards: usize,
    /// The repetition statistics.
    pub stats: RepStats,
    /// `baseline median wall / this median wall`.
    pub speedup_vs_baseline: f64,
}

impl ShardPoint {
    /// Fold `stats` into a point, computing the speedup against `baseline`.
    pub fn against(shards: usize, stats: RepStats, baseline: &RepStats) -> ShardPoint {
        ShardPoint {
            shards,
            stats,
            speedup_vs_baseline: if stats.wall_ms_median > 0.0 {
                baseline.wall_ms_median / stats.wall_ms_median
            } else {
                0.0
            },
        }
    }
}

/// Peak resident set size of this process in MiB (Linux `VmHWM`), `None`
/// where `/proc` is unavailable.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Reset the kernel's peak-RSS watermark (`VmHWM`) to the *current* RSS
/// by writing `5` to `/proc/self/clear_refs`. The population-scaling axis
/// measures several ascending workloads in one process; without a reset
/// between points, every point would inherit the high-water mark of its
/// largest predecessor and the per-point RSS column would be meaningless.
/// Returns `false` where the knob is unavailable (non-Linux).
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// One point on the population-scaling axis: the out-of-core exporter run
/// once at a given population, with throughput and the point's own peak
/// RSS (see [`reset_peak_rss`]) recorded. The axis exists to demonstrate
/// the bounded-memory contract — RSS must stay roughly flat as the
/// population grows 10× per point — so RSS, not wall time, is the gated
/// column.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Total population generated at this point.
    pub ues: u32,
    /// Window length in hours (shrunk as the population grows to keep the
    /// point CI-sized).
    pub hours: f64,
    /// Events exported.
    pub events: u64,
    /// Wall-clock time in milliseconds (single run — this axis gates RSS,
    /// not throughput; the multi-rep medians live in `points`).
    pub wall_ms: f64,
    /// Throughput in events per second.
    pub events_per_sec: f64,
    /// Peak RSS in MiB observed *during this point* (watermark reset
    /// before the run), 0.0 where `/proc` is unavailable.
    pub peak_rss_mb: f64,
    /// Chunked runs the exporter produced.
    pub runs: usize,
    /// Runs that spilled to disk under the buffer budget.
    pub spilled_runs: usize,
}

/// An anonymous on-disk sink: created in the temp dir and immediately
/// unlinked, so the exported bytes land on disk (as a real out-of-core
/// run's would) without the Vec-backed alternative inflating the very RSS
/// the scaling axis is measuring — and without leaving files behind.
fn unlinked_temp_sink() -> std::fs::File {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "cn-bench-export-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .expect("create bench export sink in temp dir");
    let _ = std::fs::remove_file(&path);
    file
}

/// Measure one population-scaling point: reset the RSS watermark, run the
/// out-of-core exporter once into an unlinked temp-file sink, and record
/// throughput plus the point's own peak RSS.
pub fn measure_scale_point(
    models: &ModelSet,
    config: &GenConfig,
    occ: &OutOfCoreConfig,
) -> ScalePoint {
    reset_peak_rss();
    let t0 = Instant::now();
    let (report, _sink) = generate_out_of_core(models, config, occ, unlinked_temp_sink())
        .expect("out-of-core export with a healthy sink and temp dir");
    let secs = t0.elapsed().as_secs_f64();
    ScalePoint {
        ues: config.population.total(),
        hours: config.duration_hours,
        events: report.events,
        wall_ms: secs * 1e3,
        events_per_sec: if secs > 0.0 {
            report.events as f64 / secs
        } else {
            0.0
        },
        peak_rss_mb: peak_rss_mb().unwrap_or(0.0),
        runs: report.runs,
        spilled_runs: report.spilled_runs,
    }
}

/// Drain the sequential population stream — the single-threaded baseline
/// every `BENCH_gen.json` records alongside the sharded results.
pub fn run_sequential(models: &ModelSet, config: &GenConfig) -> u64 {
    PopulationStream::new(models, config).count() as u64
}

/// Drain the sharded stream at an explicit shard count.
pub fn run_sharded(models: &ModelSet, config: &GenConfig, shards: usize) -> u64 {
    ShardedStream::with_shards(models, config, shards).count() as u64
}

/// Drain the sharded stream with full `cn-obs` telemetry enabled — the
/// instrumented configuration `gen_bench --metrics` measures and
/// snapshots.
pub fn run_sharded_observed(
    models: &ModelSet,
    config: &GenConfig,
    shards: usize,
    registry: &Registry,
) -> u64 {
    ShardedStream::with_shards_observed(models, config, shards, registry).count() as u64
}

/// The telemetry honesty gate: a fully drained sharded run's summed
/// per-shard production (`cn_gen_shard_events_total{shard=i}`) and the
/// consumer-side merge total (`cn_gen_merge_events_total`) must both
/// equal the workload's event count — if the ledger disagrees with the
/// stream, the instrumentation (not the generator) is broken, and the
/// snapshot must not be recorded as if it were evidence.
pub fn check_snapshot_events(snapshot: &ObsSnapshot, events: u64) -> Result<(), String> {
    let produced = snapshot
        .counter_total("cn_gen_shard_events_total")
        .ok_or("snapshot has no cn_gen_shard_events_total counters (not a parallel run?)")?;
    if produced != events {
        return Err(format!(
            "per-shard counters sum to {produced} events, stream produced {events}"
        ));
    }
    let merged = snapshot
        .counter("cn_gen_merge_events_total")
        .ok_or("snapshot has no cn_gen_merge_events_total counter")?;
    if merged != events {
        return Err(format!(
            "merge counter reports {merged} events, stream produced {events}"
        ));
    }
    Ok(())
}

/// `cn_gen_worker_exit` exits recorded with `outcome` (`None` when the
/// series is absent — e.g. an inline run that spawned no workers).
pub fn worker_exits(snapshot: &ObsSnapshot, outcome: &str) -> Option<u64> {
    snapshot
        .get("cn_gen_worker_exit", &[("outcome", outcome)])
        .map(|m| match m.value {
            MetricValue::Counter { value } => value,
            _ => 0,
        })
}

/// How a snapshot's event ledger was accounted for (see
/// [`check_snapshot_accounted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerVerdict {
    /// Clean run: shard and merge counters both equal the workload and no
    /// worker failure was recorded.
    Balanced,
    /// The ledger does not balance, but the snapshot records the worker
    /// failure(s) that explain it — contained, not silent.
    FailureContained {
        /// `cn_gen_worker_exit{outcome="panicked"}`.
        panicked: u64,
        /// `cn_gen_worker_exit{outcome="cancelled"}`.
        cancelled: u64,
    },
}

/// The failure-aware ledger gate: **every imbalance must be explained**.
///
/// Extends [`check_snapshot_events`] with the worker-exit telemetry the
/// sharded pipeline records on shutdown. The acceptable states are:
///
/// * the ledger balances and no failure was recorded → [`LedgerVerdict::Balanced`];
/// * the ledger does *not* balance but the snapshot says why — panicked or
///   cancelled worker exits → [`LedgerVerdict::FailureContained`].
///
/// Everything else is an error: an imbalance with no recorded failure is
/// exactly the silent truncation this pipeline promises not to produce,
/// and a balanced ledger alongside recorded failures is contradictory
/// evidence (a failed worker cannot have delivered its full shard).
pub fn check_snapshot_accounted(
    snapshot: &ObsSnapshot,
    events: u64,
) -> Result<LedgerVerdict, String> {
    let panicked = worker_exits(snapshot, "panicked").unwrap_or(0);
    let cancelled = worker_exits(snapshot, "cancelled").unwrap_or(0);
    match (
        check_snapshot_events(snapshot, events),
        panicked + cancelled,
    ) {
        (Ok(()), 0) => Ok(LedgerVerdict::Balanced),
        (Ok(()), _) => Err(format!(
            "ledger balances at {events} events yet {panicked} panicked / {cancelled} \
             cancelled worker exits were recorded — contradictory evidence"
        )),
        (Err(_), n) if n > 0 => Ok(LedgerVerdict::FailureContained {
            panicked,
            cancelled,
        }),
        (Err(e), _) => Err(format!(
            "{e} — and no worker failure was recorded that would explain the \
             imbalance (silent truncation)"
        )),
    }
}

fn point_fields(p: &ShardPoint) -> String {
    format!(
        "{{ \"shards\": {}, \"events_per_sec\": {:.1}, \"wall_ms_median\": {:.1}, \"wall_ms_min\": {:.1}, \"speedup_vs_baseline\": {:.3} }}",
        p.shards, p.stats.events_per_sec, p.stats.wall_ms_median, p.stats.wall_ms_min,
        p.speedup_vs_baseline,
    )
}

fn point_json(p: &ShardPoint) -> String {
    format!("    {}", point_fields(p))
}

fn scale_point_json(p: &ScalePoint) -> String {
    format!(
        "    {{ \"ues\": {}, \"hours\": {:.2}, \"events\": {}, \"events_per_sec\": {:.1}, \"wall_ms\": {:.1}, \"peak_rss_mb\": {:.1}, \"runs\": {}, \"spilled_runs\": {} }}",
        p.ues, p.hours, p.events, p.events_per_sec, p.wall_ms, p.peak_rss_mb, p.runs,
        p.spilled_runs,
    )
}

/// Render the `BENCH_gen.json` payload. Hand-rolled with a stable key
/// order so diffs between recorded runs stay readable.
///
/// The headline keys (`events_per_sec`, `wall_ms`, `speedup_vs_baseline`)
/// describe the point measured at `shards == cores` — the hardware's
/// parallel capability — and always carry their true `shards` count plus a
/// `single_core` flag, so a single-core result is explicitly labeled as
/// such rather than posing as a parallel win.
///
/// Honesty checks (all panic, by design — a refused file is better than a
/// misleading one):
///
/// * `points` must contain a `shards == 1` entry **and** a
///   `shards == cores` entry;
/// * every point, the baseline, and the `instrumented` point (when
///   present) must report the same event count;
/// * `scaling` points (when present) must be strictly ascending in
///   population and non-empty in events — a scaling axis that shrinks or
///   generates nothing proves nothing about memory behavior.
///
/// `instrumented` is the same workload drained with a live `cn-obs`
/// registry attached ([`run_sharded_observed`]); recording it beside the
/// uninstrumented points keeps the telemetry overhead budget visible in
/// the tracked file instead of taking "negligible" on faith.
///
/// `process_rss_mb` is the process high-water mark for the top-level
/// `peak_rss_mb` key; pass a value captured *before* measuring the
/// scaling axis (whose per-point watermark resets would otherwise erase
/// the main workload's peak), or `None` to read `/proc` at render time.
pub fn bench_json(
    workload: &str,
    cores: usize,
    baseline: &RepStats,
    points: &[ShardPoint],
    instrumented: Option<&ShardPoint>,
    scaling: &[ScalePoint],
    process_rss_mb: Option<f64>,
) -> String {
    let headline = points
        .iter()
        .find(|p| p.shards == cores)
        .expect("points must include the shards == cores measurement");
    assert!(
        points.iter().any(|p| p.shards == 1),
        "points must include the shards == 1 measurement"
    );
    for p in points {
        assert_eq!(
            p.stats.events, baseline.events,
            "shards={} event count diverged from the sequential baseline",
            p.shards
        );
    }
    if let Some(p) = instrumented {
        assert_eq!(
            p.stats.events, baseline.events,
            "instrumented event count diverged from the sequential baseline"
        );
    }
    for w in scaling.windows(2) {
        assert!(
            w[1].ues > w[0].ues,
            "scaling points must be strictly ascending in population ({} then {})",
            w[0].ues,
            w[1].ues
        );
    }
    for s in scaling {
        assert!(
            s.events > 0,
            "scaling point at {} UEs generated no events",
            s.ues
        );
    }
    // The caller snapshots the process high-water mark *before* the
    // scaling axis resets it per point; fall back to reading it now when
    // no scaling ran.
    let rss = process_rss_mb.or_else(peak_rss_mb).unwrap_or(0.0);
    let rendered: Vec<String> = points.iter().map(point_json).collect();
    let scaling_json = if scaling.is_empty() {
        "[]".to_string()
    } else {
        let rows: Vec<String> = scaling.iter().map(scale_point_json).collect();
        format!("[\n{}\n  ]", rows.join(",\n"))
    };
    let instrumented_json = match instrumented {
        Some(p) => point_fields(p),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"workload\": \"{workload}\",\n  \"cores\": {cores},\n  \"single_core\": {single_core},\n  \"events\": {events},\n  \"reps\": {reps},\n  \"shards\": {shards},\n  \"events_per_sec\": {eps:.1},\n  \"wall_ms\": {wall:.1},\n  \"wall_ms_min\": {wall_min:.1},\n  \"peak_rss_mb\": {rss:.1},\n  \"speedup_vs_baseline\": {speedup:.3},\n  \"baseline_single_thread\": {{\n    \"events_per_sec\": {beps:.1},\n    \"wall_ms_median\": {bwall:.1},\n    \"wall_ms_min\": {bwall_min:.1},\n    \"events\": {bevents}\n  }},\n  \"instrumented\": {instrumented_json},\n  \"points\": [\n{points_json}\n  ],\n  \"scaling\": {scaling_json}\n}}\n",
        single_core = cores == 1,
        events = baseline.events,
        reps = baseline.reps,
        shards = headline.shards,
        eps = headline.stats.events_per_sec,
        wall = headline.stats.wall_ms_median,
        wall_min = headline.stats.wall_ms_min,
        speedup = headline.speedup_vs_baseline,
        beps = baseline.events_per_sec,
        bwall = baseline.wall_ms_median,
        bwall_min = baseline.wall_ms_min,
        bevents = baseline.events,
        points_json = rendered.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(events: u64, walls_sorted_ms: &[f64]) -> RepStats {
        let reps = walls_sorted_ms.len();
        let median = if reps % 2 == 1 {
            walls_sorted_ms[reps / 2]
        } else {
            0.5 * (walls_sorted_ms[reps / 2 - 1] + walls_sorted_ms[reps / 2])
        };
        RepStats {
            events,
            reps,
            wall_ms_median: median,
            wall_ms_min: walls_sorted_ms[0],
            events_per_sec: events as f64 / (median / 1e3),
        }
    }

    #[test]
    fn measure_counts_and_times() {
        let p = BenchPoint::measure(|| 42);
        assert_eq!(p.events, 42);
        assert!(p.wall_ms >= 0.0);
    }

    #[test]
    fn measure_reps_takes_median_and_min() {
        let mut i = 0u64;
        let s = measure_reps(5, || {
            i += 1;
            7
        });
        assert_eq!(i, 5);
        assert_eq!((s.events, s.reps), (7, 5));
        assert!(s.wall_ms_min <= s.wall_ms_median);
    }

    #[test]
    fn measure_reps_rejects_varying_event_counts() {
        let mut i = 0u64;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            measure_reps(3, || {
                i += 1;
                i
            })
        }));
        assert!(r.is_err(), "varying event counts must be rejected");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mb().expect("VmHWM present on Linux");
            assert!(rss > 0.0);
        }
    }

    #[test]
    fn json_has_the_tracked_keys_and_both_points() {
        let baseline = stats(10, &[1.0, 2.0, 3.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0, 2.0, 2.0]), &baseline);
        let p4 = ShardPoint::against(4, stats(10, &[1.0, 1.0, 1.0]), &baseline);
        let json = bench_json("test", 4, &baseline, &[p1, p4], None, &[], None);
        for key in [
            "\"workload\"",
            "\"cores\": 4",
            "\"single_core\": false",
            "\"events\"",
            "\"reps\": 3",
            "\"shards\": 4",
            "\"events_per_sec\"",
            "\"wall_ms\"",
            "\"wall_ms_min\"",
            "\"peak_rss_mb\"",
            "\"speedup_vs_baseline\"",
            "\"baseline_single_thread\"",
            "\"points\"",
            "{ \"shards\": 1,",
            "{ \"shards\": 4,",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Headline = the cores point: 2 ms baseline / 1 ms sharded.
        assert!(json.contains("\"speedup_vs_baseline\": 2.000"), "{json}");
    }

    #[test]
    fn json_refuses_a_masquerading_headline() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        // cores = 4 but only a 1-shard point measured: refuse.
        let r =
            std::panic::catch_unwind(|| bench_json("test", 4, &baseline, &[p1], None, &[], None));
        assert!(r.is_err(), "shards=1 must not pose as a 4-core result");
        // A missing 1-shard point is refused too.
        let p4 = ShardPoint::against(4, stats(10, &[1.0]), &baseline);
        let r =
            std::panic::catch_unwind(|| bench_json("test", 4, &baseline, &[p4], None, &[], None));
        assert!(r.is_err(), "the shards=1 point is mandatory");
    }

    #[test]
    fn json_refuses_diverging_event_counts() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        let bad = ShardPoint::against(4, stats(11, &[1.0]), &baseline);
        let r = std::panic::catch_unwind(|| {
            bench_json("test", 4, &baseline, &[p1, bad], None, &[], None)
        });
        assert!(r.is_err(), "diverging event counts must be refused");
        // The instrumented point is held to the same standard.
        let p4 = ShardPoint::against(4, stats(10, &[1.0]), &baseline);
        let drifted = ShardPoint::against(4, stats(12, &[1.5]), &baseline);
        let r = std::panic::catch_unwind(|| {
            bench_json("test", 4, &baseline, &[p1, p4], Some(&drifted), &[], None)
        });
        assert!(r.is_err(), "a drifting instrumented count must be refused");
    }

    #[test]
    fn json_records_the_instrumented_point() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        let p4 = ShardPoint::against(4, stats(10, &[1.0]), &baseline);
        let observed = ShardPoint::against(4, stats(10, &[1.2]), &baseline);
        let json = bench_json("test", 4, &baseline, &[p1, p4], Some(&observed), &[], None);
        assert!(
            json.contains("\"instrumented\": { \"shards\": 4,"),
            "{json}"
        );
        let json = bench_json("test", 4, &baseline, &[p1, p4], None, &[], None);
        assert!(json.contains("\"instrumented\": null"), "{json}");
    }

    #[test]
    fn snapshot_check_demands_a_balanced_ledger() {
        let registry = Registry::new();
        registry
            .counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(6);
        registry
            .counter_with("cn_gen_shard_events_total", &[("shard", "1")])
            .add(4);
        registry.counter("cn_gen_merge_events_total").add(10);
        let snap = registry.snapshot();
        assert_eq!(check_snapshot_events(&snap, 10), Ok(()));
        assert!(check_snapshot_events(&snap, 11).is_err());
        // A merge/shard mismatch is caught even when one side agrees.
        registry.counter("cn_gen_merge_events_total").add(1);
        assert!(check_snapshot_events(&registry.snapshot(), 10).is_err());
        // An inline (no per-shard series) snapshot is not valid evidence.
        let inline = Registry::new();
        inline.counter("cn_gen_merge_events_total").add(10);
        assert!(check_snapshot_events(&inline.snapshot(), 10).is_err());
    }

    #[test]
    fn accounted_gate_demands_explained_imbalances() {
        // A clean, balanced run.
        let clean = Registry::new();
        clean
            .counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(10);
        clean.counter("cn_gen_merge_events_total").add(10);
        clean
            .counter_with("cn_gen_worker_exit", &[("outcome", "completed")])
            .add(1);
        assert_eq!(
            check_snapshot_accounted(&clean.snapshot(), 10),
            Ok(LedgerVerdict::Balanced)
        );
        // A failed run: short ledger, but the failure is on the record.
        let failed = Registry::new();
        failed
            .counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(4);
        failed.counter("cn_gen_merge_events_total").add(4);
        failed
            .counter_with("cn_gen_worker_exit", &[("outcome", "panicked")])
            .add(1);
        assert_eq!(
            check_snapshot_accounted(&failed.snapshot(), 10),
            Ok(LedgerVerdict::FailureContained {
                panicked: 1,
                cancelled: 0
            })
        );
        // The forbidden state: short ledger, nothing recorded to explain it.
        let silent = Registry::new();
        silent
            .counter_with("cn_gen_shard_events_total", &[("shard", "0")])
            .add(4);
        silent.counter("cn_gen_merge_events_total").add(4);
        let err = check_snapshot_accounted(&silent.snapshot(), 10).unwrap_err();
        assert!(err.contains("silent truncation"), "{err}");
        // Contradictory evidence: balanced ledger yet a recorded failure.
        clean
            .counter_with("cn_gen_worker_exit", &[("outcome", "cancelled")])
            .add(1);
        let err = check_snapshot_accounted(&clean.snapshot(), 10).unwrap_err();
        assert!(err.contains("contradictory"), "{err}");
    }

    #[test]
    fn single_core_json_is_labeled() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        let p2 = ShardPoint::against(2, stats(10, &[3.0]), &baseline);
        let json = bench_json("test", 1, &baseline, &[p1, p2], None, &[], None);
        assert!(json.contains("\"single_core\": true"), "{json}");
        assert!(json.contains("\"shards\": 1,"), "{json}");
        // An unmeasured scaling axis renders as an empty array, not a lie.
        assert!(json.contains("\"scaling\": []"), "{json}");
    }

    fn scale(ues: u32, events: u64, rss: f64) -> ScalePoint {
        ScalePoint {
            ues,
            hours: 1.0,
            events,
            wall_ms: 10.0,
            events_per_sec: events as f64 * 100.0,
            peak_rss_mb: rss,
            runs: 2,
            spilled_runs: 1,
        }
    }

    #[test]
    fn json_records_the_scaling_axis() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        let p4 = ShardPoint::against(4, stats(10, &[1.0]), &baseline);
        let pts = [scale(20_000, 500, 40.0), scale(200_000, 5_000, 55.0)];
        let json = bench_json("test", 4, &baseline, &[p1, p4], None, &pts, None);
        for key in [
            "\"scaling\": [",
            "{ \"ues\": 20000,",
            "{ \"ues\": 200000,",
            "\"peak_rss_mb\": 55.0",
            "\"spilled_runs\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn json_refuses_a_meaningless_scaling_axis() {
        let baseline = stats(10, &[2.0]);
        let p1 = ShardPoint::against(1, stats(10, &[2.0]), &baseline);
        let p4 = ShardPoint::against(4, stats(10, &[1.0]), &baseline);
        // Non-ascending populations: the "10× per point" claim is void.
        let descending = [scale(200_000, 5_000, 55.0), scale(20_000, 500, 40.0)];
        let r = std::panic::catch_unwind(|| {
            bench_json("test", 4, &baseline, &[p1, p4], None, &descending, None)
        });
        assert!(r.is_err(), "descending scaling points must be refused");
        // An empty workload proves nothing about memory behavior.
        let empty = [scale(20_000, 0, 40.0)];
        let r = std::panic::catch_unwind(|| {
            bench_json("test", 4, &baseline, &[p1, p4], None, &empty, None)
        });
        assert!(r.is_err(), "a zero-event scaling point must be refused");
    }

    #[test]
    fn rss_watermark_resets_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(reset_peak_rss(), "clear_refs writable on Linux");
            assert!(peak_rss_mb().expect("VmHWM present") > 0.0);
        }
    }
}
