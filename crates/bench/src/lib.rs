//! Shared helpers for the benchmark harness live in the bench files themselves.
