//! Shared measurement plumbing for the benchmark harness.
//!
//! The criterion benches under `benches/` cover micro-level hot paths;
//! this library backs the *tracked* macro benchmark `gen_bench`
//! (`src/bin/gen_bench.rs`), which generates a fixed 2K-UE × 6 h workload
//! and records `{events_per_sec, peak_rss_mb, wall_ms}` — plus the
//! single-threaded baseline measured in the same run — to
//! `BENCH_gen.json`, so the generator's performance trajectory is visible
//! PR over PR. A tiny-population smoke of the same code path runs under
//! `cargo test` (see `tests/gen_smoke.rs`), so a broken pipeline fails
//! tier-1 rather than only surfacing at bench time.

use cn_fit::ModelSet;
use cn_gen::{GenConfig, PopulationStream, ShardedStream};
use std::time::Instant;

/// One measured generation run.
#[derive(Debug, Clone, Copy)]
pub struct BenchPoint {
    /// Events produced.
    pub events: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Throughput in events per second.
    pub events_per_sec: f64,
}

impl BenchPoint {
    /// Time `run` (which reports how many events it produced).
    pub fn measure<F: FnOnce() -> u64>(run: F) -> BenchPoint {
        let t0 = Instant::now();
        let events = run();
        let secs = t0.elapsed().as_secs_f64();
        BenchPoint {
            events,
            wall_ms: secs * 1e3,
            events_per_sec: if secs > 0.0 {
                events as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// Peak resident set size of this process in MiB (Linux `VmHWM`), `None`
/// where `/proc` is unavailable.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Drain the sequential population stream — the single-threaded baseline
/// every `BENCH_gen.json` records alongside the parallel result.
pub fn run_sequential(models: &ModelSet, config: &GenConfig) -> u64 {
    PopulationStream::new(models, config).count() as u64
}

/// Drain the sharded parallel stream.
pub fn run_sharded(models: &ModelSet, config: &GenConfig, shards: usize) -> u64 {
    ShardedStream::with_shards(models, config, shards).count() as u64
}

/// Render the `BENCH_gen.json` payload. Hand-rolled with a stable key
/// order so diffs between recorded runs stay readable; the headline keys
/// (`events_per_sec`, `peak_rss_mb`, `wall_ms`) describe the parallel
/// sharded run, with the same-run single-threaded baseline nested beside
/// them.
pub fn bench_json(
    workload: &str,
    shards: usize,
    baseline: BenchPoint,
    sharded: BenchPoint,
) -> String {
    let rss = peak_rss_mb().unwrap_or(0.0);
    let speedup = if baseline.events_per_sec > 0.0 {
        sharded.events_per_sec / baseline.events_per_sec
    } else {
        0.0
    };
    format!(
        "{{\n  \"workload\": \"{workload}\",\n  \"events_per_sec\": {eps:.1},\n  \"peak_rss_mb\": {rss:.1},\n  \"wall_ms\": {wall:.1},\n  \"shards\": {shards},\n  \"events\": {events},\n  \"baseline_single_thread\": {{\n    \"events_per_sec\": {beps:.1},\n    \"wall_ms\": {bwall:.1},\n    \"events\": {bevents}\n  }},\n  \"speedup_vs_baseline\": {speedup:.2}\n}}\n",
        eps = sharded.events_per_sec,
        wall = sharded.wall_ms,
        events = sharded.events,
        beps = baseline.events_per_sec,
        bwall = baseline.wall_ms,
        bevents = baseline.events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_and_times() {
        let p = BenchPoint::measure(|| 42);
        assert_eq!(p.events, 42);
        assert!(p.wall_ms >= 0.0);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_mb().expect("VmHWM present on Linux");
            assert!(rss > 0.0);
        }
    }

    #[test]
    fn json_has_the_tracked_keys() {
        let b = BenchPoint {
            events: 10,
            wall_ms: 2.0,
            events_per_sec: 5_000.0,
        };
        let s = BenchPoint {
            events: 10,
            wall_ms: 1.0,
            events_per_sec: 10_000.0,
        };
        let json = bench_json("test", 4, b, s);
        for key in [
            "\"workload\"",
            "\"events_per_sec\"",
            "\"peak_rss_mb\"",
            "\"wall_ms\"",
            "\"shards\"",
            "\"baseline_single_thread\"",
            "\"speedup_vs_baseline\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"speedup_vs_baseline\": 2.00"));
    }
}
