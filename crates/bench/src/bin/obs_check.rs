//! CI cross-check of the two benchmark artifacts: the telemetry snapshot
//! `obs.json` (written by `gen_bench --metrics`) against the recorded
//! `BENCH_gen.json`.
//!
//! ```text
//! cargo run --release -p bench --bin obs_check -- obs.json BENCH_gen.json \
//!     [--recorder rec.jsonl] [--forensics forensics.json]
//! ```
//!
//! Exits non-zero unless all of:
//!
//! * `obs.json` parses back into a [`cn_obs::ObsSnapshot`] — the artifact
//!   a human downloads must actually be readable by the library that
//!   claims to have written it;
//! * `BENCH_gen.json` parses and carries a fixed `events` count and an
//!   `instrumented` point (the snapshot is meaningless without the run
//!   that produced it);
//! * the snapshot's event ledger is **accounted for**: either the summed
//!   per-shard `cn_gen_shard_events_total` and the consumer-side
//!   `cn_gen_merge_events_total` both equal `events` exactly, *or* the
//!   snapshot records the worker failure that explains the imbalance
//!   (`cn_gen_worker_exit{outcome="panicked"|"cancelled"}`). An imbalance
//!   with **no** recorded failure — a silently truncated run — is the one
//!   state that must never pass; so is a balanced ledger claiming worker
//!   failures (contradictory evidence). See
//!   [`bench::check_snapshot_accounted`].
//!
//! With `--recorder PATH` the flight-recorder JSONL stream must also
//! validate (every line parses as a frame, timestamps strictly increase,
//! counters are monotone, window rates are finite); with `--forensics
//! PATH` the crash dump must validate the same way plus carry a terminal
//! snapshot at least as advanced as its last frame. See
//! [`cn_obs::recorder::validate_jsonl`] and
//! [`cn_obs::recorder::validate_forensics`].
//!
//! `gen_bench` already enforces the ledger in-process; this binary proves
//! the property survives the trip through the filesystem and the JSON
//! codec — i.e. that the *artifact*, not just the in-memory registry, is
//! trustworthy evidence when a later gate failure sends someone back to
//! read it.

use bench::{check_snapshot_accounted, LedgerVerdict};
use cn_obs::ObsSnapshot;
use serde_json::JsonValue;

fn fail(msg: &str) -> ! {
    eprintln!("obs_check FAILED: {msg}");
    std::process::exit(1);
}

/// Look up `key` in a JSON object.
fn field<'v>(obj: &'v JsonValue, key: &str) -> Option<&'v JsonValue> {
    obj.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Interpret a JSON number as a non-negative integer.
fn as_count(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::UInt(n) => Some(*n),
        JsonValue::Int(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

fn main() {
    let mut positional = Vec::new();
    let mut recorder: Option<String> = None;
    let mut forensics: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--recorder" => {
                recorder = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--recorder needs a path")),
                )
            }
            "--forensics" => {
                forensics = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--forensics needs a path")),
                )
            }
            other if other.starts_with("--") => fail(&format!("unknown flag: {other}")),
            _ => positional.push(a),
        }
    }
    let mut positional = positional.into_iter();
    let obs_path = positional.next().unwrap_or_else(|| "obs.json".to_string());
    let bench_path = positional
        .next()
        .unwrap_or_else(|| "BENCH_gen.json".to_string());

    if let Some(path) = &recorder {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let n = cn_obs::recorder::validate_jsonl(&text)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        println!("obs_check ok: {path} carries {n} valid flight-recorder frames");
    }
    if let Some(path) = &forensics {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let n = cn_obs::recorder::validate_forensics(&text)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        println!("obs_check ok: {path} is a valid {n}-frame forensics dump");
    }

    let obs_text = std::fs::read_to_string(&obs_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {obs_path}: {e}")));
    let snapshot =
        ObsSnapshot::from_json(&obs_text).unwrap_or_else(|e| fail(&format!("{obs_path}: {e}")));

    let bench_text = std::fs::read_to_string(&bench_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {bench_path}: {e}")));
    let bench: JsonValue = serde_json::from_str(&bench_text)
        .unwrap_or_else(|e| fail(&format!("{bench_path}: invalid JSON: {e:?}")));

    let events = field(&bench, "events")
        .and_then(as_count)
        .unwrap_or_else(|| fail(&format!("{bench_path} has no integer \"events\" key")));
    let instrumented = field(&bench, "instrumented")
        .unwrap_or_else(|| fail(&format!("{bench_path} has no \"instrumented\" key")));
    let instrumented_shards = match instrumented {
        JsonValue::Null => fail(&format!(
            "{bench_path} records \"instrumented\": null — the snapshot \
             {obs_path} has no matching benchmark run"
        )),
        p => field(p, "shards")
            .and_then(as_count)
            .unwrap_or_else(|| fail(&format!("{bench_path}: instrumented point has no shards"))),
    };

    match check_snapshot_accounted(&snapshot, events) {
        Ok(LedgerVerdict::Balanced) => println!(
            "obs_check ok: {obs_path} parses ({} metrics), shard + merge counters both equal \
             the workload's {events} events (instrumented at {instrumented_shards} shards)",
            snapshot.metrics.len()
        ),
        Ok(LedgerVerdict::FailureContained {
            panicked,
            cancelled,
        }) => println!(
            "obs_check ok (failure contained): {obs_path} does not balance against the \
             workload's {events} events, but records why — {panicked} panicked / {cancelled} \
             cancelled worker exits. The run failed loudly; the ledger is honest."
        ),
        Err(e) => fail(&format!(
            "{obs_path} is not accounted for against {bench_path}: {e}"
        )),
    }
}
