//! The tracked generation benchmark: fixed 20K-UE × 12 h workload,
//! recorded to `BENCH_gen.json`.
//!
//! Not criterion-gated — a plain binary so CI (or a curious human) can
//! run it and diff the JSON against the previous PR's numbers:
//!
//! ```text
//! cargo run --release -p bench --bin gen_bench \
//!     [-- out.json] [--gate MIN] [--metrics obs.json] \
//!     [--introspect 127.0.0.1:9100] [--trace trace.json]
//! ```
//!
//! The protocol (see `bench::bench_json` for the format contract):
//!
//! * the workload is fixed (population, duration, seed, method), so
//!   `events` is identical run-to-run and across machines; only the
//!   timing columns move. It is sized so one repetition takes **≥ 500 ms**
//!   of wall time on commodity hardware — short runs measure scheduler
//!   noise, not the generator;
//! * every configuration runs `REPS` (= 5) repetitions; the recorded
//!   wall time is the **median**, with the min alongside as the noise
//!   floor;
//! * the single-threaded sequential stream is the baseline, then the
//!   sharded stream is measured at shards ∈ {1, N_cores} — both points
//!   are always recorded with per-point `speedup_vs_baseline`. On a
//!   single-core box ({1, 2} is measured instead, so the thread tax of
//!   forcing parallel machinery onto one core stays visible) the JSON is
//!   labeled `single_core: true` and the headline *is* the 1-shard
//!   point — it never masquerades as a parallel result.
//!
//! `--gate MIN` exits non-zero if the 1-shard speedup falls below `MIN`
//! (CI uses 0.95): with the adaptive inline path, `with_shards(.., 1)`
//! must cost essentially nothing over the sequential stream.
//!
//! `--metrics PATH` additionally measures the parallel shard count with a
//! live `cn-obs` registry attached and writes the final repetition's
//! [`cn_obs::ObsSnapshot`] to `PATH`. That run is recorded as the
//! `instrumented` point in the JSON — the telemetry overhead budget is a
//! tracked number, not a claim — and the snapshot's per-shard /
//! merge-side event ledger must balance exactly against the stream's
//! event count or the benchmark exits non-zero.
//!
//! The **population-scaling axis** runs the out-of-core exporter at
//! 20K → 200K → 2M UEs (window lengths shrunk to keep each point
//! CI-sized) under one fixed chunk size and spill budget, recording
//! `events_per_sec` and the point's own `peak_rss_mb` (watermark reset
//! between points) in the JSON's `scaling` array. `--rss-gate FACTOR`
//! exits non-zero if any point's peak RSS exceeds `FACTOR ×` the previous
//! point's — CI uses 2, so a 10× population increase costing more than 2×
//! the memory fails the build; that is the out-of-core contract. A 10M-UE
//! point exists behind `--deep-scale` for manual runs — it is I/O-heavy
//! and deliberately not part of CI.
//!
//! `--introspect ADDR` mounts the standalone introspection plane (the
//! same `/metrics`, `/status`, `/recorder` listener `cn-live` embeds)
//! over a bench-progress registry, so a long run can be watched from
//! `curl` or Prometheus while it executes. `--trace PATH` installs a
//! global trace sink and writes the run's stage spans (shard drains,
//! merge windows, out-of-core chunk/spill/merge) as Perfetto-loadable
//! Chrome trace-event JSON; traced runs do strictly more work, so never
//! compare their timings against untraced baselines.

use bench::{
    bench_json, check_snapshot_events, measure_reps, measure_scale_point, run_sequential,
    run_sharded, run_sharded_observed, ShardPoint,
};
use cn_fit::{fit, FitConfig, Method};
use cn_gen::{effective_parallelism, GenConfig, OutOfCoreConfig};
use cn_trace::{PopulationMix, Timestamp};
use cn_world::{generate_world, WorldConfig};

/// Repetitions per configuration; the headline is the median.
const REPS: usize = 5;
/// A repetition medianing below this is a warning: the workload no longer
/// outruns timing noise and should be re-sized upward.
const MIN_WALL_MS: f64 = 500.0;
/// The scaling axis's fixed exporter knobs: every point chunks the
/// population 16,384 UEs at a time under a 16 MiB spill budget, so
/// resident state is bounded by the chunk + budget regardless of how
/// large the population grows — which is exactly what the RSS gate
/// checks.
const SCALE_OCC: OutOfCoreConfig = OutOfCoreConfig {
    chunk_ues: 16_384,
    buffer_budget_bytes: 16 << 20,
    temp_dir: None,
};

/// A scaling population in the benchmark's fixed 62.5/25/12.5%
/// phone/car/tablet mix.
fn scale_mix(total: u32) -> PopulationMix {
    PopulationMix::new(total * 5 / 8, total / 4, total / 8)
}

fn main() {
    let mut out = "BENCH_gen.json".to_string();
    let mut gate: Option<f64> = None;
    let mut rss_gate: Option<f64> = None;
    let mut deep_scale = false;
    let mut metrics: Option<String> = None;
    let mut introspect: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--gate" {
            let v = args.next().expect("--gate needs a value");
            gate = Some(v.parse().expect("--gate value must be a number"));
        } else if a == "--rss-gate" {
            let v = args.next().expect("--rss-gate needs a value");
            rss_gate = Some(v.parse().expect("--rss-gate value must be a number"));
        } else if a == "--deep-scale" {
            deep_scale = true;
        } else if a == "--metrics" {
            metrics = Some(args.next().expect("--metrics needs a path"));
        } else if a == "--introspect" {
            introspect = Some(args.next().expect("--introspect needs an address"));
        } else if a == "--trace" {
            trace_out = Some(args.next().expect("--trace needs a path"));
        } else {
            out = a;
        }
    }

    // Standalone introspection plane: a progress registry scraped over
    // HTTP while the benchmark runs. Phase-granular (one update per
    // measured point, never inside a timed region), so mounting it
    // cannot move the numbers it reports on.
    let progress = cn_obs::Registry::new();
    let progress_phases = progress.counter("bench_phases_total");
    let progress_events = progress.counter("bench_events_total");
    let progress_wall = progress.histogram("bench_wall_ms");
    let _introspection = introspect.as_ref().map(|addr| {
        let recorder = cn_obs::FlightRecorder::start(&progress, cn_obs::RecorderConfig::default())
            .expect("start flight recorder");
        let srv = cn_obs::IntrospectionServer::bind(addr, &progress, Some(recorder))
            .expect("bind introspection address");
        eprintln!("introspection plane at http://{}/metrics", srv.local_addr());
        srv
    });
    // Collect stage spans (shard drains, merge windows, out-of-core
    // phases) across the run; written as Chrome trace-event JSON at the
    // end. Opt-in because the instrumented paths do strictly more work
    // with a sink installed — never combine with `--gate` numbers you
    // intend to compare against an untraced run.
    let trace_sink = cn_obs::TraceSink::new();
    if trace_out.is_some() {
        cn_obs::trace::install_global(&trace_sink);
    }

    // Fit once at modest scale; generation cost, not fitting cost, is what
    // this benchmark tracks.
    eprintln!("fitting models ...");
    let world = generate_world(&WorldConfig::new(PopulationMix::new(120, 50, 25), 2.0, 77));
    let models = fit(&world, &FitConfig::new(Method::Ours));

    // The fixed workload: 20,000 UEs (12500 phones / 5000 cars / 2500
    // tablets) over 12 hours starting at 06:00, seed 2023 — sized for
    // >= 500 ms per repetition.
    let config = GenConfig::new(
        PopulationMix::new(12_500, 5_000, 2_500),
        Timestamp::at_hour(0, 6),
        12.0,
        2023,
    );

    eprintln!("sequential baseline (1 thread, {REPS} reps) ...");
    let baseline = measure_reps(REPS, || run_sequential(&models, &config));
    eprintln!(
        "  {} events, median {:.0} ms / min {:.0} ms ({:.0} events/s)",
        baseline.events, baseline.wall_ms_median, baseline.wall_ms_min, baseline.events_per_sec
    );
    if baseline.wall_ms_median < MIN_WALL_MS {
        eprintln!(
            "  WARNING: median below {MIN_WALL_MS:.0} ms — workload too small to outrun noise; re-size it"
        );
    }
    progress_phases.inc();
    progress_events.add(baseline.events);
    progress_wall.record(baseline.wall_ms_median as u64);

    let cores = effective_parallelism();
    // Always measure two shard counts. On a single-core box the "parallel"
    // point is shards=2: it honestly documents the thread tax there.
    let shard_counts = if cores == 1 {
        vec![1, 2]
    } else {
        vec![1, cores]
    };
    let mut points = Vec::new();
    for &shards in &shard_counts {
        eprintln!("sharded stream ({shards} shards, {REPS} reps) ...");
        let stats = measure_reps(REPS, || run_sharded(&models, &config, shards));
        let p = ShardPoint::against(shards, stats, &baseline);
        eprintln!(
            "  {} events, median {:.0} ms / min {:.0} ms ({:.0} events/s, {:.3}x baseline)",
            stats.events,
            stats.wall_ms_median,
            stats.wall_ms_min,
            stats.events_per_sec,
            p.speedup_vs_baseline
        );
        progress_phases.inc();
        progress_events.add(stats.events);
        progress_wall.record(stats.wall_ms_median as u64);
        points.push(p);
    }

    // The instrumented run: the parallel shard count again, this time with
    // a live registry. Measured whenever `--metrics` is given so both the
    // overhead (the `instrumented` JSON point) and the snapshot are real
    // artifacts of this box, not estimates. A fresh registry per rep keeps
    // each snapshot a single-run ledger; the final rep's snapshot is kept.
    let parallel_shards = *shard_counts.last().expect("two shard counts measured");
    let mut instrumented = None;
    if let Some(metrics_path) = &metrics {
        eprintln!("instrumented stream ({parallel_shards} shards + cn-obs, {REPS} reps) ...");
        let mut snapshot = None;
        let stats = measure_reps(REPS, || {
            let registry = cn_obs::Registry::new();
            let events = run_sharded_observed(&models, &config, parallel_shards, &registry);
            snapshot = Some(registry.snapshot());
            events
        });
        let snapshot = snapshot.expect("at least one instrumented rep ran");
        let p = ShardPoint::against(parallel_shards, stats, &baseline);
        eprintln!(
            "  {} events, median {:.0} ms / min {:.0} ms ({:.0} events/s, {:.3}x baseline)",
            stats.events,
            stats.wall_ms_median,
            stats.wall_ms_min,
            stats.events_per_sec,
            p.speedup_vs_baseline
        );
        if let Err(e) = check_snapshot_events(&snapshot, stats.events) {
            eprintln!("METRICS LEDGER FAILED: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "  metrics ledger ok: per-shard and merge counters both equal {} events",
            stats.events
        );
        std::fs::write(metrics_path, snapshot.to_json()).expect("write metrics snapshot");
        eprintln!("wrote {metrics_path}");
        instrumented = Some(p);
    }

    // Snapshot the process high-water mark before the scaling axis starts
    // resetting it: the top-level peak_rss_mb key describes the 20K x 12h
    // workload above, not the last scaling point.
    let process_rss = bench::peak_rss_mb();

    // The population-scaling axis: ascending populations through the
    // out-of-core exporter, one run each, RSS watermark reset per point.
    // Window lengths shrink as the population grows so every point stays
    // CI-sized; RSS is a function of the chunk + budget, not the window,
    // so the shrink does not soften the gate.
    let mut scale_axis = vec![(20_000u32, 2.0f64), (200_000, 1.0), (2_000_000, 0.25)];
    if deep_scale {
        scale_axis.push((10_000_000, 0.1));
    }
    let mut scaling = Vec::new();
    for &(ues, hours) in &scale_axis {
        eprintln!("scaling point ({ues} UEs x {hours}h, out-of-core) ...");
        let config = GenConfig::new(scale_mix(ues), Timestamp::at_hour(0, 6), hours, 2023);
        let s = measure_scale_point(&models, &config, &SCALE_OCC);
        eprintln!(
            "  {} events in {:.0} ms ({:.0} events/s), peak RSS {:.1} MiB, {}/{} runs spilled",
            s.events, s.wall_ms, s.events_per_sec, s.peak_rss_mb, s.spilled_runs, s.runs
        );
        progress_phases.inc();
        progress_events.add(s.events);
        progress_wall.record(s.wall_ms as u64);
        scaling.push(s);
    }

    let json = bench_json(
        "20000 UEs x 12h, Method::Ours, seed 2023",
        cores,
        &baseline,
        &points,
        instrumented.as_ref(),
        &scaling,
        process_rss,
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");

    if let Some(path) = &trace_out {
        cn_obs::trace::clear_global();
        std::fs::write(path, trace_sink.to_chrome_json()).expect("write trace JSON");
        eprintln!("wrote {path} ({} stage spans)", trace_sink.len());
    }

    if let Some(min) = gate {
        let p1 = points
            .iter()
            .find(|p| p.shards == 1)
            .expect("bench_json already demanded the 1-shard point");
        if p1.speedup_vs_baseline < min {
            eprintln!(
                "GATE FAILED: shards=1 speedup {:.3} < {min} — the adaptive \
                 single-shard path is paying parallel overhead again",
                p1.speedup_vs_baseline
            );
            std::process::exit(1);
        }
        eprintln!(
            "gate ok: shards=1 speedup {:.3} >= {min}",
            p1.speedup_vs_baseline
        );
    }

    if let Some(factor) = rss_gate {
        for w in scaling.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.peak_rss_mb > 0.0 && b.peak_rss_mb > a.peak_rss_mb * factor {
                eprintln!(
                    "RSS GATE FAILED: {} UEs peaked at {:.1} MiB, more than {factor}x the \
                     {:.1} MiB peak at {} UEs — resident state is growing with the \
                     population; the out-of-core contract is broken",
                    b.ues, b.peak_rss_mb, a.peak_rss_mb, a.ues
                );
                std::process::exit(1);
            }
        }
        eprintln!(
            "rss gate ok: every scaling point within {factor}x of its predecessor ({})",
            scaling
                .iter()
                .map(|s| format!("{} UEs: {:.1} MiB", s.ues, s.peak_rss_mb))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
