//! The tracked generation benchmark: fixed 2K-UE × 6 h workload, recorded
//! to `BENCH_gen.json`.
//!
//! Not criterion-gated — a plain binary so CI (or a curious human) can
//! run it and diff the JSON against the previous PR's numbers:
//!
//! ```text
//! cargo run --release -p bench --bin gen_bench [-- out.json]
//! ```
//!
//! The workload is fixed (population, duration, seed, method), so
//! `events` is identical run-to-run and across machines; only the timing
//! columns move. The single-threaded sequential stream is measured first
//! and recorded in the same file as `baseline_single_thread`, then the
//! sharded parallel stream (one shard per core) produces the headline
//! `events_per_sec` / `wall_ms` / `peak_rss_mb`.

use bench::{bench_json, run_sequential, run_sharded, BenchPoint};
use cn_fit::{fit, FitConfig, Method};
use cn_gen::GenConfig;
use cn_trace::{PopulationMix, Timestamp};
use cn_world::{generate_world, WorldConfig};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gen.json".to_string());

    // Fit once at modest scale; generation cost, not fitting cost, is what
    // this benchmark tracks.
    eprintln!("fitting models ...");
    let world = generate_world(&WorldConfig::new(PopulationMix::new(120, 50, 25), 2.0, 77));
    let models = fit(&world, &FitConfig::new(Method::Ours));

    // The fixed workload: 2,000 UEs (1250 phones / 500 cars / 250
    // tablets) over 6 hours starting at 06:00, seed 2023.
    let config = GenConfig::new(
        PopulationMix::new(1250, 500, 250),
        Timestamp::at_hour(0, 6),
        6.0,
        2023,
    );

    eprintln!("sequential baseline (1 thread) ...");
    let baseline = BenchPoint::measure(|| run_sequential(&models, &config));
    eprintln!(
        "  {} events in {:.0} ms ({:.0} events/s)",
        baseline.events, baseline.wall_ms, baseline.events_per_sec
    );

    let shards = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    eprintln!("sharded stream ({shards} shards) ...");
    let sharded = BenchPoint::measure(|| run_sharded(&models, &config, shards));
    eprintln!(
        "  {} events in {:.0} ms ({:.0} events/s)",
        sharded.events, sharded.wall_ms, sharded.events_per_sec
    );

    // The parallel stream must be a drop-in: same workload, same events.
    assert_eq!(
        baseline.events, sharded.events,
        "sharded stream event count diverged from the sequential baseline"
    );

    let json = bench_json(
        "2000 UEs x 6h, Method::Ours, seed 2023",
        shards,
        baseline,
        sharded,
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out}");
}
