//! Generator robustness against degenerate and hostile model inputs.
//!
//! The generator must terminate and stay within its window no matter how
//! sparse or broken the fitted models are — silent cluster-hours, missing
//! transitions, empty personas, zero-probability corner cases.

use cn_cluster::ClusterId;
use cn_fit::{
    ClusterHourModel, DeviceModels, FirstEventModel, HourModels, Method, ModelSet, SemiMarkovModel,
};
use cn_gen::{generate, generate_ue, GenConfig, PopulationStream, ShardedStream};
use cn_statemachine::TopTransition;
use cn_stats::Ecdf;
use cn_trace::{DeviceType, EventType, PopulationMix, Timestamp, UeId};
use std::collections::HashMap;

fn empty_device(device: DeviceType) -> DeviceModels {
    DeviceModels {
        device,
        personas: vec![[ClusterId(0); 24]],
        hours: (0..24)
            .map(|_| HourModels {
                clusters: vec![ClusterHourModel::empty()],
            })
            .collect(),
    }
}

fn model_set(devices: Vec<DeviceModels>) -> ModelSet {
    ModelSet {
        method: Method::Ours,
        devices,
        n_days: 1,
    }
}

#[test]
fn all_empty_models_terminate_silently() {
    let set = model_set(vec![
        empty_device(DeviceType::Phone),
        empty_device(DeviceType::ConnectedCar),
        empty_device(DeviceType::Tablet),
    ]);
    let config = GenConfig::new(
        PopulationMix::new(10, 5, 5),
        Timestamp::at_hour(0, 0),
        48.0,
        1,
    );
    let trace = generate(&set, &config);
    assert!(trace.is_empty(), "{} events from empty models", trace.len());
}

#[test]
fn first_event_only_models_emit_exactly_the_bootstrap() {
    // A model with a first-event distribution but no transitions: each
    // generator emits its bootstrap event and then nothing.
    let mut device = empty_device(DeviceType::Phone);
    for hm in &mut device.hours {
        hm.clusters[0].first_event = FirstEventModel::fit(
            &[
                (EventType::ServiceRequest, 100.0),
                (EventType::ServiceRequest, 900.0),
            ],
            0,
        );
    }
    let set = model_set(vec![
        device,
        empty_device(DeviceType::ConnectedCar),
        empty_device(DeviceType::Tablet),
    ]);
    let trace = generate_ue(
        set.device(DeviceType::Phone),
        Method::Ours,
        UeId(0),
        Timestamp::at_hour(0, 3),
        Timestamp::at_hour(0, 5),
        7,
    );
    assert_eq!(trace.len(), 1, "{trace:?}");
    assert_eq!(trace.records()[0].event, EventType::ServiceRequest);
}

#[test]
fn top_only_models_oscillate_legally() {
    // Only CONNECTED↔IDLE transitions, no bottom machine, no exit info:
    // the generator must produce a legal SRV_REQ/S1_CONN_REL alternation.
    let mut device = empty_device(DeviceType::Phone);
    for hm in &mut device.hours {
        let c = &mut hm.clusters[0];
        c.first_event = FirstEventModel::fit(&[(EventType::ServiceRequest, 10.0)], 0);
        let mut samples: HashMap<TopTransition, Vec<f64>> = HashMap::new();
        samples.insert(TopTransition::ConnToIdle, vec![5.0, 8.0, 13.0]);
        samples.insert(TopTransition::IdleToConn, vec![30.0, 60.0, 90.0]);
        c.top = SemiMarkovModel::fit(&samples, cn_fit::DistributionKind::EmpiricalCdf);
    }
    let set = model_set(vec![
        device,
        empty_device(DeviceType::ConnectedCar),
        empty_device(DeviceType::Tablet),
    ]);
    let trace = generate_ue(
        set.device(DeviceType::Phone),
        Method::Ours,
        UeId(0),
        Timestamp::at_hour(0, 0),
        Timestamp::at_hour(0, 2),
        3,
    );
    assert!(trace.len() > 10, "only {} events", trace.len());
    // Strict alternation after the bootstrap.
    for w in trace.records().windows(2) {
        assert_ne!(w[0].event, w[1].event, "{w:?}");
    }
    let out = cn_statemachine::replay_ue(trace.records());
    assert!(out.is_conformant());
}

#[test]
fn degenerate_sojourns_do_not_livelock() {
    // All-zero sojourn samples: every transition fires "immediately", but
    // the millisecond bump keeps time moving and the window bounds work.
    let mut device = empty_device(DeviceType::Tablet);
    for hm in &mut device.hours {
        let c = &mut hm.clusters[0];
        c.first_event = FirstEventModel::fit(&[(EventType::ServiceRequest, 0.0)], 0);
        let mut samples: HashMap<TopTransition, Vec<f64>> = HashMap::new();
        samples.insert(TopTransition::ConnToIdle, vec![0.0]);
        samples.insert(TopTransition::IdleToConn, vec![0.0]);
        c.top = SemiMarkovModel::fit(&samples, cn_fit::DistributionKind::EmpiricalCdf);
    }
    let set = model_set(vec![
        empty_device(DeviceType::Phone),
        empty_device(DeviceType::ConnectedCar),
        device,
    ]);
    let trace = generate_ue(
        set.device(DeviceType::Tablet),
        Method::Ours,
        UeId(0),
        Timestamp::at_hour(0, 0),
        Timestamp::from_millis(2_000), // tiny window
        11,
    );
    // Terminates, bounded by the window (≤ 1 event per ms).
    assert!(trace.len() <= 2_000);
    assert!(!trace.is_empty());
    for r in trace.iter() {
        assert!(r.t.as_millis() < 2_000);
    }
}

#[test]
fn non_finite_and_negative_durations_yield_empty_traces() {
    // A model set that demonstrably generates for a sane window, so an
    // empty result below is attributable to the duration handling alone.
    let world = cn_world::generate_world(&cn_world::WorldConfig::new(
        PopulationMix::new(12, 5, 3),
        1.0,
        3,
    ));
    let set = cn_fit::fit(&world, &cn_fit::FitConfig::new(Method::Ours));
    let sane = GenConfig::new(
        PopulationMix::new(12, 5, 3),
        Timestamp::at_hour(0, 10),
        1.0,
        11,
    );
    assert!(!generate(&set, &sane).is_empty(), "sane window generates");

    // `duration_hours` is a public field, so hostile values can bypass the
    // constructor's saturation; every engine must produce an *empty* trace
    // (end == start), never garbage or a never-ending stream.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0] {
        let mut config = sane;
        config.duration_hours = bad;
        assert_eq!(config.end(), config.start, "duration {bad}");
        assert!(generate(&set, &config).is_empty(), "batch, duration {bad}");
        assert_eq!(
            PopulationStream::new(&set, &config).count(),
            0,
            "stream, duration {bad}"
        );
        assert_eq!(
            ShardedStream::with_shards(&set, &config, 2).count(),
            0,
            "sharded, duration {bad}"
        );
    }
}

#[test]
fn broken_ecdf_probabilities_stay_in_window() {
    // A first-event model whose offsets exceed the hour (hostile input
    // crafted via direct struct construction): events must still be
    // clamped into the generation window.
    let mut device = empty_device(DeviceType::Phone);
    for hm in &mut device.hours {
        hm.clusters[0].first_event = FirstEventModel {
            events: vec![(EventType::ServiceRequest, 1.0)],
            offset_secs: Some(Ecdf::new(vec![86_400.0]).unwrap()), // a day!
            active_prob: 1.0,
        };
    }
    let set = model_set(vec![
        device,
        empty_device(DeviceType::ConnectedCar),
        empty_device(DeviceType::Tablet),
    ]);
    let trace = generate_ue(
        set.device(DeviceType::Phone),
        Method::Ours,
        UeId(0),
        Timestamp::at_hour(0, 0),
        Timestamp::at_hour(0, 6),
        1,
    );
    // The absurd offset never lands inside any hour, so nothing is emitted
    // — but nothing panics or escapes the window either.
    for r in trace.iter() {
        assert!(r.t < Timestamp::at_hour(0, 6));
    }
}
