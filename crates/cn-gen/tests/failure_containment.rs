//! Tier-1 failure-containment suite: every injected worker fault must
//! surface as a typed [`StreamError`] — **never** as a silently truncated
//! trace — while the no-fault path stays byte-identical to the sequential
//! stream.
//!
//! Faults are injected deterministically via [`cn_gen::FaultPlan`]
//! (`panic shard s at record k`, `slow shard`) through
//! [`ShardedStream::with_shards_faulted`]; the corrupt-sink leg of the
//! harness (`cn_trace::io::FailingWriter`) is exercised in `cn-trace`.
//! See TESTING.md § "Reading a failed run" for how the worker-exit
//! telemetry these tests assert on is meant to be used.

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{FaultPlan, GenConfig, PopulationStream, ShardedStream, StreamError, WorkerOutcome};
use cn_obs::Registry;
use cn_trace::{PopulationMix, Timestamp, TraceRecord};
use cn_world::{generate_world, WorldConfig};
use std::time::Duration;

fn fitted() -> ModelSet {
    let trace = generate_world(&WorldConfig::new(PopulationMix::new(24, 10, 6), 2.0, 5));
    fit(&trace, &FitConfig::new(Method::Ours))
}

/// A workload whose shards each produce well over one channel block, so
/// mid-stream faults land *after* data has flowed.
fn big_config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(240, 100, 60),
        Timestamp::at_hour(0, 9),
        3.0,
        2023,
    )
}

/// A small workload for spawn-time faults and byte-identity checks.
fn small_config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(18, 8, 5),
        Timestamp::at_hour(0, 9),
        2.0,
        7,
    )
}

fn sequential(models: &ModelSet, config: &GenConfig) -> Vec<TraceRecord> {
    PopulationStream::new(models, config).collect()
}

/// Drain a stream through the fallible API, returning the records pulled
/// before the terminal result.
fn drain(stream: &mut ShardedStream<'_>) -> (Vec<TraceRecord>, Result<(), StreamError>) {
    let mut records = Vec::new();
    loop {
        match stream.try_next() {
            Ok(Some(rec)) => records.push(rec),
            Ok(None) => return (records, Ok(())),
            Err(e) => return (records, Err(e)),
        }
    }
}

#[test]
fn mid_stream_panic_becomes_typed_error_never_a_short_trace() {
    let models = fitted();
    let config = big_config();
    let expected = sequential(&models, &config);
    // Shard 1 of 2 must produce more than a full channel block, so the
    // fault fires after the consumer has already merged shipped data.
    assert!(
        expected.len() > 2 * 6000,
        "workload too small to place a post-block fault (got {} events)",
        expected.len()
    );
    let plan = FaultPlan::new().panic_shard_at(1, 5000);
    let mut stream =
        ShardedStream::with_shards_faulted(&models, &config, 2, &Registry::disabled(), &plan);
    let (prefix, result) = drain(&mut stream);
    let err = result.expect_err("an injected panic must surface as a StreamError");
    let StreamError::WorkerPanicked { shard, payload } = &err else {
        panic!("expected WorkerPanicked, got {err}");
    };
    assert_eq!(*shard, 1, "the error names the faulted shard");
    assert!(
        payload.contains("injected fault"),
        "payload kept: {payload}"
    );
    // Some records flowed (the fault was genuinely mid-stream), the
    // stream did NOT pose as complete, and everything emitted before the
    // failure is a verbatim prefix of the true sequence.
    assert!(!prefix.is_empty(), "fault should land after data flowed");
    assert!(prefix.len() < expected.len());
    assert_eq!(prefix[..], expected[..prefix.len()]);
    // Poisoned: the error repeats, and finish refuses to report success.
    assert_eq!(stream.try_next(), Err(err.clone()));
    assert_eq!(stream.error(), Some(&err));
    assert_eq!(stream.finish(), Err(err));
}

#[test]
fn spawn_time_panic_poisons_before_any_record() {
    let models = fitted();
    let config = small_config();
    for shard in 0..3 {
        let plan = FaultPlan::new().panic_shard_at(shard, 0);
        let mut stream =
            ShardedStream::with_shards_faulted(&models, &config, 3, &Registry::disabled(), &plan);
        let (prefix, result) = drain(&mut stream);
        assert!(
            prefix.is_empty(),
            "no record may precede a spawn-time fault"
        );
        let err = result.expect_err("spawn-time panic must be typed");
        let StreamError::WorkerPanicked { shard: s, .. } = &err else {
            panic!("expected WorkerPanicked, got {err}");
        };
        assert_eq!(*s, shard);
    }
}

#[test]
fn panic_in_an_unneeded_shard_still_fails_finish() {
    // The consumer stops early, so the merge never reaches the fault —
    // finish() must still refuse to report success: shard 2's worker
    // panicked at startup, before it could even be cancelled.
    let models = fitted();
    let config = small_config();
    let plan = FaultPlan::new().panic_shard_at(2, 0);
    let stream =
        ShardedStream::with_shards_faulted(&models, &config, 3, &Registry::disabled(), &plan);
    // Pull nothing; just wind down.
    let err = stream
        .finish()
        .expect_err("a panicked worker is an error even if its records were never pulled");
    let StreamError::WorkerPanicked { shard, .. } = &err else {
        panic!("expected WorkerPanicked, got {err}");
    };
    assert_eq!(*shard, 2);
}

#[test]
fn iterator_fuses_and_poisons_instead_of_ending_cleanly() {
    let models = fitted();
    let config = big_config();
    let expected = sequential(&models, &config);
    let plan = FaultPlan::new().panic_shard_at(0, 5000);
    let mut stream =
        ShardedStream::with_shards_faulted(&models, &config, 2, &Registry::disabled(), &plan);
    let collected: Vec<TraceRecord> = stream.by_ref().collect();
    // The iterator cannot return the error, but it must not pretend the
    // trace was complete either: it ends early AND leaves the typed
    // error readable (poisoned), fused at None.
    assert!(collected.len() < expected.len());
    assert_eq!(collected[..], expected[..collected.len()]);
    let err = stream
        .error()
        .expect("iterator end must leave the error readable");
    let StreamError::WorkerPanicked { shard, .. } = err else {
        panic!("expected WorkerPanicked, got {err}");
    };
    assert_eq!(*shard, 0);
    assert_eq!(stream.next(), None, "poisoned stream stays fused");
}

#[test]
fn no_fault_plan_is_byte_identical_to_sequential() {
    let models = fitted();
    let config = small_config();
    let expected = sequential(&models, &config);
    for shards in [2usize, 3, 8] {
        let mut stream = ShardedStream::with_shards_faulted(
            &models,
            &config,
            shards,
            &Registry::disabled(),
            &FaultPlan::new(),
        );
        let (records, result) = drain(&mut stream);
        result.expect("no fault injected");
        assert_eq!(records, expected, "{shards} shards diverged");
        let stats = stream.finish().expect("clean run");
        assert_eq!(stats.events, expected.len() as u64);
        assert!(stats
            .outcomes
            .iter()
            .all(|o| matches!(o, WorkerOutcome::Completed { .. })));
    }
}

#[test]
fn slow_shard_delays_but_never_corrupts_or_fails() {
    let models = fitted();
    let config = small_config();
    let expected = sequential(&models, &config);
    let plan = FaultPlan::new().slow_shard(0, Duration::from_millis(2));
    let mut stream =
        ShardedStream::with_shards_faulted(&models, &config, 3, &Registry::disabled(), &plan);
    let (records, result) = drain(&mut stream);
    result.expect("slowness is not a failure");
    assert_eq!(records, expected);
    let stats = stream.finish().expect("clean run");
    assert_eq!(stats.events, expected.len() as u64);
}

#[test]
fn abandoned_stream_with_blocked_worker_is_cancelled_not_panicked() {
    // Satellite: Drop under an abandoned mid-run stream whose workers are
    // blocked on full channels — must not deadlock, and the recorded
    // outcome must be `Cancelled`, not `Panicked`.
    let models = fitted();
    // A deliberately oversized workload: each shard must hold far more
    // records than its channel can ever buffer.
    let config = GenConfig::new(
        PopulationMix::new(480, 200, 120),
        Timestamp::at_hour(0, 9),
        24.0,
        2023,
    );
    let total = sequential(&models, &config).len();
    // Each of the 2 shards holds far more records than the channel can
    // buffer (1 block drained at spawn + CHANNEL_BLOCKS queued), so the
    // workers are guaranteed to be blocked, mid-run, when we abandon.
    assert!(
        total > 2 * 2 * (cn_gen::shard::CHANNEL_BLOCKS + 2) * cn_gen::shard::BLOCK_RECORDS,
        "workload too small to guarantee blocked workers (got {total} events)"
    );
    let registry = Registry::new();
    let mut stream = ShardedStream::with_shards_observed(&models, &config, 2, &registry);
    for _ in 0..10 {
        assert!(stream.next().is_some(), "workload starts with records");
    }
    drop(stream); // must return promptly: disconnect wakes blocked senders
    let snap = registry.snapshot();
    let outcome = |o: &str| {
        snap.get("cn_gen_worker_exit", &[("outcome", o)])
            .map(|m| match m.value {
                cn_obs::MetricValue::Counter { value } => value,
                _ => panic!("worker exit must be a counter"),
            })
    };
    assert_eq!(outcome("cancelled"), Some(2), "both workers were cancelled");
    assert_eq!(outcome("panicked"), None, "cancellation is not a panic");
    assert_eq!(outcome("completed"), None);
    assert_eq!(snap.counter_total("cn_gen_shard_panics_total"), None);
}

#[test]
fn panicked_run_records_failure_telemetry() {
    // The obs ledger cannot balance after a fault — instead it must say
    // *why*: one panicked exit, the panicking shard named.
    let models = fitted();
    let config = big_config();
    let plan = FaultPlan::new().panic_shard_at(1, 5000);
    let registry = Registry::new();
    let mut stream = ShardedStream::with_shards_faulted(&models, &config, 2, &registry, &plan);
    let (_, result) = drain(&mut stream);
    assert!(result.is_err());
    drop(stream);
    let snap = registry.snapshot();
    let panicked = snap
        .get("cn_gen_worker_exit", &[("outcome", "panicked")])
        .map(|m| m.value.clone());
    assert_eq!(panicked, Some(cn_obs::MetricValue::Counter { value: 1 }));
    assert_eq!(
        snap.get("cn_gen_shard_panics_total", &[("shard", "1")])
            .map(|m| m.value.clone()),
        Some(cn_obs::MetricValue::Counter { value: 1 }),
        "the panicking shard is named in the ledger"
    );
    // Exactly two workers exited, one way or another.
    let exits: u64 = ["completed", "panicked", "cancelled"]
        .iter()
        .filter_map(|o| snap.get("cn_gen_worker_exit", &[("outcome", o)]))
        .map(|m| match m.value {
            cn_obs::MetricValue::Counter { value } => value,
            _ => 0,
        })
        .sum();
    assert_eq!(exits, 2);
}
