//! Property-based tests: generated traffic is conformant and streaming is
//! exactly batch, for arbitrary seeds and window placements.

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{generate, generate_out_of_core, GenConfig, OutOfCoreConfig, PopulationStream};
use cn_statemachine::replay_ue;
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::OnceLock;

fn models(method: Method) -> &'static ModelSet {
    static OURS: OnceLock<ModelSet> = OnceLock::new();
    static BASE: OnceLock<ModelSet> = OnceLock::new();
    let build = |m: Method| {
        let world = generate_world(&WorldConfig::new(PopulationMix::new(35, 15, 10), 2.0, 91));
        fit(&world, &FitConfig::new(m))
    };
    match method {
        Method::Ours => OURS.get_or_init(|| build(Method::Ours)),
        _ => BASE.get_or_init(|| build(Method::Base)),
    }
}

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (1u32..20, 0u32..8, 0u32..6, 0u8..24, 1u8..6, 0u64..10_000).prop_map(
        |(p, c, t, hour, hours, seed)| {
            GenConfig::new(
                PopulationMix::new(p, c, t),
                Timestamp::at_hour(0, hour),
                f64::from(hours),
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-level output replays with zero violations for any window/seed.
    #[test]
    fn ours_is_always_conformant(config in arb_config()) {
        let trace = generate(models(Method::Ours), &config);
        for (_, events) in trace.per_ue().iter() {
            let out = replay_ue(events);
            prop_assert!(out.is_conformant(), "{:?}", out.violations.first());
        }
    }

    /// The streaming generator is the batch generator, event for event.
    #[test]
    fn stream_matches_batch(config in arb_config()) {
        let set = models(Method::Ours);
        let batch = generate(set, &config);
        let streamed: Trace = PopulationStream::new(set, &config).collect();
        prop_assert_eq!(batch, streamed);
    }

    /// Out-of-core export is byte-identical to the in-memory batch path
    /// for arbitrary chunk sizes and spill budgets — including budgets
    /// small enough to spill every run and chunk sizes down to one UE.
    /// Spilling changes *where* bytes wait, never what is written.
    #[test]
    fn spilled_export_is_byte_identical_to_in_memory(
        config in arb_config(),
        chunk_ues in 1u32..40,
        // 0 forces every run to disk; small budgets spill a subset; the
        // cap keeps everything resident.
        budget in prop_oneof![Just(0usize), 1usize..32_768, Just(usize::MAX)],
    ) {
        let set = models(Method::Ours);
        let expect = cn_trace::io::to_binary(&generate(set, &config));
        let occ = OutOfCoreConfig { chunk_ues, buffer_budget_bytes: budget, temp_dir: None };
        let (report, sink) =
            generate_out_of_core(set, &config, &occ, Cursor::new(Vec::new()))
                .expect("healthy sink and temp dir");
        prop_assert_eq!(sink.into_inner(), expect, "chunk {} budget {}", chunk_ues, budget);
        prop_assert_eq!(
            report.runs,
            (config.population.total() as usize).div_ceil(chunk_ues as usize)
        );
        if budget == usize::MAX {
            prop_assert_eq!(report.spilled_runs, 0);
        }
    }

    /// All events respect the window and the device layout, for both
    /// machine kinds.
    #[test]
    fn events_respect_window_and_layout(config in arb_config(), use_base in any::<bool>()) {
        let method = if use_base { Method::Base } else { Method::Ours };
        let trace = generate(models(method), &config);
        for r in trace.iter() {
            prop_assert!(r.t >= config.start && r.t < config.end());
            prop_assert_eq!(r.device, config.device_of(r.ue.get()));
        }
        // Per-UE strict time order.
        for (_, events) in trace.per_ue().iter() {
            prop_assert!(events.windows(2).all(|w| w[0].t < w[1].t));
        }
    }
}
