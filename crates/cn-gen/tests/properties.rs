//! Property-based tests: generated traffic is conformant and streaming is
//! exactly batch, for arbitrary seeds and window placements.

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::{generate, GenConfig, PopulationStream};
use cn_statemachine::replay_ue;
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn models(method: Method) -> &'static ModelSet {
    static OURS: OnceLock<ModelSet> = OnceLock::new();
    static BASE: OnceLock<ModelSet> = OnceLock::new();
    let build = |m: Method| {
        let world = generate_world(&WorldConfig::new(PopulationMix::new(35, 15, 10), 2.0, 91));
        fit(&world, &FitConfig::new(m))
    };
    match method {
        Method::Ours => OURS.get_or_init(|| build(Method::Ours)),
        _ => BASE.get_or_init(|| build(Method::Base)),
    }
}

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (1u32..20, 0u32..8, 0u32..6, 0u8..24, 1u8..6, 0u64..10_000).prop_map(
        |(p, c, t, hour, hours, seed)| {
            GenConfig::new(
                PopulationMix::new(p, c, t),
                Timestamp::at_hour(0, hour),
                f64::from(hours),
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-level output replays with zero violations for any window/seed.
    #[test]
    fn ours_is_always_conformant(config in arb_config()) {
        let trace = generate(models(Method::Ours), &config);
        for (_, events) in trace.per_ue().iter() {
            let out = replay_ue(events);
            prop_assert!(out.is_conformant(), "{:?}", out.violations.first());
        }
    }

    /// The streaming generator is the batch generator, event for event.
    #[test]
    fn stream_matches_batch(config in arb_config()) {
        let set = models(Method::Ours);
        let batch = generate(set, &config);
        let streamed: Trace = PopulationStream::new(set, &config).collect();
        prop_assert_eq!(batch, streamed);
    }

    /// All events respect the window and the device layout, for both
    /// machine kinds.
    #[test]
    fn events_respect_window_and_layout(config in arb_config(), use_base in any::<bool>()) {
        let method = if use_base { Method::Base } else { Method::Ours };
        let trace = generate(models(method), &config);
        for r in trace.iter() {
            prop_assert!(r.t >= config.start && r.t < config.end());
            prop_assert_eq!(r.device, config.device_of(r.ue.get()));
        }
        // Per-UE strict time order.
        for (_, events) in trace.per_ue().iter() {
            prop_assert!(events.windows(2).all(|w| w[0].t < w[1].t));
        }
    }
}
