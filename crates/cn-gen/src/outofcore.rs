//! Out-of-core generation: population-scale binary export under a
//! bounded memory budget.
//!
//! [`PopulationStream`](crate::PopulationStream) keeps one live generator
//! per UE, so its resident set grows linearly with the population — at
//! 10M UEs that is gigabytes of iterator state before the first record is
//! written. [`generate_out_of_core`] bounds both sides:
//!
//! 1. **Chunked generation** — the population is split into contiguous
//!    UE-range chunks of [`OutOfCoreConfig::chunk_ues`]. Each chunk runs
//!    a [`UePool`] (only `chunk_ues` generators resident at a time) and
//!    drains it into one time-sorted *run*, arena-encoded straight into
//!    the on-disk 14-byte record format via
//!    [`EncodedBlock`](cn_trace::EncodedBlock) — records are encoded
//!    exactly once, at generation.
//! 2. **Budgeted spill** — runs buffer in memory until the *total*
//!    buffered bytes would exceed
//!    [`OutOfCoreConfig::buffer_budget_bytes`]; a run growing past the
//!    budget moves to an anonymous temp file (created then immediately
//!    unlinked, so a crash leaks nothing) and keeps appending there.
//!    Peak RSS is therefore O(budget + chunk state + read windows),
//!    independent of trace length.
//! 3. **Zero-copy k-way merge** — the runs merge through a compact
//!    [`KeyLoserTree`] over packed `(t_ms, ue)` keys. When a run wins,
//!    every buffered record preceding the runner-up's key (found by
//!    galloping over the encoded bytes,
//!    [`encoded_prefix`](cn_trace::block::encoded_prefix)) is written to
//!    the sink **verbatim** with
//!    [`BinaryStreamWriter::write_encoded`] — no per-record decode or
//!    re-encode anywhere between generation and disk.
//!
//! ### Byte identity
//!
//! Record order is a strict total order and every UE lives in exactly one
//! chunk, so cross-run key comparisons never tie (see
//! [`TraceRecord::merge_key`](cn_trace::TraceRecord::merge_key)): the
//! merged byte stream is *the* unique sorted trace, identical to
//! [`cn_trace::io::to_binary`] of [`crate::generate`]'s output for the
//! same [`GenConfig`] — at every chunk size and every spill budget,
//! including a zero budget that spills every run. The `cn-verify` golden
//! gate pins this.
//!
//! ### Failure containment
//!
//! Spill and export I/O failures surface as typed
//! [`StreamError::Io`] values carrying the failing stage — the same
//! contract the sharded pipeline established for worker panics. The sink
//! is driven through [`BinaryStreamWriter`], so an export that errors out
//! leaves the zero-count placeholder header: the partial file *fails*
//! [`cn_trace::io::from_binary`] loudly and is salvageable only via the
//! explicit [`cn_trace::io::recover_binary`] path. A truncated spill file
//! (torn write, full disk) is caught by exact-length reads during the
//! merge and becomes a `spill-read` error, never a silently shortened
//! trace.

use crate::engine::GenConfig;
use crate::pool::UePool;
use crate::shard::StreamError;
use cn_fit::ModelSet;
use cn_trace::block::{encoded_prefix, record_key_at, RECORD_BYTES};
use cn_trace::io::BinaryStreamWriter;
use cn_trace::{EncodedBlock, KeyLoserTree, EXHAUSTED_KEY};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Records per arena block while draining a chunk (~56 KiB of encoded
/// bytes: large enough to amortize the append, small enough to stay
/// cache-resident while filling).
const CHUNK_BLOCK_RECORDS: usize = 4096;

/// Bytes per read window when merging a spilled run back in (a whole
/// number of records, ~112 KiB).
const SPILL_READ_BYTES: usize = RECORD_BYTES * 8192;

/// Tuning knobs for [`generate_out_of_core`].
#[derive(Debug, Clone)]
pub struct OutOfCoreConfig {
    /// UEs resident per generation chunk (clamped to ≥ 1). Each chunk
    /// holds `chunk_ues` generator states plus the pool's key/pending
    /// arrays; one sorted run is produced per chunk.
    pub chunk_ues: u32,
    /// Total bytes of run data allowed to stay buffered in memory across
    /// all runs. A run whose growth would exceed the budget spills to an
    /// unlinked temp file. `0` forces every run to disk.
    pub buffer_budget_bytes: usize,
    /// Directory for spill files (`None` = [`std::env::temp_dir`]).
    pub temp_dir: Option<PathBuf>,
}

impl Default for OutOfCoreConfig {
    fn default() -> OutOfCoreConfig {
        OutOfCoreConfig {
            chunk_ues: 65_536,
            buffer_budget_bytes: 64 << 20,
            temp_dir: None,
        }
    }
}

/// What a completed out-of-core export did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfCoreReport {
    /// Records written to the sink.
    pub events: u64,
    /// Sorted runs generated (one per UE chunk).
    pub runs: usize,
    /// Runs that exceeded the memory budget and spilled to temp files.
    pub spilled_runs: usize,
    /// Total bytes written to the sink (header + records).
    pub bytes_written: u64,
}

/// Typed-error helper: stringify an underlying failure under its stage.
fn io_err(stage: &'static str, e: impl std::fmt::Display) -> StreamError {
    StreamError::Io {
        stage,
        message: e.to_string(),
    }
}

/// Monotonic disambiguator for spill-file names within this process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Create an anonymous spill file in `dir`: created exclusively, then
/// immediately unlinked so the kernel reclaims it when the handle drops —
/// a crash mid-export leaks no on-disk state.
fn create_spill_file(occ: &OutOfCoreConfig) -> Result<File, StreamError> {
    // Spills are cold (one per run that exceeds the budget, each
    // involving file I/O), so resolving the global sink here is fine.
    let _spill_span = cn_obs::trace::global_span("cn_gen_ooc_spill");
    let dir = occ.temp_dir.clone().unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "cn-gen-spill-{}-{}.run",
        std::process::id(),
        SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .map_err(|e| io_err("spill-create", format!("{}: {e}", path.display())))?;
    // Unlink eagerly; the open handle keeps the data alive.
    let _ = std::fs::remove_file(&path);
    Ok(file)
}

/// One chunk's sorted run: encoded record bytes, in memory until the
/// global budget forces them to disk.
struct RunStore {
    data: RunData,
    len_bytes: u64,
}

enum RunData {
    Mem(Vec<u8>),
    Spilled(File),
}

impl RunStore {
    fn new() -> RunStore {
        RunStore {
            data: RunData::Mem(Vec::new()),
            len_bytes: 0,
        }
    }

    /// Append encoded record bytes, spilling this run to a temp file when
    /// the *global* in-memory total (`buffered`) would exceed the budget.
    fn append(
        &mut self,
        bytes: &[u8],
        buffered: &mut usize,
        occ: &OutOfCoreConfig,
    ) -> Result<(), StreamError> {
        match &mut self.data {
            RunData::Mem(buf) => {
                if *buffered + bytes.len() > occ.buffer_budget_bytes {
                    let mut file = create_spill_file(occ)?;
                    file.write_all(buf).map_err(|e| io_err("spill-write", e))?;
                    file.write_all(bytes)
                        .map_err(|e| io_err("spill-write", e))?;
                    *buffered -= buf.len();
                    self.data = RunData::Spilled(file);
                } else {
                    buf.extend_from_slice(bytes);
                    *buffered += bytes.len();
                }
            }
            RunData::Spilled(file) => {
                file.write_all(bytes)
                    .map_err(|e| io_err("spill-write", e))?;
            }
        }
        self.len_bytes += bytes.len() as u64;
        Ok(())
    }

    fn is_spilled(&self) -> bool {
        matches!(self.data, RunData::Spilled(_))
    }
}

/// Merge-side view of one run: a window of undelivered encoded bytes,
/// refilled from the spill file in [`SPILL_READ_BYTES`] slabs (memory
/// runs are a single window).
struct RunReader {
    src: RunSrc,
}

enum RunSrc {
    Mem {
        buf: Vec<u8>,
        pos: usize,
    },
    File {
        file: File,
        buf: Vec<u8>,
        pos: usize,
        /// Bytes of the run not yet loaded into `buf`.
        left: u64,
    },
}

impl RunReader {
    fn new(store: RunStore) -> Result<RunReader, StreamError> {
        match store.data {
            RunData::Mem(buf) => Ok(RunReader {
                src: RunSrc::Mem { buf, pos: 0 },
            }),
            RunData::Spilled(mut file) => {
                file.seek(SeekFrom::Start(0))
                    .map_err(|e| io_err("spill-read", e))?;
                let mut reader = RunReader {
                    src: RunSrc::File {
                        file,
                        buf: Vec::new(),
                        pos: 0,
                        left: store.len_bytes,
                    },
                };
                reader.refill()?;
                Ok(reader)
            }
        }
    }

    /// The undelivered bytes currently in memory (whole records).
    fn window(&self) -> &[u8] {
        match &self.src {
            RunSrc::Mem { buf, pos } | RunSrc::File { buf, pos, .. } => &buf[*pos..],
        }
    }

    fn consume(&mut self, n: usize) {
        match &mut self.src {
            RunSrc::Mem { pos, .. } | RunSrc::File { pos, .. } => *pos += n,
        }
    }

    /// Merge key of the run's next record ([`EXHAUSTED_KEY`] when the
    /// current window is empty — callers refill before trusting that as
    /// end-of-run for spilled sources).
    fn head_key(&self) -> u128 {
        let w = self.window();
        if w.is_empty() {
            EXHAUSTED_KEY
        } else {
            record_key_at(w, 0)
        }
    }

    /// Load the next slab of a spilled run; `Ok(false)` when the run has
    /// no bytes left (always, for memory runs, whose single window is the
    /// whole buffer). A spill file shorter than the run's recorded length
    /// — a torn or truncated file — fails the exact-length read and
    /// surfaces as a typed `spill-read` error.
    fn refill(&mut self) -> Result<bool, StreamError> {
        match &mut self.src {
            RunSrc::Mem { .. } => Ok(false),
            RunSrc::File {
                file,
                buf,
                pos,
                left,
            } => {
                if *left == 0 {
                    return Ok(false);
                }
                let take = (*left).min(SPILL_READ_BYTES as u64) as usize;
                buf.resize(take, 0);
                *pos = 0;
                file.read_exact(buf).map_err(|e| {
                    io_err(
                        "spill-read",
                        format!("torn spill file ({take} byte read): {e}"),
                    )
                })?;
                *left -= take as u64;
                Ok(true)
            }
        }
    }
}

/// Generate `config`'s population straight into a binary-format sink
/// under the memory bounds of `occ` (see module docs), returning the
/// export report and the sink.
///
/// The produced bytes are identical to
/// `cn_trace::io::to_binary(&crate::generate(models, config))` for every
/// `occ` — chunking and spilling change *where* bytes wait, never what is
/// written. On error the sink is left with its zero-count placeholder
/// header (finish-or-recover contract: the partial export cannot pose as
/// a complete trace).
pub fn generate_out_of_core<W: Write + Seek>(
    models: &ModelSet,
    config: &GenConfig,
    occ: &OutOfCoreConfig,
    sink: W,
) -> Result<(OutOfCoreReport, W), StreamError> {
    let mut writer = BinaryStreamWriter::new(sink).map_err(|e| io_err("export-header", e))?;
    // One sink resolution for the whole export; everything below runs
    // on this thread, so chunk/spill/merge spans nest under this one.
    let trace = cn_obs::trace::global();
    let _export_span = trace.is_enabled().then(|| trace.span("cn_gen_ooc_export"));

    // Phase 1: one sorted, arena-encoded run per UE-range chunk.
    let total = config.population.total();
    let chunk = occ.chunk_ues.max(1);
    let mut runs: Vec<RunStore> = Vec::new();
    let mut buffered = 0usize;
    let mut lo = 0u32;
    while lo < total {
        let hi = lo.saturating_add(chunk).min(total);
        let chunk_span = trace
            .is_enabled()
            .then(|| trace.span(&format!("cn_gen_ooc_chunk:{lo}-{hi}")));
        let mut pool = UePool::new(models, config, lo..hi);
        let mut store = RunStore::new();
        let mut block = EncodedBlock::with_capacity(CHUNK_BLOCK_RECORDS);
        while let Some(rec) = pool.next_record() {
            block.push(&rec);
            if block.len() == CHUNK_BLOCK_RECORDS {
                store.append(block.as_bytes(), &mut buffered, occ)?;
                block.clear();
            }
        }
        if !block.is_empty() {
            store.append(block.as_bytes(), &mut buffered, occ)?;
        }
        runs.push(store);
        drop(chunk_span);
        lo = hi;
    }
    let run_count = runs.len();
    let spilled_runs = runs.iter().filter(|r| r.is_spilled()).count();

    // Phase 2: zero-copy k-way merge over the encoded runs.
    let _merge_span = trace.is_enabled().then(|| trace.span("cn_gen_ooc_merge"));
    let mut readers = runs
        .into_iter()
        .map(RunReader::new)
        .collect::<Result<Vec<_>, _>>()?;
    let mut tree = KeyLoserTree::new(readers.iter().map(RunReader::head_key).collect());
    while let Some(w) = tree.winner() {
        let (bound, wins_ties) = match tree.runner_up() {
            None => (EXHAUSTED_KEY, true),
            Some(u) => (tree.key(u), w < u),
        };
        loop {
            let window = readers[w].window();
            let run_bytes = encoded_prefix(window, bound, wins_ties) * RECORD_BYTES;
            let drained_whole_window = run_bytes == window.len();
            writer
                .write_encoded(&window[..run_bytes])
                .map_err(|e| io_err("export-write", e))?;
            readers[w].consume(run_bytes);
            // The run may continue past the buffered window; keep
            // draining until the bound is reached inside a window or the
            // run has no more bytes.
            if !drained_whole_window || !readers[w].refill()? {
                break;
            }
        }
        tree.replace_winner(readers[w].head_key());
    }

    let events = writer.written();
    let sink = writer.finish().map_err(|e| io_err("export-finish", e))?;
    Ok((
        OutOfCoreReport {
            events,
            runs: run_count,
            spilled_runs,
            bytes_written: 16 + events * RECORD_BYTES as u64,
        },
        sink,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::io::{from_binary, to_binary, FailingWriter};
    use cn_trace::{PopulationMix, Timestamp};
    use cn_world::{generate_world, WorldConfig};
    use std::io::Cursor;

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(24, 10, 6), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(18, 8, 5),
            Timestamp::at_hour(0, 9),
            2.0,
            7,
        )
    }

    fn occ(chunk_ues: u32, budget: usize) -> OutOfCoreConfig {
        OutOfCoreConfig {
            chunk_ues,
            buffer_budget_bytes: budget,
            temp_dir: None,
        }
    }

    #[test]
    fn matches_batch_to_binary_across_chunks_and_budgets() {
        let models = fitted();
        let config = config();
        let batch = generate(&models, &config);
        let expect = to_binary(&batch);
        // A chunk whose UEs are all silent yields an empty run that never
        // appends — and so never spills, whatever the budget.
        let nonempty_runs = |chunk: u32| {
            (0..config.population.total())
                .step_by(chunk as usize)
                .filter(|&lo| {
                    batch
                        .iter()
                        .any(|r| (lo..lo.saturating_add(chunk)).contains(&r.ue.get()))
                })
                .count()
        };
        // (chunk size, budget): single chunk, fine chunks; all-memory,
        // forced-spill (0), and a budget small enough to spill some runs
        // but not all.
        for (chunk, budget) in [
            (1_000, usize::MAX),
            (1_000, 0),
            (7, usize::MAX),
            (7, 0),
            (7, 4 * 1024),
            (1, 0),
            (5, 64),
        ] {
            let (report, cursor) = generate_out_of_core(
                &models,
                &config,
                &occ(chunk, budget),
                Cursor::new(Vec::new()),
            )
            .unwrap_or_else(|e| panic!("chunk {chunk} budget {budget}: {e}"));
            let bytes = cursor.into_inner();
            assert_eq!(
                bytes, expect,
                "chunk {chunk} budget {budget}: bytes diverged"
            );
            assert_eq!(report.events as usize, (bytes.len() - 16) / RECORD_BYTES);
            assert_eq!(report.bytes_written, bytes.len() as u64);
            let expected_runs = (config.population.total() as usize).div_ceil(chunk as usize);
            assert_eq!(report.runs, expected_runs);
            if budget == 0 {
                assert_eq!(
                    report.spilled_runs,
                    nonempty_runs(chunk),
                    "zero budget spills every non-empty run"
                );
            } else if budget == usize::MAX {
                assert_eq!(report.spilled_runs, 0, "unbounded budget spills none");
            }
        }
    }

    #[test]
    fn empty_population_exports_an_empty_trace() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        let (report, cursor) = generate_out_of_core(
            &models,
            &config,
            &OutOfCoreConfig::default(),
            Cursor::new(Vec::new()),
        )
        .unwrap();
        assert_eq!(report.events, 0);
        assert_eq!(report.runs, 0);
        assert_eq!(from_binary(&cursor.into_inner()).unwrap().len(), 0);
    }

    #[test]
    fn failing_sink_is_a_typed_error_and_never_a_complete_trace() {
        let models = fitted();
        let config = config();
        // Enough budget for the header plus a few records: the export
        // write must fail mid-merge.
        let mut backing = Cursor::new(Vec::new());
        let sink = FailingWriter::new(&mut backing, 16 + 10 * RECORD_BYTES);
        let err = match generate_out_of_core(&models, &config, &occ(7, usize::MAX), sink) {
            Err(e) => e,
            Ok((report, _)) => panic!("sink budget exhausted, yet export wrote {report:?}"),
        };
        assert!(
            matches!(err, StreamError::Io { stage, .. } if stage.starts_with("export")),
            "{err}"
        );
        // Finish never ran: the zero-count placeholder makes the partial
        // file fail from_binary (finish-or-recover contract).
        let bytes = backing.into_inner();
        assert!(!bytes.is_empty(), "header reached the sink");
        assert!(
            from_binary(&bytes).is_err(),
            "partial export must not parse"
        );
    }

    #[test]
    fn unwritable_temp_dir_is_a_typed_spill_create_error() {
        let models = fitted();
        let config = config();
        let mut bad = occ(7, 0); // zero budget: first append must spill
        bad.temp_dir = Some(PathBuf::from("/nonexistent-cn-gen-spill-dir"));
        let err = generate_out_of_core(&models, &config, &bad, Cursor::new(Vec::new()))
            .expect_err("spill dir does not exist");
        assert!(
            matches!(
                err,
                StreamError::Io {
                    stage: "spill-create",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn torn_spill_file_is_a_typed_spill_read_error() {
        // A spill file shorter than the run's recorded length (torn
        // trailing write, ENOSPC, external truncation) must fail the
        // merge with a typed error — never emit a shortened trace.
        let mut store = RunStore::new();
        let mut buffered = 0usize;
        let cfg = occ(1, 0); // zero budget: append goes straight to disk
        let mut block = EncodedBlock::new();
        for t in 0..10u64 {
            block.push(&cn_trace::TraceRecord::new(
                Timestamp::from_millis(t),
                cn_trace::UeId(0),
                cn_trace::DeviceType::Phone,
                cn_trace::EventType::Attach,
            ));
        }
        store.append(block.as_bytes(), &mut buffered, &cfg).unwrap();
        assert!(store.is_spilled());
        // Tear the file: claim the full length but truncate the bytes.
        if let RunData::Spilled(file) = &store.data {
            file.set_len(store.len_bytes - 7).unwrap();
        }
        // The exact-length read hits the tear either on the eager first
        // window (small runs) or on a later refill.
        let err = match RunReader::new(store) {
            Err(e) => e,
            Ok(mut reader) => loop {
                let w = reader.window().len();
                reader.consume(w);
                match reader.refill() {
                    Ok(true) => continue,
                    Ok(false) => panic!("torn file read as clean exhaustion"),
                    Err(e) => break e,
                }
            },
        };
        assert!(
            matches!(
                err,
                StreamError::Io {
                    stage: "spill-read",
                    ..
                }
            ),
            "{err}"
        );
    }
}
