//! Struct-of-arrays UE pool: the compact merge hot path.
//!
//! [`PopulationStream`](crate::PopulationStream) originally merged its
//! per-UE generators through a `LoserTree<TraceRecord>` — a
//! `Vec<Option<TraceRecord>>` of fat heads compared through the full
//! record `Ord` on every tournament replay. Profiling the 20K-UE × 12h
//! benchmark workload showed that merge layer costing ~3–4× the pure
//! generation work, and the cost is *structural*: every emitted event
//! replays ⌈log₂k⌉ matches whose memory accesses form a serial
//! dependency chain — ~15 dependent cache reads per record at 20K UEs,
//! whatever the node encoding.
//!
//! [`UePool`] therefore splits the state into parallel arrays
//! (struct-of-arrays) and replaces the tournament with a **calendar
//! queue** bucketed by event time:
//!
//! * `pending: Vec<TraceRecord>` — the next record per UE slot, read
//!   exactly once per emission;
//! * `iters: Vec<UeEventIter>` — the per-UE generator state, touched
//!   only when the winning UE must be advanced;
//! * [`CalendarQueue`] — packed `u64` keys (`t_rel_ms << 24 | slot`)
//!   bucketed into coarse time slices sized for ~16 pending events each.
//!   The bucket currently draining is a tiny binary min-heap (usually a
//!   handful of keys, L1-resident), so emitting a record costs O(log
//!   *bucket*) ≈ 4 compares on dense memory plus one push into a future
//!   bucket — instead of ⌈log₂k⌉ dependent misses.
//!
//! The key order embeds the record order exactly: per-UE timestamps
//! strictly increase, every UE lives in exactly one slot, and slots are
//! assigned in ascending UE order, so `(t_rel, slot)` sorts identically
//! to the global `(t, ue)` record order (event type never breaks a tie —
//! `(t, ue)` is already unique). The pool's output is byte-identical to
//! the fat-tree merge; the `cn-verify` golden gate holds at pin parity.
//!
//! The same pool drives the sequential stream, each shard worker of the
//! parallel stream (over a strided index set), and each UE-range chunk
//! of the out-of-core generator ([`crate::outofcore`]).

use crate::engine::GenConfig;
use crate::per_ue::UeEventIter;
use cn_fit::ModelSet;
use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};

/// Filler for `pending` slots whose UE produced no events; never emitted
/// (exhausted slots have no key in the queue).
const VACANT: TraceRecord = TraceRecord {
    t: Timestamp(0),
    ue: UeId(0),
    device: DeviceType::Phone,
    event: EventType::Attach,
};

/// Bits of a packed key reserved for the UE slot index.
const IDX_BITS: u32 = 24;
/// Maximum UEs per pool (16.7M); larger populations go through the
/// chunked out-of-core path.
const MAX_POOL: usize = 1 << IDX_BITS;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
/// Bucket-count ceiling: past this the bucket width widens instead.
const MAX_BUCKETS: u64 = 1 << 22;
/// Events-per-UE-hour guess used only to size buckets (perf, not
/// correctness: any bucket width yields the same output order).
const EST_EVENTS_PER_UE_HOUR: u64 = 16;
/// Target pending keys per bucket.
const TARGET_PER_BUCKET: u64 = 16;

/// A monotone priority queue over packed `(t_rel_ms << 24 | slot)` keys:
/// coarse time buckets, each drained through a small binary min-heap.
///
/// Monotone means pops come out in ascending key order and every insert
/// is `>=` the last popped key — exactly the discipline of a k-way merge
/// of per-UE streams with strictly increasing timestamps. Inserts into
/// the bucket currently draining go straight into its heap; later
/// buckets are plain unsorted `Vec` pushes, heapified on first drain.
struct CalendarQueue {
    /// log₂ of the bucket width in ms.
    shift: u32,
    /// Future keys, bucketed by `t_rel >> shift` (index clamped to the
    /// last bucket).
    buckets: Vec<Vec<u64>>,
    /// Min-heap over the keys of the bucket currently draining.
    active: Vec<u64>,
    /// Index of the draining bucket (`usize::MAX` before the first pop).
    open: usize,
    /// Total queued keys (active + all buckets).
    len: usize,
}

impl CalendarQueue {
    /// Queue for keys with `t_rel` in `[0, horizon_ms)`, sized so that
    /// `est_events` spread over the horizon land ~[`TARGET_PER_BUCKET`]
    /// keys per bucket.
    fn new(horizon_ms: u64, est_events: u64) -> CalendarQueue {
        let width = (horizon_ms / (est_events / TARGET_PER_BUCKET).max(1)).max(1);
        let mut shift = width.ilog2();
        while (horizon_ms >> shift) + 2 > MAX_BUCKETS {
            shift += 1;
        }
        let nbuckets = ((horizon_ms >> shift) + 2) as usize;
        CalendarQueue {
            shift,
            buckets: vec![Vec::new(); nbuckets],
            active: Vec::new(),
            open: usize::MAX,
            len: 0,
        }
    }

    /// Which bucket a key belongs to.
    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (((key >> IDX_BITS) >> self.shift) as usize).min(self.buckets.len() - 1)
    }

    #[inline]
    fn insert(&mut self, key: u64) {
        self.len += 1;
        let b = self.bucket_of(key);
        // A monotone insert can only target the draining bucket or a
        // later one; `open` is MAX before the first pop, so priming
        // inserts always take the bucket branch.
        if b == self.open {
            heap_push(&mut self.active, key);
        } else {
            self.buckets[b].push(key);
        }
    }

    /// Current minimum without removing it, opening the next non-empty
    /// bucket if the draining one is exhausted.
    #[inline]
    fn peek(&mut self) -> Option<u64> {
        while self.active.is_empty() {
            if self.len == 0 {
                return None;
            }
            let mut b = self.open.wrapping_add(1);
            while self.buckets[b].is_empty() {
                b += 1;
            }
            self.active = std::mem::take(&mut self.buckets[b]);
            make_heap(&mut self.active);
            self.open = b;
        }
        Some(self.active[0])
    }

    /// Replace the current minimum (which the caller has peeked and
    /// consumed) with `key`, which must compare `>=` it. When `key` lands
    /// in the draining bucket — the common case for short inter-event
    /// gaps — this is a single root sift instead of a pop-sift plus a
    /// push-sift. Equivalent to `pop` then `insert`.
    #[inline]
    fn replace_top(&mut self, key: u64) {
        debug_assert!(!self.active.is_empty(), "replace_top follows peek");
        let b = self.bucket_of(key);
        if b == self.open {
            self.active[0] = key;
            sift_down(&mut self.active, 0);
        } else {
            self.buckets[b].push(key);
            heap_pop(&mut self.active);
        }
    }

    /// Drop the current minimum (peeked, consumed, and its UE exhausted).
    #[inline]
    fn pop_discard(&mut self) {
        debug_assert!(!self.active.is_empty(), "pop_discard follows peek");
        heap_pop(&mut self.active);
        self.len -= 1;
    }

    /// Full pop (open-next-bucket included). The production drain goes
    /// through [`Self::peek`] + [`Self::replace_top`] / [`Self::pop_discard`];
    /// this is the reference discipline the queue's ordering test drains
    /// through.
    #[cfg(test)]
    fn pop(&mut self) -> Option<u64> {
        loop {
            if let Some(k) = heap_pop(&mut self.active) {
                self.len -= 1;
                return Some(k);
            }
            if self.len == 0 {
                return None;
            }
            // Open the next non-empty bucket. `len > 0` with an empty
            // active heap guarantees one exists past `open`.
            let mut b = self.open.wrapping_add(1);
            while self.buckets[b].is_empty() {
                b += 1;
            }
            self.active = std::mem::take(&mut self.buckets[b]);
            make_heap(&mut self.active);
            self.open = b;
        }
    }
}

#[inline]
fn heap_push(h: &mut Vec<u64>, key: u64) {
    h.push(key);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[parent] <= h[i] {
            break;
        }
        h.swap(parent, i);
        i = parent;
    }
}

#[inline]
fn heap_pop(h: &mut Vec<u64>) -> Option<u64> {
    let last = h.len().checked_sub(1)?;
    h.swap(0, last);
    let top = h.pop();
    sift_down(h, 0);
    top
}

fn make_heap(h: &mut [u64]) {
    for i in (0..h.len() / 2).rev() {
        sift_down(h, i);
    }
}

#[inline]
fn sift_down(h: &mut [u64], mut i: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= h.len() {
            return;
        }
        let r = l + 1;
        let c = if r < h.len() && h[r] < h[l] { r } else { l };
        if h[i] <= h[c] {
            return;
        }
        h.swap(i, c);
        i = c;
    }
}

/// Records generated ahead per UE while its iterator state is cache-hot.
///
/// Each UE owns an independent RNG, so advancing one UE several events
/// past the merge frontier never changes any draw order — the buffered
/// records are exactly what the iterator would produce on demand, and
/// the queue still holds one key (the next *unemitted* event) per live
/// UE, so global emission order is untouched. What changes is the cost:
/// the iterator's scattered state is touched once per `LOOKAHEAD`
/// emissions instead of once per emission.
const LOOKAHEAD: usize = 8;

/// A population of per-UE generators merged through the calendar-queue
/// struct-of-arrays hot path (see module docs).
pub struct UePool<'m> {
    iters: Vec<UeEventIter<'m>>,
    /// Per-UE lookahead buffers of generated-but-unemitted records.
    bufs: Vec<[TraceRecord; LOOKAHEAD]>,
    /// Next buffer index to emit, per UE.
    pos: Vec<u8>,
    /// Valid records in the buffer, per UE.
    fill: Vec<u8>,
    queue: CalendarQueue,
    /// `config.start` in ms — keys carry start-relative times.
    base_ms: u64,
}

impl<'m> UePool<'m> {
    /// Build a pool over the UEs named by `indices`, with the same seeds,
    /// device assignment, and semantics as [`crate::generate`] — so any
    /// partition of the population into pools merges back byte-identically.
    ///
    /// `indices` must be strictly increasing (every natural partition —
    /// ranges, strides — is), so slot order embeds UE order, and must
    /// name at most 2²⁴ UEs per pool; larger populations are chunked by
    /// [`crate::outofcore`].
    pub fn new(
        models: &'m ModelSet,
        config: &GenConfig,
        indices: impl Iterator<Item = u32>,
    ) -> UePool<'m> {
        let end = config.end();
        let base_ms = config.start.as_millis();
        let horizon_ms = end.as_millis().saturating_sub(base_ms).max(1);
        let (lo, hi) = indices.size_hint();
        let cap = hi.unwrap_or(lo);
        let mut iters = Vec::with_capacity(cap);
        let mut bufs = Vec::with_capacity(cap);
        let mut pos = Vec::with_capacity(cap);
        let mut fill = Vec::with_capacity(cap);
        let mut primed: Vec<u64> = Vec::with_capacity(cap);
        let mut last_index = None;
        for index in indices {
            assert!(
                last_index.is_none_or(|last| index > last),
                "pool indices must be strictly increasing (got {index} after {last_index:?})"
            );
            last_index = Some(index);
            let device = config.device_of(index);
            let mut it = UeEventIter::with_semantics(
                models.device(device),
                models.method,
                UeId(index),
                config.start,
                end,
                crate::engine::ue_stream_seed(config.seed, index),
                config.semantics,
            );
            let slot = iters.len();
            let mut buf = [VACANT; LOOKAHEAD];
            let mut k = 0usize;
            while k < LOOKAHEAD {
                match it.next() {
                    Some(r) => {
                        buf[k] = r;
                        k += 1;
                    }
                    None => break,
                }
            }
            if k > 0 {
                primed.push(pack_key(buf[0].t.as_millis() - base_ms, slot));
            }
            bufs.push(buf);
            pos.push(0u8);
            fill.push(k as u8);
            iters.push(it);
        }
        assert!(
            iters.len() <= MAX_POOL,
            "a UePool holds at most {MAX_POOL} UEs; chunk larger populations \
             through the out-of-core path"
        );
        let est = (iters.len() as u64)
            .saturating_mul(horizon_ms.div_ceil(3_600_000))
            .saturating_mul(EST_EVENTS_PER_UE_HOUR);
        let mut queue = CalendarQueue::new(horizon_ms, est.max(1));
        for key in primed {
            queue.insert(key);
        }
        UePool {
            iters,
            bufs,
            pos,
            fill,
            queue,
            base_ms,
        }
    }

    /// Emit the globally next record, advancing its UE's generator.
    #[inline]
    pub fn next_record(&mut self) -> Option<TraceRecord> {
        let key = self.queue.peek()?;
        let slot = (key & IDX_MASK) as usize;
        let p = self.pos[slot] as usize;
        let rec = self.bufs[slot][p];
        if p + 1 < self.fill[slot] as usize {
            // Serve the next emission from the lookahead buffer.
            self.pos[slot] = (p + 1) as u8;
            let nt = self.bufs[slot][p + 1].t.as_millis();
            self.queue.replace_top(pack_key(nt - self.base_ms, slot));
        } else {
            // Buffer drained: refill while the iterator state is hot.
            let buf = &mut self.bufs[slot];
            let it = &mut self.iters[slot];
            let mut k = 0usize;
            while k < LOOKAHEAD {
                match it.next() {
                    Some(r) => {
                        buf[k] = r;
                        k += 1;
                    }
                    None => break,
                }
            }
            self.pos[slot] = 0;
            self.fill[slot] = k as u8;
            if k > 0 {
                let nt = buf[0].t.as_millis();
                self.queue.replace_top(pack_key(nt - self.base_ms, slot));
            } else {
                self.queue.pop_discard();
            }
        }
        Some(rec)
    }

    /// Number of UEs that still have events pending.
    pub fn live(&self) -> usize {
        self.queue.len
    }
}

/// Pack a start-relative event time and a pool slot into one orderable
/// key. `t_rel` gets 40 bits (~34 years of ms); slots get [`IDX_BITS`].
#[inline]
fn pack_key(t_rel: u64, slot: usize) -> u64 {
    debug_assert!(t_rel < 1 << (64 - IDX_BITS), "event time out of key range");
    (t_rel << IDX_BITS) | slot as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(30, 14, 8), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    #[test]
    fn partitioned_pools_cover_the_full_population() {
        // Merging two disjoint pools by hand must equal one pool over all
        // UEs — the invariant the shard workers and out-of-core chunks
        // both rely on.
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(14, 6, 4),
            Timestamp::at_hour(0, 11),
            2.0,
            99,
        );
        let total = config.population.total();
        let mut whole = Vec::new();
        let mut pool = UePool::new(&models, &config, 0..total);
        while let Some(r) = pool.next_record() {
            whole.push(r);
        }
        assert_eq!(pool.live(), 0);

        let mut halves = Vec::new();
        for range in [0..total / 2, total / 2..total] {
            let mut p = UePool::new(&models, &config, range);
            while let Some(r) = p.next_record() {
                halves.push(r);
            }
        }
        halves.sort();
        assert_eq!(whole, halves);
        assert!(whole.len() > 50, "only {} events", whole.len());
    }

    #[test]
    fn empty_pool_yields_nothing() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        let mut pool = UePool::new(&models, &config, std::iter::empty());
        assert_eq!(pool.next_record(), None);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_indices_are_rejected() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(4, 2, 1),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        UePool::new(&models, &config, [1u32, 0].into_iter());
    }

    /// The calendar queue is a plain monotone priority queue under the
    /// hood; hammer it with a synthetic merge-shaped workload (every
    /// insert >= the last pop) across bucket geometries.
    #[test]
    fn calendar_queue_pops_in_sorted_order() {
        // Deterministic pseudo-random keys via splitmix-style mixing.
        let mut x = 0x9E37_79B9u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for (horizon, est) in [(1_000, 10), (100_000, 1_000), (3_600_000, 10)] {
            let mut q = CalendarQueue::new(horizon, est);
            let mut keys: Vec<u64> = (0..500u64)
                .map(|i| pack_key(next() % horizon, (i % 64) as usize))
                .collect();
            for &k in &keys {
                q.insert(k);
            }
            // Pop half, interleaving monotone re-inserts.
            let mut out = Vec::new();
            for _ in 0..250 {
                let k = q.pop().unwrap();
                let t_rel = k >> IDX_BITS;
                if t_rel + 10 < horizon {
                    let nk = pack_key(t_rel + 1 + next() % 9, (next() % 64) as usize);
                    q.insert(nk);
                    keys.push(nk);
                }
                out.push(k);
            }
            while let Some(k) = q.pop() {
                out.push(k);
            }
            assert_eq!(q.len, 0);
            keys.sort_unstable();
            // `out` is `keys` minus the 250 popped-and-not-reinserted…
            // actually every key inserted is eventually popped exactly
            // once, so the multisets match.
            let mut sorted_out = out.clone();
            sorted_out.sort_unstable();
            assert_eq!(sorted_out, keys, "horizon {horizon} est {est}");
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "pop order not sorted");
        }
    }
}
