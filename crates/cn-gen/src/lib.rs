//! Control-plane trace synthesis (§7 of the paper).
//!
//! To synthesize a trace for `K` UEs starting at hour `H`, the engine runs
//! `K` independent per-UE generators. Each generator:
//!
//! 1. samples a **persona** — a modeled UE's per-hour cluster trajectory —
//!    so generators are distributed over clusters exactly like the modeled
//!    population;
//! 2. bootstraps from the **first-event model** of its cluster at hour `H`
//!    (trying successive hours while the model says the UE is silent);
//! 3. then drives the per-hour state machine with **two concurrent
//!    timers**: the top-level (EMM–ECM) timer and the second-level timer.
//!    Whenever the top level transitions, the bottom level drops its
//!    pending event, resets its timer, and restarts in the sub-machine of
//!    the new top state — exactly the paper's §7 semantics. For the
//!    EMM–ECM baseline methods the second level is replaced by overlaid
//!    `HO`/`TAU` inter-arrival processes, which is what makes those
//!    methods emit handovers in ECM-IDLE (the artifact Tables 4/11
//!    quantify).
//!
//! Sojourn times are sampled from the model of the hour in which the state
//! was entered; a state with no observed departures in that hour retries
//! with each subsequent hour's model. Per-UE event times are strictly
//! increasing; UE streams are merged into one sorted population trace.
//!
//! Three synthesis surfaces share those per-UE generators and produce
//! byte-identical traces for the same [`GenConfig`]:
//!
//! * [`generate`] — materialize the whole trace (parallel batch);
//! * [`PopulationStream`] — sequential bounded-memory streaming via a
//!   calendar-queue k-way merge over packed integer keys;
//! * [`ShardedStream`] — multi-core streaming: disjoint UE shards on
//!   worker threads, bounded block channels, and a block-draining S-way
//!   merge. Execution is *adaptive*: at one effective shard (including
//!   every single-core box) it runs the sequential merge inline, spawning
//!   no threads, so the sharded API is never slower than
//!   [`PopulationStream`].
//! * [`generate_out_of_core`] — population-scale binary export under a
//!   bounded memory budget: UE-range chunks emit arena-encoded sorted
//!   runs that spill to temp files past the budget and k-way merge back
//!   into the sink as verbatim byte blocks (see [`outofcore`]).
//!
//! All "0 = all cores" knobs resolve through [`effective_parallelism`].
//!
//! The sharded pipeline is **failure-contained**: a panicked worker
//! surfaces as a typed [`StreamError`] through the fallible
//! [`ShardedStream::try_next`] / [`ShardedStream::finish`] API — never as
//! a silently truncated trace (see `shard` module docs, *Failure
//! semantics*, and the deterministic [`fault`] injection harness the
//! tier-1 suite drives it with).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod outofcore;
pub mod per_ue;
pub mod pool;
pub mod shard;
pub mod stream;

pub use engine::{effective_parallelism, generate, GenConfig, HourSemantics};
pub use fault::FaultPlan;
pub use outofcore::{generate_out_of_core, OutOfCoreConfig, OutOfCoreReport};
pub use per_ue::{generate_ue, UeEventIter};
pub use pool::UePool;
pub use shard::{ShardedStream, StreamError, StreamStats, WorkerOutcome};
pub use stream::PopulationStream;
