//! Deterministic fault injection for the sharded pipeline — **test
//! support only**.
//!
//! The failure-containment contract of [`crate::ShardedStream`] ("every
//! worker failure becomes a typed [`crate::StreamError`], never a silently
//! short trace") is only worth anything if it is *exercised*: a panic path
//! nobody can trigger on demand is a panic path nobody has ever seen work.
//! [`FaultPlan`] makes worker failures reproducible:
//!
//! * **panic shard *s* at record *k*** — the worker raises a panic after
//!   producing exactly `k` records, at any point of its run: before its
//!   first block ships (the consumer learns at spawn), mid-stream (the
//!   consumer learns at a block boundary), or after other shards finished;
//! * **slow shard** — the worker sleeps before shipping each block,
//!   letting tests hold a worker *blocked on a full channel* while the
//!   consumer abandons the stream (the cancellation path).
//!
//! Faults are threaded into the worker loop through the [`FaultHook`]
//! trait, monomorphized per worker: the production pipeline instantiates
//! the zero-sized [`NoFault`], whose empty `#[inline]` callbacks compile
//! to nothing — the unfaulted hot path carries **no** per-record branch
//! for this machinery. Only [`crate::ShardedStream::with_shards_faulted`]
//! (used by the tier-1 failure-containment suite) instantiates a live
//! [`ShardFault`].
//!
//! The third leg of the harness — a sink that fails after *n* bytes, for
//! proving writer errors propagate as typed I/O errors — lives with the
//! writers it tests: `cn_trace::io::FailingWriter`.

use std::time::Duration;

/// Per-record / per-block callbacks a shard worker drives. Production
/// code uses [`NoFault`]; tests inject a [`ShardFault`] derived from a
/// [`FaultPlan`].
pub trait FaultHook: Send + 'static {
    /// Called once per generated record, *before* it is appended to the
    /// outgoing block. May panic — that is the point.
    fn on_record(&mut self);

    /// Called once per block, *before* it is shipped to the consumer.
    fn on_block(&mut self);
}

/// The production hook: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl FaultHook for NoFault {
    #[inline(always)]
    fn on_record(&mut self) {}

    #[inline(always)]
    fn on_block(&mut self) {}
}

/// A deterministic set of faults to inject into a sharded run.
///
/// Built with the builder methods, handed to
/// [`crate::ShardedStream::with_shards_faulted`]; each worker receives
/// only its own shard's slice of the plan. An empty plan behaves exactly
/// like the unfaulted constructors (modulo monomorphization).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(shard, k)`: shard panics after producing exactly `k` records.
    panics: Vec<(usize, u64)>,
    /// `(shard, delay)`: shard sleeps `delay` before shipping each block.
    delays: Vec<(usize, Duration)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.delays.is_empty()
    }

    /// Panic `shard`'s worker after it has produced exactly `k` records
    /// (so `k == 0` panics before the first record). The panic payload
    /// names the shard and record, and surfaces verbatim in
    /// `StreamError::WorkerPanicked`.
    pub fn panic_shard_at(mut self, shard: usize, k: u64) -> FaultPlan {
        self.panics.push((shard, k));
        self
    }

    /// Make `shard`'s worker sleep `delay` before shipping each block —
    /// enough to keep it alive (or blocked on a full channel) while a
    /// test abandons or out-paces the stream.
    pub fn slow_shard(mut self, shard: usize, delay: Duration) -> FaultPlan {
        self.delays.push((shard, delay));
        self
    }

    /// The hook for one worker: this shard's faults, extracted from the
    /// plan.
    pub fn for_shard(&self, shard: usize) -> ShardFault {
        ShardFault {
            shard,
            panic_at: self
                .panics
                .iter()
                .filter(|(s, _)| *s == shard)
                .map(|&(_, k)| k)
                .min(),
            delay: self
                .delays
                .iter()
                .find(|(s, _)| *s == shard)
                .map(|&(_, d)| d),
            produced: 0,
        }
    }
}

/// One worker's live faults (see [`FaultPlan::for_shard`]).
#[derive(Debug, Clone)]
pub struct ShardFault {
    shard: usize,
    panic_at: Option<u64>,
    delay: Option<Duration>,
    produced: u64,
}

impl FaultHook for ShardFault {
    fn on_record(&mut self) {
        if Some(self.produced) == self.panic_at {
            panic!(
                "injected fault: shard {} panicked at record {}",
                self.shard, self.produced
            );
        }
        self.produced += 1;
    }

    fn on_block(&mut self) {
        if let Some(delay) = self.delay {
            std::thread::sleep(delay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_slices_per_shard() {
        let plan = FaultPlan::new()
            .panic_shard_at(1, 5)
            .panic_shard_at(1, 3)
            .slow_shard(2, Duration::from_millis(1));
        assert!(!plan.is_empty());
        // The earliest panic wins when a shard has several.
        assert_eq!(plan.for_shard(1).panic_at, Some(3));
        assert_eq!(plan.for_shard(0).panic_at, None);
        assert_eq!(plan.for_shard(2).delay, Some(Duration::from_millis(1)));
        assert_eq!(plan.for_shard(2).panic_at, None);
    }

    #[test]
    fn shard_fault_panics_at_exactly_k() {
        let mut hook = FaultPlan::new().panic_shard_at(0, 2).for_shard(0);
        hook.on_record();
        hook.on_record();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook.on_record()));
        let payload = err.expect_err("third record must panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("shard 0"), "{msg}");
        assert!(msg.contains("record 2"), "{msg}");
    }

    #[test]
    fn no_fault_is_inert() {
        let mut hook = NoFault;
        for _ in 0..10 {
            hook.on_record();
            hook.on_block();
        }
    }
}
