//! Parallel sharded population streaming.
//!
//! [`ShardedStream`] is the multi-core counterpart of
//! [`crate::stream::PopulationStream`]: the population is partitioned into
//! `S` disjoint UE shards (striped — UE `i` belongs to shard `i mod S` —
//! so the device-type mix, and with it the per-UE event rate, balances
//! across workers). Each shard runs on its own worker thread, merging its
//! live [`UeEventIter`]s with a [`LoserTree`] into a time-sorted run that
//! is shipped to the consumer as fixed-size record blocks over a bounded
//! SPSC channel. The consumer performs the final S-way merge — again a
//! loser tree, replace-top only — over the shard runs.
//!
//! ### Determinism
//!
//! The output is **byte-identical** to the sequential stream and to the
//! batch engine, for any shard count:
//!
//! * every UE's stream is a pure function of `(seed, ue)` — the shard a UE
//!   lands on does not touch its RNG;
//! * record order is a strict total order (time, then UE, then event; a
//!   UE's own events have strictly increasing timestamps), so the globally
//!   sorted sequence is unique — *any* correct merge tree yields it;
//! * each shard run is a sorted subsequence of that global sequence, and
//!   the consumer-side merge restores it exactly.
//!
//! ### Backpressure & memory
//!
//! Workers block once their channel holds [`CHANNEL_BLOCKS`] undelivered
//! blocks, so a slow consumer (e.g. a disk writer) bounds the pipeline at
//! `S × CHANNEL_BLOCKS × BLOCK_RECORDS` buffered records plus the
//! O(population) generator states — independent of trace length.
//!
//! Deadlock freedom holds because every shard has a *dedicated* worker:
//! the consumer only ever blocks on the one channel whose run it needs
//! next, and that channel's producer never waits on anything but the same
//! channel's free space.

use crate::engine::{ue_stream_seed, GenConfig};
use crate::per_ue::UeEventIter;
use cn_fit::ModelSet;
use cn_trace::{LoserTree, TraceRecord, UeId};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records per channel block (~64 KiB of `TraceRecord`s: large enough to
/// amortize channel synchronization, small enough to keep the pipeline
/// responsive).
pub const BLOCK_RECORDS: usize = 4096;

/// Blocks buffered per shard channel before its worker blocks.
pub const CHANNEL_BLOCKS: usize = 4;

/// One shard's endpoint on the consumer side: the receive handle plus a
/// cursor over the block currently being drained.
struct ShardCursor {
    rx: Receiver<Vec<TraceRecord>>,
    block: Vec<TraceRecord>,
    pos: usize,
}

impl ShardCursor {
    /// Next record of this shard's run, blocking on the channel when the
    /// current block is exhausted; `None` once the worker has finished and
    /// every block is drained.
    fn next_record(&mut self) -> Option<TraceRecord> {
        loop {
            if let Some(&rec) = self.block.get(self.pos) {
                self.pos += 1;
                return Some(rec);
            }
            match self.rx.recv() {
                Ok(block) => {
                    self.block = block;
                    self.pos = 0;
                }
                Err(_) => return None,
            }
        }
    }
}

/// A globally time-ordered population event stream produced by parallel
/// shard workers (see module docs).
///
/// ```no_run
/// use cn_gen::{GenConfig, ShardedStream};
/// # let models: cn_fit::ModelSet = unimplemented!();
/// # let config: GenConfig = unimplemented!();
/// for record in ShardedStream::new(&models, &config) {
///     // identical records, identical order, S cores at work
///     let _ = record;
/// }
/// ```
pub struct ShardedStream {
    shards: Vec<ShardCursor>,
    tree: LoserTree<TraceRecord>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedStream {
    /// Stream `config`'s population with one shard per configured thread
    /// (`config.threads`, `0` = all cores). Clones the model set once so
    /// worker threads can outlive the caller's borrow.
    pub fn new(models: &ModelSet, config: &GenConfig) -> ShardedStream {
        let shards = if config.threads == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
        } else {
            config.threads
        };
        Self::with_shards(models, config, shards)
    }

    /// As [`ShardedStream::new`] with an explicit shard count.
    pub fn with_shards(models: &ModelSet, config: &GenConfig, shards: usize) -> ShardedStream {
        Self::with_arc(Arc::new(models.clone()), config, shards)
    }

    /// As [`ShardedStream::with_shards`] without the model clone, for
    /// callers that already hold the model set in an [`Arc`].
    pub fn with_arc(models: Arc<ModelSet>, config: &GenConfig, shards: usize) -> ShardedStream {
        let config = *config;
        let shards = shards.clamp(1, (config.population.total() as usize).max(1));
        let mut cursors = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel(CHANNEL_BLOCKS);
            let models = Arc::clone(&models);
            let handle = std::thread::Builder::new()
                .name(format!("cn-gen-shard-{shard}"))
                .spawn(move || shard_worker(&models, &config, shard, shards, &tx))
                .expect("spawn shard worker");
            workers.push(handle);
            cursors.push(ShardCursor {
                rx,
                block: Vec::new(),
                pos: 0,
            });
        }
        let heads: Vec<Option<TraceRecord>> =
            cursors.iter_mut().map(ShardCursor::next_record).collect();
        ShardedStream {
            shards: cursors,
            tree: LoserTree::new(heads),
            workers,
        }
    }

    /// Number of shards that still have records pending.
    pub fn live_shards(&self) -> usize {
        self.tree.live()
    }
}

impl Iterator for ShardedStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let w = self.tree.winner()?;
        let next = self.shards[w].next_record();
        self.tree.pop_and_replace(next)
    }
}

impl Drop for ShardedStream {
    fn drop(&mut self) {
        // Dropping the receivers fails any blocked worker send, so workers
        // wind down promptly even when the stream is abandoned mid-run.
        self.shards.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: merge this shard's UE streams into a sorted run and ship
/// it as blocks. Returning early on a failed send is the cancellation
/// path (the consumer hung up).
fn shard_worker(
    models: &ModelSet,
    config: &GenConfig,
    shard: usize,
    shards: usize,
    tx: &SyncSender<Vec<TraceRecord>>,
) {
    let end = config.end();
    let total = config.population.total();
    let mut generators: Vec<UeEventIter<'_>> = (shard as u32..total)
        .step_by(shards)
        .map(|index| {
            let device = config.device_of(index);
            UeEventIter::with_semantics(
                models.device(device),
                models.method,
                UeId(index),
                config.start,
                end,
                ue_stream_seed(config.seed, index),
                config.semantics,
            )
        })
        .collect();
    let heads: Vec<Option<TraceRecord>> = generators.iter_mut().map(Iterator::next).collect();
    let mut tree = LoserTree::new(heads);
    let mut block = Vec::with_capacity(BLOCK_RECORDS);
    while let Some(w) = tree.winner() {
        let next = generators[w].next();
        let rec = tree.pop_and_replace(next).expect("winner has a head");
        block.push(rec);
        if block.len() == BLOCK_RECORDS {
            let full = std::mem::replace(&mut block, Vec::with_capacity(BLOCK_RECORDS));
            if tx.send(full).is_err() {
                return;
            }
        }
    }
    if !block.is_empty() {
        let _ = tx.send(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::PopulationStream;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Timestamp, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(24, 10, 6), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(18, 8, 5),
            Timestamp::at_hour(0, 9),
            2.0,
            7,
        )
    }

    #[test]
    fn sharded_equals_sequential_for_any_shard_count() {
        let models = fitted();
        let config = config();
        let sequential: Trace = PopulationStream::new(&models, &config).collect();
        for shards in [1usize, 2, 5, 31, 64] {
            let sharded: Trace = ShardedStream::with_shards(&models, &config, shards).collect();
            assert_eq!(sharded, sequential, "{shards} shards diverged");
        }
    }

    #[test]
    fn shard_count_exceeding_population_is_clamped() {
        let models = fitted();
        let config = config();
        // 31 UEs, 64 requested shards: must still stream every record.
        let stream = ShardedStream::with_shards(&models, &config, 64);
        let n = stream.count();
        let expected = PopulationStream::new(&models, &config).count();
        assert_eq!(n, expected);
    }

    #[test]
    fn empty_population_streams_nothing() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        assert_eq!(ShardedStream::with_shards(&models, &config, 4).count(), 0);
    }

    #[test]
    fn abandoning_the_stream_mid_run_terminates_workers() {
        let models = fitted();
        let mut config = config();
        config.duration_hours = 6.0;
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        for _ in 0..10 {
            if stream.next().is_none() {
                break;
            }
        }
        drop(stream); // must not hang: Drop disconnects and joins workers
    }

    #[test]
    fn live_shards_drains_to_zero() {
        let models = fitted();
        let config = config();
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        assert!(stream.live_shards() <= 3);
        for _ in stream.by_ref() {}
        assert_eq!(stream.live_shards(), 0);
    }
}
