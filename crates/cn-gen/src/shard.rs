//! Parallel sharded population streaming with adaptive execution.
//!
//! [`ShardedStream`] is the multi-core counterpart of
//! [`crate::stream::PopulationStream`]: the population is partitioned into
//! `S` disjoint UE shards (striped — UE `i` belongs to shard `i mod S` —
//! so the device-type mix, and with it the per-UE event rate, balances
//! across workers). Each shard runs on its own worker thread, merging its
//! live per-UE generators through a compact struct-of-arrays [`UePool`]
//! (see [`crate::pool`]) into a time-sorted run that is shipped to the
//! consumer as fixed-size record blocks over a bounded SPSC channel. The
//! consumer performs the final S-way merge over the shard runs.
//!
//! ### Adaptive execution
//!
//! A single shard *is* the sequential merge, so `S == 1` (an explicit
//! `with_shards(.., 1)`, a one-UE population, or [`ShardedStream::new`] on
//! a single-core box — [`crate::effective_parallelism`] decides) runs the
//! [`PopulationStream`] calendar queue **inline on the caller's thread**: no
//! worker threads, no channels, no model clone. The sharded API is
//! therefore never slower than the sequential stream; threads and
//! channels are only paid for when there is parallelism to buy with them.
//! [`ShardedStream::is_inline`] / [`ShardedStream::worker_threads`] expose
//! which path engaged.
//!
//! ### Block-drain merge
//!
//! The consumer-side merge does not hop through the tournament tree per
//! record. When shard `w` wins, the tree also knows the *runner-up* — the
//! head that would win were `w`'s run exhausted ([`LoserTree::runner_up`],
//! one ⌈log₂S⌉ walk). Every buffered record of `w` that precedes that
//! bound is part of `w`'s current **run** and is emitted by direct block
//! indexing, one comparison each (found by galloping + binary search, so
//! short runs cost O(1)); the tree is then advanced **once per run**
//! ([`LoserTree::replace_run`]) instead of once per record, amortizing
//! both the replay and the per-record channel bookkeeping.
//!
//! ### Determinism
//!
//! The output is **byte-identical** to the sequential stream and to the
//! batch engine, for any shard count:
//!
//! * every UE's stream is a pure function of `(seed, ue)` — the shard a UE
//!   lands on does not touch its RNG;
//! * record order is a strict total order (time, then UE, then event; a
//!   UE's own events have strictly increasing timestamps), so the globally
//!   sorted sequence is unique — *any* correct merge tree yields it;
//! * each shard run is a sorted subsequence of that global sequence, and
//!   the consumer-side merge restores it exactly (run boundaries respect
//!   the same tie-break — lower shard index first — the tree uses).
//!
//! ### Backpressure & memory
//!
//! Workers block once their channel holds [`CHANNEL_BLOCKS`] undelivered
//! blocks, so a slow consumer (e.g. a disk writer) bounds the pipeline at
//! `S × CHANNEL_BLOCKS × BLOCK_RECORDS` buffered records plus the
//! O(population) generator states — independent of trace length.
//!
//! Deadlock freedom holds because every shard has a *dedicated* worker:
//! the consumer only ever blocks on the one channel whose run it needs
//! next, and that channel's producer never waits on anything but the same
//! channel's free space.
//!
//! ### Failure semantics
//!
//! A trace that ends early is indistinguishable from a complete one by
//! looking at the records alone — so a worker failure must never be able
//! to masquerade as clean exhaustion. Every worker runs its loop under
//! [`std::panic::catch_unwind`] and publishes a terminal
//! [`WorkerOutcome`] through a per-shard control slot *before* its data
//! channel disconnects:
//!
//! * [`WorkerOutcome::Completed`] — the shard generated and shipped every
//!   one of its records;
//! * [`WorkerOutcome::Panicked`] — the worker's loop panicked; the
//!   payload is preserved;
//! * [`WorkerOutcome::Cancelled`] — the worker's send failed because the
//!   consumer hung up (an abandoned stream), the deliberate wind-down.
//!
//! The consumer reads the slot whenever a channel disconnects, so a
//! panicked shard surfaces as a typed [`StreamError::WorkerPanicked`]
//! instead of being merged out as "exhausted". The fallible surface is
//! [`ShardedStream::try_next`] plus [`ShardedStream::finish`] (which
//! joins the workers and refuses to report success if any of them
//! panicked). The plain [`Iterator`] impl cannot return errors, so it
//! **fuses and poisons**: after a failure it yields `None` forever, the
//! error stays readable via [`ShardedStream::error`], and dropping the
//! stream records every worker's exit — `cn_gen_worker_exit{outcome=…}`
//! and `cn_gen_shard_panics_total{shard=…}` when a registry is attached —
//! rather than swallowing the join results. Faults are injected
//! deterministically in tests via [`crate::fault::FaultPlan`] and
//! [`ShardedStream::with_shards_faulted`]; the production constructors
//! monomorphize the fault hook to [`NoFault`], which compiles to nothing.
//!
//! ### Observability
//!
//! The `*_observed` constructors take a [`cn_obs::Registry`] and light up
//! the pipeline's telemetry — per-shard ship counters and channel-full
//! stall time, the merge run-length histogram, worker exit outcomes, and
//! mode gauges (see [`ShardedStream::with_shards_observed`] for the full
//! metric list). Once a stream is fully drained, the summed
//! `cn_gen_shard_events_total{shard=i}` counters equal
//! `cn_gen_merge_events_total` — the invariant `gen_bench --metrics`
//! re-checks on every CI run; when a run fails instead, the
//! `cn_gen_worker_exit` ledger says which workers ended how. All counting
//! is per block (workers) or batched locally per run and flushed in
//! [`BLOCK_RECORDS`]-scale windows (consumer merge — see `MergeObs`),
//! so the per-record hot paths touch no shared memory; with a disabled
//! registry the handles are no-ops and the unobserved constructors
//! delegate here with exactly that.

use crate::engine::{effective_parallelism, GenConfig};
use crate::fault::{FaultHook, FaultPlan, NoFault};
use crate::pool::UePool;
use crate::stream::PopulationStream;
use cn_fit::ModelSet;
use cn_obs::{Counter, Histogram, HistogramSnapshot, Registry, TraceSink, TraceSpan};
use cn_trace::{LoserTree, TraceRecord};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Records per channel block (~64 KiB of `TraceRecord`s: large enough to
/// amortize channel synchronization, small enough to keep the pipeline
/// responsive).
pub const BLOCK_RECORDS: usize = 4096;

/// Blocks buffered per shard channel before its worker blocks.
pub const CHANNEL_BLOCKS: usize = 4;

/// How a shard worker's run ended, published through its control slot
/// before the data channel disconnects (see module docs, *Failure
/// semantics*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The worker generated and shipped all `events` of its records.
    Completed {
        /// Records this shard shipped to the consumer.
        events: u64,
    },
    /// The worker's generation loop panicked; `payload` is the panic
    /// message (or a placeholder for non-string payloads).
    Panicked {
        /// The stringified panic payload.
        payload: String,
    },
    /// The worker stopped because the consumer hung up (the stream was
    /// dropped or finished early) — the deliberate wind-down, not a
    /// failure.
    Cancelled,
}

impl WorkerOutcome {
    /// The `outcome` label value used for `cn_gen_worker_exit`.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerOutcome::Completed { .. } => "completed",
            WorkerOutcome::Panicked { .. } => "panicked",
            WorkerOutcome::Cancelled => "cancelled",
        }
    }
}

/// A failure of the sharded pipeline, surfaced by
/// [`ShardedStream::try_next`] / [`ShardedStream::finish`]. Once
/// returned, the stream is *poisoned*: every further `try_next` repeats
/// the error and the `Iterator` impl yields `None` (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A shard worker panicked; the records it had not yet shipped are
    /// lost, so the stream refuses to pose as cleanly exhausted.
    WorkerPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
        /// The worker's panic payload.
        payload: String,
    },
    /// A spill or export I/O operation of the out-of-core pipeline failed
    /// ([`crate::generate_out_of_core`]). The same containment contract as
    /// a worker panic applies: the failure is surfaced as this typed error
    /// and the export sink is left in the finish-or-recover state — never
    /// posing as a complete trace.
    Io {
        /// Pipeline stage that failed: `spill-create`, `spill-write`,
        /// `spill-read`, `export-header`, `export-write`, or
        /// `export-finish`.
        stage: &'static str,
        /// The underlying I/O error, stringified (keeps the error `Clone`
        /// and comparable for tests).
        message: String,
    },
    /// A live-service consumer (`cn-live`) fell behind its bounded send
    /// queue and record frames addressed to it were dropped. The wire
    /// stream carries an explicit gap marker at the drop position and the
    /// consumer's terminal verdict is this typed error — honest
    /// degradation, never a silently truncated or reordered stream.
    ConsumerLagged {
        /// Id of the lagging consumer (the live server's accept order).
        consumer: usize,
        /// Number of record frames dropped for this consumer.
        dropped: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::WorkerPanicked { shard, payload } => {
                write!(f, "shard {shard} worker panicked: {payload}")
            }
            StreamError::Io { stage, message } => {
                write!(f, "out-of-core {stage} I/O failure: {message}")
            }
            StreamError::ConsumerLagged { consumer, dropped } => {
                write!(
                    f,
                    "live consumer {consumer} lagged: {dropped} record frames dropped"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// What a fully wound-down stream reports from
/// [`ShardedStream::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// Records this stream handed to the consumer.
    pub events: u64,
    /// Terminal state of each shard worker, indexed by shard. Empty on
    /// the inline path (no workers exist).
    pub outcomes: Vec<WorkerOutcome>,
}

/// One shard's endpoint on the consumer side: the receive handle plus a
/// cursor over the block currently being drained, and the worker's
/// control slot for telling clean exhaustion apart from a crash.
///
/// Invariant while the shard is live: the merge tree's head for this shard
/// equals `block[pos]`, the shard's next undelivered record.
struct ShardCursor {
    shard: usize,
    rx: Receiver<Vec<TraceRecord>>,
    block: Vec<TraceRecord>,
    pos: usize,
    outcome: Arc<OnceLock<WorkerOutcome>>,
}

impl ShardCursor {
    /// The record at `pos` — this shard's next merge head — receiving the
    /// next block when the current one is exhausted; `Ok(None)` once the
    /// worker has **completed** and every block is drained, and a typed
    /// error when the channel disconnected for any other reason.
    fn head(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        loop {
            if let Some(&rec) = self.block.get(self.pos) {
                return Ok(Some(rec));
            }
            match self.rx.recv() {
                Ok(block) => {
                    self.block = block;
                    self.pos = 0;
                }
                Err(_) => {
                    // The worker is gone; its outcome was published
                    // before the channel disconnected, so the slot is
                    // authoritative here.
                    return match self.outcome.get() {
                        Some(WorkerOutcome::Completed { .. }) => Ok(None),
                        Some(WorkerOutcome::Panicked { payload }) => {
                            Err(StreamError::WorkerPanicked {
                                shard: self.shard,
                                payload: payload.clone(),
                            })
                        }
                        // `Cancelled` is only set after *this receiver*
                        // was dropped, so a live cursor can never see it;
                        // treat it — and a missing outcome — as the
                        // worker vanishing, which is a failure.
                        Some(WorkerOutcome::Cancelled) | None => Err(StreamError::WorkerPanicked {
                            shard: self.shard,
                            payload: "worker exited without publishing an outcome".into(),
                        }),
                    };
                }
            }
        }
    }
}

/// A globally time-ordered population event stream produced by parallel
/// shard workers — or, at one shard, by the sequential loser tree inline
/// (see module docs).
///
/// ```no_run
/// use cn_gen::{GenConfig, ShardedStream};
/// # let models: cn_fit::ModelSet = unimplemented!();
/// # let config: GenConfig = unimplemented!();
/// // Failure-contained consumption: a worker panic becomes a typed
/// // error instead of a silently truncated trace.
/// let mut stream = ShardedStream::new(&models, &config);
/// while let Some(record) = stream.try_next()? {
///     let _ = record;
/// }
/// let stats = stream.finish()?;
/// println!("complete: {} events", stats.events);
/// # Ok::<(), cn_gen::StreamError>(())
/// ```
pub struct ShardedStream<'m> {
    inner: Inner<'m>,
}

enum Inner<'m> {
    /// Single-shard fast path: the sequential merge, zero threads. The
    /// unobserved variant is a pure delegation — splitting it from
    /// [`Inner::InlineObserved`] keeps the default path's per-record cost
    /// at an emitted-count increment (the `--gate 0.95` benchmark floor
    /// leaves no budget for more).
    Inline {
        stream: PopulationStream<'m>,
        /// Records emitted so far (feeds [`ShardedStream::finish`]).
        emitted: u64,
    },
    /// The inline fast path with a live registry attached.
    InlineObserved {
        stream: PopulationStream<'m>,
        /// `cn_gen_merge_events_total`, fed from `pending` in batches so
        /// the observed inline hot path pays one plain add per record,
        /// not one atomic op (flushed every [`BLOCK_RECORDS`], at
        /// exhaustion, and on drop).
        events: Counter,
        pending: u64,
        /// Records emitted so far (feeds [`ShardedStream::finish`]).
        emitted: u64,
    },
    /// Worker threads + block channels + consumer-side S-way merge.
    Parallel(ParallelStream),
}

/// Merged events between flushes of the locally batched merge telemetry.
/// Small enough that an abandoned snapshot read misses little, large
/// enough that a fine-grained interleave (runs of 1–2 records) amortizes
/// its shared-counter traffic over tens of thousands of records.
const OBS_FLUSH_EVENTS: u64 = (BLOCK_RECORDS * 16) as u64;

/// Consumer-side merge telemetry (no-op handles when unobserved).
///
/// The shared handles are **never touched per run**: `begin_run`
/// accumulates into the plain local fields and [`MergeObs::flush`] folds
/// them into the registry every [`OBS_FLUSH_EVENTS`] merged events, at
/// exhaustion, on poisoning, and at shutdown. A fine-grained shard
/// interleave degenerates to runs of a record or two, so per-run atomic
/// updates were measurably on the hot path (the BENCH_gen.json
/// `instrumented` point sat below the 0.95 gate); batching restores the
/// invariant that instrumentation costs O(events / flush-window), not
/// O(runs).
struct MergeObs {
    /// `cn_gen_merge_events_total` — records handed to the consumer.
    events: Counter,
    /// `cn_gen_merge_run_len` — length of each block-drained run: long
    /// runs mean the merge is amortizing well, a spike of 1s means the
    /// shards are interleaving record-by-record.
    run_len: Histogram,
    /// Whether a live registry or trace sink is attached (skip all
    /// local bookkeeping otherwise, keeping the unobserved path
    /// untouched).
    active: bool,
    /// Locally accumulated event count since the last flush.
    pending_events: u64,
    /// Locally accumulated run-length observations since the last flush.
    pending_runs: HistogramSnapshot,
    /// The global trace sink, resolved once at registration.
    trace: TraceSink,
    /// One trace span per flush window (`cn_gen_merge_window`) — the
    /// same granularity the batched telemetry flushes at, so tracing
    /// adds nothing to the per-run path beyond an `is_none` check.
    window_span: Option<TraceSpan>,
}

impl MergeObs {
    fn register(registry: &Registry) -> MergeObs {
        let events = registry.counter("cn_gen_merge_events_total");
        let trace = cn_obs::trace::global();
        let active = events.is_enabled() || trace.is_enabled();
        MergeObs {
            events,
            run_len: registry.histogram("cn_gen_merge_run_len"),
            active,
            pending_events: 0,
            pending_runs: HistogramSnapshot::new(),
            trace,
            window_span: None,
        }
    }

    /// Account one block-drained run locally (no shared-memory traffic);
    /// flush when the window fills.
    #[inline]
    fn on_run(&mut self, len: u64) {
        if !self.active {
            return;
        }
        if self.trace.is_enabled() && self.window_span.is_none() {
            self.window_span = Some(self.trace.span("cn_gen_merge_window"));
        }
        self.pending_events += len;
        self.pending_runs.record(len);
        if self.pending_events >= OBS_FLUSH_EVENTS {
            self.flush();
        }
    }

    /// Fold the locally batched counts into the shared registry handles
    /// and close the window's trace span.
    fn flush(&mut self) {
        if !self.active {
            return;
        }
        drop(self.window_span.take());
        if self.pending_events > 0 {
            self.events.add(std::mem::take(&mut self.pending_events));
        }
        if self.pending_runs.count > 0 {
            self.run_len.merge_snapshot(&self.pending_runs);
            self.pending_runs = HistogramSnapshot::new();
        }
    }
}

/// The multi-worker pipeline behind [`ShardedStream`] at `S ≥ 2`.
struct ParallelStream {
    shards: Vec<ShardCursor>,
    tree: LoserTree<TraceRecord>,
    /// Shard whose current run is being drained (valid while `run_len > 0`).
    run: usize,
    /// Unemitted records of the current run; all of them precede every
    /// other shard's head, so they bypass the tree entirely.
    run_len: usize,
    /// Records handed to the consumer so far.
    emitted: u64,
    /// The first worker failure observed; once set, the stream emits
    /// nothing further (poisoned — see module docs).
    poisoned: Option<StreamError>,
    obs: MergeObs,
    /// Per-shard control slots (also referenced by the cursors), read at
    /// shutdown after the cursors are gone.
    slots: Vec<Arc<OnceLock<WorkerOutcome>>>,
    /// Worker outcomes, collected exactly once at shutdown.
    collected: Option<Vec<WorkerOutcome>>,
    registry: Registry,
    workers: Vec<JoinHandle<()>>,
    /// Open from spawn to shutdown (`cn_gen_parallel_stream`): the
    /// umbrella under which merge windows nest in the timeline. Boxed
    /// to keep the stream enum's parallel variant lean.
    stream_span: Option<Box<TraceSpan>>,
}

impl<'m> ShardedStream<'m> {
    /// Stream `config`'s population with one shard per configured thread
    /// (`config.threads`, `0` = all cores via
    /// [`crate::effective_parallelism`]).
    pub fn new(models: &'m ModelSet, config: &GenConfig) -> ShardedStream<'m> {
        Self::new_observed(models, config, &Registry::disabled())
    }

    /// As [`ShardedStream::new`], recording pipeline telemetry into
    /// `registry` (see [`ShardedStream::with_shards_observed`] for the
    /// metrics emitted).
    pub fn new_observed(
        models: &'m ModelSet,
        config: &GenConfig,
        registry: &Registry,
    ) -> ShardedStream<'m> {
        let shards = if config.threads == 0 {
            effective_parallelism()
        } else {
            config.threads
        };
        Self::with_shards_observed(models, config, shards, registry)
    }

    /// As [`ShardedStream::new`] with an explicit shard count. One shard
    /// (after clamping to the population size) engages the inline
    /// sequential fast path; two or more spawn worker threads, cloning the
    /// model set once so the workers can outlive the caller's borrow.
    pub fn with_shards(
        models: &'m ModelSet,
        config: &GenConfig,
        shards: usize,
    ) -> ShardedStream<'m> {
        Self::with_shards_observed(models, config, shards, &Registry::disabled())
    }

    /// As [`ShardedStream::with_shards`], recording pipeline telemetry
    /// into `registry`:
    ///
    /// * `cn_gen_shard_events_total{shard=i}` / `_blocks_total{shard=i}` —
    ///   records and blocks each worker shipped;
    /// * `cn_gen_shard_stall_ns_total{shard=i}` — time the worker spent
    ///   blocked on a full channel (consumer backpressure);
    /// * `cn_gen_merge_events_total` — records the consumer-side merge
    ///   emitted (equals the summed per-shard counters once the stream
    ///   is fully drained);
    /// * `cn_gen_merge_run_len` — histogram of block-drain run lengths;
    /// * `cn_gen_shard_mode_parallel` / `cn_gen_shard_workers` — gauges
    ///   exposing which execution path engaged;
    /// * `cn_gen_worker_exit{outcome=completed|panicked|cancelled}` —
    ///   one increment per worker at wind-down ([`ShardedStream::finish`]
    ///   or drop), plus `cn_gen_shard_panics_total{shard=i}` for each
    ///   panicked worker.
    ///
    /// With a disabled registry every handle is a no-op and the pipeline
    /// is byte-for-byte the unobserved one (the stall timer is not even
    /// read).
    pub fn with_shards_observed(
        models: &'m ModelSet,
        config: &GenConfig,
        shards: usize,
        registry: &Registry,
    ) -> ShardedStream<'m> {
        Self::build(models, config, shards, registry, |_| NoFault)
    }

    /// **Test support** — as [`ShardedStream::with_shards_observed`], with
    /// a deterministic [`FaultPlan`] injected into the shard workers (see
    /// [`crate::fault`]). Production code has no reason to call this; the
    /// tier-1 failure-containment suite uses it to prove every injected
    /// fault surfaces as a typed [`StreamError`].
    ///
    /// Panics if the plan is non-empty but the stream resolves to the
    /// inline path (fault injection targets worker threads, and a silently
    /// un-injected fault would make a test vacuous).
    pub fn with_shards_faulted(
        models: &'m ModelSet,
        config: &GenConfig,
        shards: usize,
        registry: &Registry,
        plan: &FaultPlan,
    ) -> ShardedStream<'m> {
        let effective = shards.clamp(1, (config.population.total() as usize).max(1));
        assert!(
            effective >= 2 || plan.is_empty(),
            "fault injection requires the parallel path (≥ 2 effective shards), got {effective}"
        );
        Self::build(models, config, shards, registry, |shard| {
            plan.for_shard(shard)
        })
    }

    /// Shared constructor: clamp, choose the execution path, and spawn
    /// workers with `fault_for(shard)` as their (monomorphized) fault
    /// hook — [`NoFault`] for every production caller.
    fn build<F: FaultHook>(
        models: &'m ModelSet,
        config: &GenConfig,
        shards: usize,
        registry: &Registry,
        fault_for: impl Fn(usize) -> F,
    ) -> ShardedStream<'m> {
        let shards = shards.clamp(1, (config.population.total() as usize).max(1));
        let mode = registry.gauge("cn_gen_shard_mode_parallel");
        let workers = registry.gauge("cn_gen_shard_workers");
        if shards == 1 {
            mode.set(0);
            workers.set(0);
            let stream = PopulationStream::new(models, config);
            let inner = if registry.is_enabled() {
                Inner::InlineObserved {
                    stream,
                    events: registry.counter("cn_gen_merge_events_total"),
                    pending: 0,
                    emitted: 0,
                }
            } else {
                Inner::Inline { stream, emitted: 0 }
            };
            return ShardedStream { inner };
        }
        mode.set(1);
        workers.set(shards as u64);
        ShardedStream {
            inner: Inner::Parallel(ParallelStream::spawn(
                Arc::new(models.clone()),
                config,
                shards,
                registry,
                fault_for,
            )),
        }
    }

    /// True when this stream runs on the caller's thread (the single-shard
    /// fast path): no worker threads, no channels were created.
    pub fn is_inline(&self) -> bool {
        matches!(
            self.inner,
            Inner::Inline { .. } | Inner::InlineObserved { .. }
        )
    }

    /// Number of worker threads backing this stream — `0` on the inline
    /// fast path, the shard count otherwise.
    pub fn worker_threads(&self) -> usize {
        match &self.inner {
            Inner::Inline { .. } | Inner::InlineObserved { .. } => 0,
            Inner::Parallel(p) => p.workers.len(),
        }
    }

    /// Number of shards that still have records pending (the inline path
    /// counts as one shard until it drains).
    pub fn live_shards(&self) -> usize {
        match &self.inner {
            Inner::Inline { stream, .. } | Inner::InlineObserved { stream, .. } => {
                usize::from(stream.live_ues() > 0)
            }
            Inner::Parallel(p) => p.tree.live(),
        }
    }

    /// The failure that poisoned this stream, if any. Set as soon as a
    /// worker failure is observed — including when it was observed through
    /// the plain [`Iterator`] interface, which can only signal it by
    /// ending (`None`); check this afterwards, or use
    /// [`ShardedStream::try_next`] / [`ShardedStream::finish`] to get the
    /// error directly.
    pub fn error(&self) -> Option<&StreamError> {
        match &self.inner {
            Inner::Parallel(p) => p.poisoned.as_ref(),
            _ => None,
        }
    }

    /// The fallible pull: `Ok(Some(record))` while records flow,
    /// `Ok(None)` on clean exhaustion, and `Err` when a worker failed —
    /// at which point the stream is poisoned and every further call
    /// repeats the error. The inline path cannot fail (no workers, no
    /// channels) and always returns `Ok`.
    pub fn try_next(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        match &mut self.inner {
            Inner::Inline { stream, emitted } => {
                let rec = stream.next();
                if rec.is_some() {
                    *emitted += 1;
                }
                Ok(rec)
            }
            Inner::InlineObserved {
                stream,
                events,
                pending,
                emitted,
            } => match stream.next() {
                Some(rec) => {
                    *pending += 1;
                    *emitted += 1;
                    if *pending >= BLOCK_RECORDS as u64 {
                        events.add(std::mem::take(pending));
                    }
                    Ok(Some(rec))
                }
                None => {
                    events.add(std::mem::take(pending));
                    Ok(None)
                }
            },
            Inner::Parallel(p) => p.try_next_record(),
        }
    }

    /// Wind the stream down and account for every worker: joins the
    /// worker threads, records their exit outcomes (and the
    /// `cn_gen_worker_exit` / `cn_gen_shard_panics_total` counters when
    /// observed), and returns the stream's statistics — or the
    /// [`StreamError`] if the stream was poisoned **or any worker turns
    /// out to have panicked**, even one whose records were never needed
    /// by the merge.
    ///
    /// Calling `finish` before draining the stream is a *deliberate* early
    /// stop: still-running workers are cancelled (reported as
    /// [`WorkerOutcome::Cancelled`], not as failures) and `events` counts
    /// what was actually emitted. A complete, failure-free export is
    /// therefore exactly: drain `try_next` to `Ok(None)`, then `finish()?`.
    pub fn finish(mut self) -> Result<StreamStats, StreamError> {
        self.finish_in_place()
    }

    fn finish_in_place(&mut self) -> Result<StreamStats, StreamError> {
        match &mut self.inner {
            Inner::Inline { emitted, .. } => Ok(StreamStats {
                events: *emitted,
                outcomes: Vec::new(),
            }),
            Inner::InlineObserved {
                events,
                pending,
                emitted,
                ..
            } => {
                events.add(std::mem::take(pending));
                Ok(StreamStats {
                    events: *emitted,
                    outcomes: Vec::new(),
                })
            }
            Inner::Parallel(p) => {
                let outcomes = p.shutdown().to_vec();
                if let Some(e) = &p.poisoned {
                    return Err(e.clone());
                }
                if let Some((shard, payload)) =
                    outcomes.iter().enumerate().find_map(|(s, o)| match o {
                        WorkerOutcome::Panicked { payload } => Some((s, payload.clone())),
                        _ => None,
                    })
                {
                    let e = StreamError::WorkerPanicked { shard, payload };
                    p.poisoned = Some(e.clone());
                    return Err(e);
                }
                Ok(StreamStats {
                    events: p.emitted,
                    outcomes,
                })
            }
        }
    }
}

impl Iterator for ShardedStream<'_> {
    type Item = TraceRecord;

    /// Infallible view of [`ShardedStream::try_next`]. A worker failure
    /// cannot be returned here, so the iterator **fuses and poisons**:
    /// it yields `None` from the failure on (never a record that would
    /// paper over the gap), [`ShardedStream::error`] holds the
    /// [`StreamError`], and drop still records every worker's exit.
    fn next(&mut self) -> Option<TraceRecord> {
        self.try_next().unwrap_or(None)
    }
}

impl Drop for ShardedStream<'_> {
    fn drop(&mut self) {
        // Flush the observed inline path's batched event count so an
        // abandoned stream still reports what it emitted. (The parallel
        // path's accounting lives in `ParallelStream::drop`.)
        if let Inner::InlineObserved {
            events, pending, ..
        } = &mut self.inner
        {
            events.add(std::mem::take(pending));
        }
    }
}

/// Render a worker's panic payload for [`WorkerOutcome::Panicked`].
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl ParallelStream {
    fn spawn<F: FaultHook>(
        models: Arc<ModelSet>,
        config: &GenConfig,
        shards: usize,
        registry: &Registry,
        fault_for: impl Fn(usize) -> F,
    ) -> ParallelStream {
        let config = *config;
        // Resolved once for the whole stream; workers clone the handle.
        let trace = cn_obs::trace::global();
        let stream_span = trace
            .is_enabled()
            .then(|| Box::new(trace.span("cn_gen_parallel_stream")));
        let mut cursors = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut slots = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel(CHANNEL_BLOCKS);
            let models = Arc::clone(&models);
            let obs = WorkerObs::register(registry, shard);
            let slot: Arc<OnceLock<WorkerOutcome>> = Arc::new(OnceLock::new());
            let worker_slot = Arc::clone(&slot);
            let mut fault = fault_for(shard);
            let worker_trace = trace.clone();
            let handle = std::thread::Builder::new()
                .name(format!("cn-gen-shard-{shard}"))
                .spawn(move || {
                    // One span covering this worker's whole drain: shard
                    // workers show up side by side in the timeline.
                    let drain_span = worker_trace
                        .is_enabled()
                        .then(|| worker_trace.span(&format!("cn_gen_shard_drain:{shard}")));
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        shard_worker(&models, &config, shard, shards, &tx, &obs, &mut fault)
                    }));
                    drop(drain_span);
                    let outcome = match run {
                        Ok(WorkerRun::Completed { events }) => WorkerOutcome::Completed { events },
                        Ok(WorkerRun::ConsumerGone) => WorkerOutcome::Cancelled,
                        Err(payload) => WorkerOutcome::Panicked {
                            payload: panic_payload(payload.as_ref()),
                        },
                    };
                    let _ = worker_slot.set(outcome);
                    // `tx` disconnects only now — after the outcome is
                    // published — so the consumer always finds a terminal
                    // state behind a closed channel.
                    drop(tx);
                })
                .expect("spawn shard worker");
            workers.push(handle);
            slots.push(Arc::clone(&slot));
            cursors.push(ShardCursor {
                shard,
                rx,
                block: Vec::new(),
                pos: 0,
                outcome: slot,
            });
        }
        // A worker can fail before shipping its first block; that must
        // poison the stream at construction, not read as an empty shard.
        let mut poisoned = None;
        let heads: Vec<Option<TraceRecord>> = cursors
            .iter_mut()
            .map(|c| match c.head() {
                Ok(h) => h,
                Err(e) => {
                    poisoned.get_or_insert(e);
                    None
                }
            })
            .collect();
        ParallelStream {
            shards: cursors,
            tree: LoserTree::new(heads),
            run: 0,
            run_len: 0,
            emitted: 0,
            poisoned,
            obs: MergeObs::register(registry),
            slots,
            collected: None,
            registry: registry.clone(),
            workers,
            stream_span,
        }
    }

    /// Start the next run: the tournament winner's buffered records up to
    /// (per the global tie-break) the runner-up's head. Costs two ⌈log₂S⌉
    /// walks plus a gallop — once per run, not per record.
    fn begin_run(&mut self) -> bool {
        let Some(w) = self.tree.winner() else {
            return false;
        };
        let cursor = &self.shards[w];
        let rest = &cursor.block[cursor.pos..];
        debug_assert!(!rest.is_empty(), "a live shard's head is buffered");
        let len = match self.tree.runner_up() {
            // Sole live shard: everything buffered is globally next.
            None => rest.len(),
            Some(u) => {
                let bound = self.tree.head(u).expect("runner-up has a head");
                run_prefix(rest, bound, w < u)
            }
        };
        debug_assert!(len >= 1, "the winner's own head precedes the bound");
        // Telemetry is accumulated locally per *run* and flushed in large
        // windows (see [`MergeObs`]), so the merge hot path touches no
        // shared memory even when observed.
        self.obs.on_run(len as u64);
        self.run = w;
        self.run_len = len;
        true
    }

    fn try_next_record(&mut self) -> Result<Option<TraceRecord>, StreamError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.run_len == 0 && !self.begin_run() {
            self.obs.flush();
            return Ok(None);
        }
        let cursor = &mut self.shards[self.run];
        let rec = cursor.block[cursor.pos];
        cursor.pos += 1;
        self.run_len -= 1;
        self.emitted += 1;
        if self.run_len == 0 {
            // Run exhausted: fetch this shard's next head (receiving the
            // next block if need be) and replay the tournament once for
            // the whole run. A failure here poisons the stream — the
            // record already pulled is still part of the valid prefix,
            // so it is returned; the *next* call errors.
            let next = match cursor.head() {
                Ok(h) => h,
                Err(e) => {
                    self.poisoned = Some(e);
                    None
                }
            };
            self.tree.replace_run(next);
        }
        Ok(Some(rec))
    }

    /// Disconnect, join, and account for every worker — exactly once;
    /// later calls return the cached outcomes. Blocked workers observe
    /// the disconnect as a failed send and wind down as `Cancelled`, so
    /// this never deadlocks.
    fn shutdown(&mut self) -> &[WorkerOutcome] {
        if self.collected.is_none() {
            // Flush the batched merge telemetry so an abandoned, early-
            // finished, or poisoned stream still accounts for what it
            // actually emitted.
            self.obs.flush();
            drop(self.stream_span.take());
            // Drop the receivers first: any worker blocked on a full
            // channel fails its send and exits.
            self.shards.clear();
            for handle in self.workers.drain(..) {
                // A join error would mean a panic escaped the worker's
                // catch_unwind; the slot fallback below reports it.
                let _ = handle.join();
            }
            let outcomes: Vec<WorkerOutcome> = self
                .slots
                .iter()
                .map(|slot| {
                    slot.get().cloned().unwrap_or(WorkerOutcome::Panicked {
                        payload: "worker exited without publishing an outcome".into(),
                    })
                })
                .collect();
            for (shard, outcome) in outcomes.iter().enumerate() {
                self.registry
                    .counter_with("cn_gen_worker_exit", &[("outcome", outcome.label())])
                    .inc();
                if matches!(outcome, WorkerOutcome::Panicked { .. }) {
                    self.registry
                        .counter_with(
                            "cn_gen_shard_panics_total",
                            &[("shard", &shard.to_string())],
                        )
                        .inc();
                }
            }
            self.collected = Some(outcomes);
        }
        self.collected.as_deref().expect("outcomes just collected")
    }
}

impl Drop for ParallelStream {
    fn drop(&mut self) {
        // Join workers and *record* their terminal states (worker-exit
        // counters, panic counters) instead of swallowing them — an
        // abandoned or poisoned stream still leaves evidence.
        self.shutdown();
    }
}

/// Length of the longest prefix of `rest` (one shard's sorted buffered
/// records, `rest[0]` being the current tournament winner) whose records
/// all precede `bound`, the runner-up shard's head. `wins_ties` is whether
/// this shard's index is lower than the bound's (the merge's stability
/// tie-break). Gallop-then-binary-search: O(1) for the short runs of a
/// fine-grained interleave, O(log n) for long bursts.
fn run_prefix(rest: &[TraceRecord], bound: &TraceRecord, wins_ties: bool) -> usize {
    let precedes = |r: &TraceRecord| match r.cmp(bound) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => wins_ties,
        std::cmp::Ordering::Greater => false,
    };
    debug_assert!(precedes(&rest[0]), "the winner precedes the runner-up");
    let mut lo = 0; // rest[lo] is known to precede the bound
    let mut step = 1;
    while lo + step < rest.len() && precedes(&rest[lo + step]) {
        lo += step;
        step *= 2;
    }
    let hi = (lo + step).min(rest.len());
    lo + 1 + rest[lo + 1..hi].partition_point(precedes)
}

/// One worker's telemetry handles (no-ops when unobserved). All three
/// are updated per *block*, never per record.
struct WorkerObs {
    /// `cn_gen_shard_events_total{shard=i}` — records shipped.
    events: Counter,
    /// `cn_gen_shard_blocks_total{shard=i}` — blocks shipped.
    blocks: Counter,
    /// `cn_gen_shard_stall_ns_total{shard=i}` — nanoseconds blocked on a
    /// full channel waiting for the consumer.
    stall_ns: Counter,
}

impl WorkerObs {
    fn register(registry: &Registry, shard: usize) -> WorkerObs {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        WorkerObs {
            events: registry.counter_with("cn_gen_shard_events_total", labels),
            blocks: registry.counter_with("cn_gen_shard_blocks_total", labels),
            stall_ns: registry.counter_with("cn_gen_shard_stall_ns_total", labels),
        }
    }

    /// Ship one block, accounting for it; false when the consumer hung
    /// up. Unobserved, this is exactly a blocking `send`; observed, a
    /// `try_send` first so only an actually-full channel pays for the
    /// two clock reads that measure the stall.
    fn ship(&self, tx: &SyncSender<Vec<TraceRecord>>, block: Vec<TraceRecord>) -> bool {
        let records = block.len() as u64;
        if !self.stall_ns.is_enabled() {
            if tx.send(block).is_err() {
                return false;
            }
        } else {
            match tx.try_send(block) {
                Ok(()) => {}
                Err(TrySendError::Full(block)) => {
                    let stalled = Instant::now();
                    let sent = tx.send(block).is_ok();
                    self.stall_ns
                        .add(u64::try_from(stalled.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    if !sent {
                        return false;
                    }
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
        self.events.add(records);
        self.blocks.inc();
        true
    }
}

/// How a worker's generation loop ended (pre-`catch_unwind` view; the
/// published [`WorkerOutcome`] adds the panic case).
enum WorkerRun {
    /// Every record of this shard was generated and shipped.
    Completed {
        /// Records shipped.
        events: u64,
    },
    /// A send failed: the consumer dropped its receiver.
    ConsumerGone,
}

/// Worker body: merge this shard's UE streams into a sorted run and ship
/// it as blocks. Returning [`WorkerRun::ConsumerGone`] on a failed send is
/// the cancellation path (the consumer hung up). `fault` is the
/// monomorphized fault-injection hook — [`NoFault`] (empty inline bodies)
/// everywhere outside the failure-containment tests.
fn shard_worker<F: FaultHook>(
    models: &ModelSet,
    config: &GenConfig,
    shard: usize,
    shards: usize,
    tx: &SyncSender<Vec<TraceRecord>>,
    obs: &WorkerObs,
    fault: &mut F,
) -> WorkerRun {
    let total = config.population.total();
    let mut pool = UePool::new(models, config, (shard as u32..total).step_by(shards));
    let mut block = Vec::with_capacity(BLOCK_RECORDS);
    let mut shipped = 0u64;
    while pool.live() > 0 {
        fault.on_record();
        let rec = pool.next_record().expect("live pool yields a record");
        block.push(rec);
        if block.len() == BLOCK_RECORDS {
            let full = std::mem::replace(&mut block, Vec::with_capacity(BLOCK_RECORDS));
            fault.on_block();
            if !obs.ship(tx, full) {
                return WorkerRun::ConsumerGone;
            }
            shipped += BLOCK_RECORDS as u64;
        }
    }
    if !block.is_empty() {
        let records = block.len() as u64;
        fault.on_block();
        if !obs.ship(tx, block) {
            return WorkerRun::ConsumerGone;
        }
        shipped += records;
    }
    WorkerRun::Completed { events: shipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Timestamp, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(24, 10, 6), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    fn config() -> GenConfig {
        GenConfig::new(
            PopulationMix::new(18, 8, 5),
            Timestamp::at_hour(0, 9),
            2.0,
            7,
        )
    }

    #[test]
    fn sharded_equals_sequential_for_any_shard_count() {
        let models = fitted();
        let config = config();
        let sequential: Trace = PopulationStream::new(&models, &config).collect();
        for shards in [1usize, 2, 5, 31, 64] {
            let sharded: Trace = ShardedStream::with_shards(&models, &config, shards).collect();
            assert_eq!(sharded, sequential, "{shards} shards diverged");
        }
    }

    #[test]
    fn single_shard_runs_inline_without_worker_threads() {
        // The adaptive fast path: one shard must not pay for threads or
        // channels it cannot use — it delegates to the sequential merge.
        let models = fitted();
        let config = config();
        let stream = ShardedStream::with_shards(&models, &config, 1);
        assert!(stream.is_inline(), "1 shard must take the inline path");
        assert_eq!(stream.worker_threads(), 0);
        let n = stream.count();
        assert_eq!(n, PopulationStream::new(&models, &config).count());
    }

    #[test]
    fn multi_shard_spawns_one_worker_per_shard() {
        let models = fitted();
        let config = config();
        let stream = ShardedStream::with_shards(&models, &config, 4);
        assert!(!stream.is_inline());
        assert_eq!(stream.worker_threads(), 4);
    }

    #[test]
    fn one_ue_population_is_inline_regardless_of_request() {
        // Clamping to the population size can collapse a parallel request
        // to one shard; that too must bypass the worker machinery.
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(1, 0, 0),
            Timestamp::at_hour(0, 9),
            2.0,
            7,
        );
        let stream = ShardedStream::with_shards(&models, &config, 8);
        assert!(stream.is_inline());
        assert_eq!(stream.worker_threads(), 0);
    }

    #[test]
    fn shard_count_exceeding_population_is_clamped() {
        let models = fitted();
        let config = config();
        // 31 UEs, 64 requested shards: must still stream every record.
        let stream = ShardedStream::with_shards(&models, &config, 64);
        assert_eq!(stream.worker_threads(), 31);
        let n = stream.count();
        let expected = PopulationStream::new(&models, &config).count();
        assert_eq!(n, expected);
    }

    #[test]
    fn empty_population_streams_nothing() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        assert_eq!(ShardedStream::with_shards(&models, &config, 4).count(), 0);
    }

    #[test]
    fn abandoning_the_stream_mid_run_terminates_workers() {
        let models = fitted();
        let mut config = config();
        config.duration_hours = 6.0;
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        for _ in 0..10 {
            if stream.next().is_none() {
                break;
            }
        }
        drop(stream); // must not hang: Drop disconnects and joins workers
    }

    #[test]
    fn live_shards_drains_to_zero() {
        let models = fitted();
        let config = config();
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        assert!(stream.live_shards() <= 3);
        for _ in stream.by_ref() {}
        assert_eq!(stream.live_shards(), 0);

        let mut inline = ShardedStream::with_shards(&models, &config, 1);
        assert_eq!(inline.live_shards(), 1);
        for _ in inline.by_ref() {}
        assert_eq!(inline.live_shards(), 0);
    }

    #[test]
    fn finish_reports_stats_on_every_path() {
        let models = fitted();
        let config = config();
        let expected = PopulationStream::new(&models, &config).count() as u64;

        // Parallel: drain, then finish — all workers completed.
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        while stream.try_next().expect("no fault injected").is_some() {}
        let stats = stream.finish().expect("clean run");
        assert_eq!(stats.events, expected);
        assert_eq!(stats.outcomes.len(), 3);
        let shipped: u64 = stats
            .outcomes
            .iter()
            .map(|o| match o {
                WorkerOutcome::Completed { events } => *events,
                other => panic!("unexpected outcome {other:?}"),
            })
            .sum();
        assert_eq!(shipped, expected, "workers shipped exactly the workload");

        // Inline: same contract, no outcomes (no workers exist).
        let mut inline = ShardedStream::with_shards(&models, &config, 1);
        while inline.try_next().expect("inline cannot fail").is_some() {}
        let stats = inline.finish().expect("inline cannot fail");
        assert_eq!(stats.events, expected);
        assert!(stats.outcomes.is_empty());
    }

    #[test]
    fn early_finish_is_a_cancellation_not_an_error() {
        let models = fitted();
        let mut config = config();
        config.duration_hours = 6.0;
        let mut stream = ShardedStream::with_shards(&models, &config, 3);
        let mut taken = 0u64;
        for _ in 0..10 {
            if stream.try_next().expect("no fault").is_none() {
                break;
            }
            taken += 1;
        }
        let stats = stream.finish().expect("early stop is deliberate");
        assert_eq!(stats.events, taken);
        // Workers either completed (tiny shards) or were cancelled; none
        // panicked.
        assert!(stats
            .outcomes
            .iter()
            .all(|o| !matches!(o, WorkerOutcome::Panicked { .. })));
    }

    #[test]
    fn observed_parallel_counters_balance_exactly() {
        let models = fitted();
        let config = config();
        let expected = PopulationStream::new(&models, &config).count() as u64;
        let registry = Registry::new();
        let n = ShardedStream::with_shards_observed(&models, &config, 4, &registry).count() as u64;
        assert_eq!(n, expected);

        let snap = registry.snapshot();
        // The tentpole invariant: per-shard production sums to exactly
        // what the merge emitted, which is exactly the sequential count.
        assert_eq!(snap.counter_total("cn_gen_shard_events_total"), Some(n));
        assert_eq!(snap.counter("cn_gen_merge_events_total"), Some(n));
        // Every shard shipped at least its final partial block.
        for shard in ["0", "1", "2", "3"] {
            let m = snap
                .get("cn_gen_shard_blocks_total", &[("shard", shard)])
                .unwrap_or_else(|| panic!("missing blocks counter for shard {shard}"));
            assert!(matches!(
                m.value,
                cn_obs::MetricValue::Counter { value } if value >= 1
            ));
        }
        // The run-length histogram saw every run, and the runs cover the
        // whole stream.
        let runs = snap.histogram("cn_gen_merge_run_len").expect("run hist");
        assert!(runs.count >= 1);
        assert_eq!(runs.sum, n, "run lengths must cover every record");
        assert_eq!(snap.gauge("cn_gen_shard_mode_parallel"), Some(1));
        assert_eq!(snap.gauge("cn_gen_shard_workers"), Some(4));
        // `count` consumed and dropped the stream, so the worker-exit
        // ledger is written: all four workers completed, none panicked.
        assert_eq!(
            snap.get("cn_gen_worker_exit", &[("outcome", "completed")])
                .map(|m| m.value.clone()),
            Some(cn_obs::MetricValue::Counter { value: 4 })
        );
        assert!(snap
            .get("cn_gen_worker_exit", &[("outcome", "panicked")])
            .is_none());
        assert_eq!(snap.counter_total("cn_gen_shard_panics_total"), None);
    }

    #[test]
    fn observed_inline_counts_and_flags_mode() {
        let models = fitted();
        let config = config();
        let registry = Registry::new();
        let n = ShardedStream::with_shards_observed(&models, &config, 1, &registry).count() as u64;
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cn_gen_merge_events_total"), Some(n));
        // No workers → no per-shard series at all.
        assert_eq!(snap.counter_total("cn_gen_shard_events_total"), None);
        assert_eq!(snap.gauge("cn_gen_shard_mode_parallel"), Some(0));
        assert_eq!(snap.gauge("cn_gen_shard_workers"), Some(0));
    }

    #[test]
    fn observed_inline_flushes_batched_count_on_drop() {
        // The inline path batches its event count; abandoning the stream
        // mid-way must still flush what was actually emitted.
        let models = fitted();
        let config = config();
        let registry = Registry::new();
        let mut stream = ShardedStream::with_shards_observed(&models, &config, 1, &registry);
        let mut taken = 0u64;
        for _ in 0..10 {
            if stream.next().is_none() {
                break;
            }
            taken += 1;
        }
        drop(stream);
        assert_eq!(
            registry.snapshot().counter("cn_gen_merge_events_total"),
            Some(taken)
        );
    }

    #[test]
    fn observed_stream_is_byte_identical_to_unobserved() {
        let models = fitted();
        let config = config();
        let plain: Trace = ShardedStream::with_shards(&models, &config, 3).collect();
        let registry = Registry::new();
        let observed: Trace =
            ShardedStream::with_shards_observed(&models, &config, 3, &registry).collect();
        assert_eq!(observed, plain, "telemetry must never change the stream");
    }

    #[test]
    fn faulting_an_inline_stream_is_refused() {
        // A fault plan that cannot fire would make its test vacuous.
        let models = fitted();
        let config = config();
        let plan = FaultPlan::new().panic_shard_at(0, 1);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ShardedStream::with_shards_faulted(&models, &config, 1, &Registry::disabled(), &plan)
        }));
        assert!(err.is_err(), "inline + non-empty plan must panic");
        // An empty plan is the unfaulted stream, inline path included.
        let n = ShardedStream::with_shards_faulted(
            &models,
            &config,
            1,
            &Registry::disabled(),
            &FaultPlan::new(),
        )
        .count();
        assert_eq!(n, PopulationStream::new(&models, &config).count());
    }

    #[test]
    fn run_prefix_respects_order_and_ties() {
        use cn_trace::{DeviceType, EventType, Timestamp, UeId};
        let rec = |ms: u64| {
            TraceRecord::new(
                Timestamp::from_millis(ms),
                UeId(0),
                DeviceType::Phone,
                EventType::ServiceRequest,
            )
        };
        let rest: Vec<TraceRecord> = [1u64, 3, 5, 7, 9].into_iter().map(rec).collect();
        assert_eq!(run_prefix(&rest, &rec(2), true), 1);
        assert_eq!(run_prefix(&rest, &rec(6), true), 3);
        assert_eq!(run_prefix(&rest, &rec(100), true), 5);
        // An equal record stays in the run only when this shard wins ties.
        assert_eq!(run_prefix(&rest, &rec(5), true), 3);
        assert_eq!(run_prefix(&rest, &rec(5), false), 2);
    }
}
