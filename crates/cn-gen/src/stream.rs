//! Bounded-memory population streaming.
//!
//! [`PopulationStream`] merges one live [`UeEventIter`] per UE into a
//! single globally time-ordered event stream. Memory is O(population)
//! generator states — a few hundred bytes per UE — instead of
//! O(total events): a week of 380K UEs (hundreds of millions of events)
//! can be written straight to disk without ever materializing the trace.
//!
//! Streamed output is *per-UE* identical to the batch API (both drive the
//! same iterator with the same seed), and globally it is the k-way merge
//! of those per-UE streams — i.e. exactly [`crate::generate`]'s output
//! order for the same configuration.

use crate::engine::GenConfig;
use crate::per_ue::UeEventIter;
use cn_fit::ModelSet;
use cn_trace::{TraceRecord, UeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event stream over a whole synthesized population.
pub struct PopulationStream<'m> {
    heap: BinaryHeap<Reverse<(TraceRecord, usize)>>,
    generators: Vec<UeEventIter<'m>>,
}

impl<'m> PopulationStream<'m> {
    /// Create the stream for a generation configuration (same seeds and
    /// semantics as [`crate::generate`]).
    pub fn new(models: &'m ModelSet, config: &GenConfig) -> PopulationStream<'m> {
        let end = config.end();
        let mut generators: Vec<UeEventIter<'m>> = (0..config.population.total())
            .map(|index| {
                let device = config.device_of(index);
                UeEventIter::with_semantics(
                    models.device(device),
                    models.method,
                    UeId(index),
                    config.start,
                    end,
                    crate::engine::ue_stream_seed(config.seed, index),
                    config.semantics,
                )
            })
            .collect();
        let mut heap = BinaryHeap::with_capacity(generators.len());
        for (i, g) in generators.iter_mut().enumerate() {
            if let Some(rec) = g.next() {
                heap.push(Reverse((rec, i)));
            }
        }
        PopulationStream { heap, generators }
    }

    /// Number of UEs that still have events pending.
    pub fn live_ues(&self) -> usize {
        self.heap.len()
    }
}

impl Iterator for PopulationStream<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let Reverse((rec, i)) = self.heap.pop()?;
        if let Some(next) = self.generators[i].next() {
            self.heap.push(Reverse((next, i)));
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Timestamp, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(30, 14, 8), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    #[test]
    fn stream_equals_batch_generation() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(30, 14, 8),
            Timestamp::at_hour(0, 16),
            3.0,
            41,
        );
        let batch = generate(&models, &config);
        let streamed: Trace = PopulationStream::new(&models, &config).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn stream_is_globally_time_ordered() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(20, 8, 5),
            Timestamp::at_hour(0, 10),
            2.0,
            13,
        );
        let mut last: Option<TraceRecord> = None;
        let mut n = 0usize;
        for rec in PopulationStream::new(&models, &config) {
            if let Some(prev) = last {
                assert!(prev <= rec, "{prev:?} then {rec:?}");
            }
            last = Some(rec);
            n += 1;
        }
        assert!(n > 50, "stream produced only {n} events");
    }

    #[test]
    fn live_ues_drains_to_zero() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 12),
            1.0,
            3,
        );
        let mut stream = PopulationStream::new(&models, &config);
        assert!(stream.live_ues() <= 16);
        for _ in stream.by_ref() {}
        assert_eq!(stream.live_ues(), 0);
    }

    #[test]
    fn empty_population_streams_nothing() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        assert_eq!(PopulationStream::new(&models, &config).count(), 0);
    }
}
