//! Bounded-memory population streaming.
//!
//! [`PopulationStream`] merges one live [`UeEventIter`] per UE into a
//! single globally time-ordered event stream. Memory is O(population)
//! generator states — a few hundred bytes per UE — instead of
//! O(total events): a week of 380K UEs (hundreds of millions of events)
//! can be written straight to disk without ever materializing the trace.
//!
//! The merge engine is the struct-of-arrays [`UePool`]
//! (see [`crate::pool`]): a calendar queue over packed `(t_ms, ue)`
//! next-event `u64` keys, bucketed by coarse time with the draining
//! bucket held as a small binary heap, so emitting one record costs a few
//! dense integer compares plus a bucket push — no pointer chase, no
//! allocation. For multi-core throughput see
//! [`crate::shard::ShardedStream`], which runs disjoint UE shards on
//! worker threads and produces the *same* byte-identical stream.
//!
//! Streamed output is *per-UE* identical to the batch API (both drive the
//! same iterator with the same seed), and globally it is the k-way merge
//! of those per-UE streams — i.e. exactly [`crate::generate`]'s output
//! order for the same configuration.

use crate::engine::GenConfig;
use crate::pool::UePool;
use cn_fit::ModelSet;
use cn_trace::TraceRecord;

/// A time-ordered event stream over a whole synthesized population.
pub struct PopulationStream<'m> {
    pool: UePool<'m>,
}

impl<'m> PopulationStream<'m> {
    /// Create the stream for a generation configuration (same seeds and
    /// semantics as [`crate::generate`]).
    pub fn new(models: &'m ModelSet, config: &GenConfig) -> PopulationStream<'m> {
        PopulationStream {
            pool: UePool::new(models, config, 0..config.population.total()),
        }
    }

    /// Number of UEs that still have events pending.
    pub fn live_ues(&self) -> usize {
        self.pool.live()
    }
}

impl Iterator for PopulationStream<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.pool.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HourSemantics;
    use crate::generate;
    use crate::shard::ShardedStream;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::{PopulationMix, Timestamp, Trace};
    use cn_world::{generate_world, WorldConfig};

    fn fitted_with(method: Method) -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(30, 14, 8), 2.0, 5));
        fit(&trace, &FitConfig::new(method))
    }

    fn fitted() -> ModelSet {
        fitted_with(Method::Ours)
    }

    /// The determinism matrix: for every hour semantics (and both state-
    /// machine families), the sequential stream, the batch engine at 1 and
    /// 4 threads, and the sharded parallel stream at 1, 3, and 8 shards
    /// must all produce bit-identical traces.
    #[test]
    fn stream_equals_batch_generation() {
        for method in [Method::Ours, Method::Base] {
            let models = fitted_with(method);
            for semantics in [HourSemantics::EntryHour, HourSemantics::TruncateAtBoundary] {
                let mut config = GenConfig::new(
                    PopulationMix::new(30, 14, 8),
                    Timestamp::at_hour(0, 16),
                    3.0,
                    41,
                );
                config.semantics = semantics;
                let sequential: Trace = PopulationStream::new(&models, &config).collect();
                for threads in [1usize, 4] {
                    config.threads = threads;
                    let batch = generate(&models, &config);
                    assert_eq!(
                        batch, sequential,
                        "{method:?}/{semantics:?}: batch with {threads} threads diverged"
                    );
                }
                for shards in [1usize, 3, 8] {
                    let sharded: Trace =
                        ShardedStream::with_shards(&models, &config, shards).collect();
                    assert_eq!(
                        sharded, sequential,
                        "{method:?}/{semantics:?}: {shards}-shard stream diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_is_globally_time_ordered() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(20, 8, 5),
            Timestamp::at_hour(0, 10),
            2.0,
            13,
        );
        let mut last: Option<TraceRecord> = None;
        let mut n = 0usize;
        for rec in PopulationStream::new(&models, &config) {
            if let Some(prev) = last {
                assert!(prev <= rec, "{prev:?} then {rec:?}");
            }
            last = Some(rec);
            n += 1;
        }
        assert!(n > 50, "stream produced only {n} events");
    }

    #[test]
    fn live_ues_drains_to_zero() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(10, 4, 2),
            Timestamp::at_hour(0, 12),
            1.0,
            3,
        );
        let mut stream = PopulationStream::new(&models, &config);
        assert!(stream.live_ues() <= 16);
        for _ in stream.by_ref() {}
        assert_eq!(stream.live_ues(), 0);
    }

    #[test]
    fn empty_population_streams_nothing() {
        let models = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        assert_eq!(PopulationStream::new(&models, &config).count(), 0);
    }
}
