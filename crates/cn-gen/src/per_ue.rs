//! A single per-UE traffic generator, as a resumable event iterator.
//!
//! [`UeEventIter`] implements the §7 semantics one event at a time, so a
//! population can be synthesized either by materializing each UE
//! ([`generate_ue`]) or by merging hundreds of thousands of live iterators
//! into one time-ordered stream with bounded memory
//! ([`crate::stream::PopulationStream`]).

use crate::engine::HourSemantics;
use cn_fit::{ClusterHourModel, DeviceModels, Method, StateMachineKind};
use cn_statemachine::two_level::{ConnSub, IdleSub};
use cn_statemachine::{BottomTransition, TlState, TopState, TopTransition};
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId, MS_PER_HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hard bound on consecutive silent hours before a generator gives up
/// waiting for a usable model (prevents livelock on pathological models).
const MAX_SILENT_HOURS: u32 = 24 * 14;

/// Generate one UE's events over `[start, end)` using the fitted models of
/// its device type.
///
/// `method` selects the §7 semantics (two-level machine vs EMM–ECM with
/// overlaid HO/TAU processes) and must match the method the models were
/// fitted with.
pub fn generate_ue(
    dm: &DeviceModels,
    method: Method,
    ue: UeId,
    start: Timestamp,
    end: Timestamp,
    seed: u64,
) -> Trace {
    UeEventIter::new(dm, method, ue, start, end, seed).collect()
}

/// As [`generate_ue`] with explicit hour-boundary semantics.
pub fn generate_ue_with(
    dm: &DeviceModels,
    method: Method,
    ue: UeId,
    start: Timestamp,
    end: Timestamp,
    seed: u64,
    semantics: HourSemantics,
) -> Trace {
    UeEventIter::with_semantics(dm, method, ue, start, end, seed, semantics).collect()
}

/// Start of the hour following time `t` (seconds).
fn next_hour_boundary(t_secs: f64) -> f64 {
    let hour_len = (MS_PER_HOUR / 1_000) as f64;
    (t_secs / hour_len).floor() * hour_len + hour_len
}

/// State the two-level machine is in *before* a first event `e`, chosen so
/// that applying `e` is always legal.
fn predecessor(e: EventType) -> TlState {
    match e {
        EventType::Attach => TlState::Deregistered,
        EventType::Detach | EventType::ServiceRequest | EventType::Tau => {
            TlState::Idle(IdleSub::S1RelS1)
        }
        EventType::S1ConnRelease | EventType::Handover => TlState::Connected(ConnSub::SrvReqS),
    }
}

/// Per-method dynamic state of the generator.
enum Mode {
    /// Not yet bootstrapped (first event pending).
    Boot,
    /// Two-level semantics (B2 / Ours).
    TwoLevel {
        state: TlState,
        top_pending: Option<(TopTransition, f64)>,
        top_retry: f64,
        bottom_pending: Option<(BottomTransition, f64)>,
        bottom_retry: f64,
    },
    /// EMM–ECM semantics with overlaid HO/TAU processes (Base / B1).
    EmmEcm {
        state: TopState,
        top_pending: Option<(TopTransition, f64)>,
        top_retry: f64,
        ho_next: Option<f64>,
        ho_retry: f64,
        tau_next: Option<f64>,
        tau_retry: f64,
    },
    /// Exhausted.
    Done,
}

/// A resumable per-UE event generator (see module docs).
pub struct UeEventIter<'m> {
    dm: &'m DeviceModels,
    method: Method,
    device: DeviceType,
    persona: [cn_cluster::ClusterId; 24],
    ue: UeId,
    start: Timestamp,
    end_secs: f64,
    rng: StdRng,
    last_ms: Option<u64>,
    /// Event emitted together with another at the same instant (the idle
    /// TAU-release that must precede a top-level SRV_REQ).
    queued: Option<TraceRecord>,
    mode: Mode,
    guard: u32,
    semantics: HourSemantics,
}

impl<'m> UeEventIter<'m> {
    /// Create a generator for `[start, end)`; identical `(seed, ue)` pairs
    /// yield identical streams.
    pub fn new(
        dm: &'m DeviceModels,
        method: Method,
        ue: UeId,
        start: Timestamp,
        end: Timestamp,
        seed: u64,
    ) -> UeEventIter<'m> {
        Self::with_semantics(dm, method, ue, start, end, seed, HourSemantics::EntryHour)
    }

    /// As [`UeEventIter::new`] with explicit hour-boundary semantics (§7
    /// leaves this open; see [`HourSemantics`]).
    pub fn with_semantics(
        dm: &'m DeviceModels,
        method: Method,
        ue: UeId,
        start: Timestamp,
        end: Timestamp,
        seed: u64,
        semantics: HourSemantics,
    ) -> UeEventIter<'m> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mode = if dm.personas.is_empty() || start >= end {
            Mode::Done
        } else {
            Mode::Boot
        };
        let persona = if dm.personas.is_empty() {
            [cn_cluster::ClusterId(0); 24]
        } else {
            dm.personas[rng.gen_range(0..dm.personas.len())]
        };
        UeEventIter {
            dm,
            method,
            device: dm.device,
            persona,
            ue,
            start,
            end_secs: end.as_millis() as f64 / 1_000.0,
            rng,
            last_ms: None,
            queued: None,
            mode,
            guard: 0,
            semantics,
        }
    }

    /// Under truncating semantics, a fire time past the sampling hour's end
    /// is discarded — the retry machinery then resamples from the next
    /// hour's model at the boundary.
    fn truncate<T>(&self, base: f64, pending: Option<(T, f64)>) -> Option<(T, f64)> {
        match (self.semantics, &pending) {
            (HourSemantics::TruncateAtBoundary, Some((_, fire)))
                if *fire >= next_hour_boundary(base) =>
            {
                None
            }
            _ => pending,
        }
    }

    /// The UE this iterator generates for.
    pub fn ue(&self) -> UeId {
        self.ue
    }

    fn model_at(&self, t_secs: f64) -> &'m ClusterHourModel {
        let hour = Timestamp::from_secs_f64(t_secs).hour_of_day();
        self.dm.hour(hour).cluster(self.persona[hour.index()])
    }

    /// Build the record for an event at `t_secs` with the monotonic-ms
    /// bump; `None` when it falls at/after the end.
    fn stamp(&mut self, t_secs: f64, event: EventType) -> Option<TraceRecord> {
        if t_secs >= self.end_secs {
            return None;
        }
        let mut ms = (t_secs * 1_000.0).round() as u64;
        if let Some(last) = self.last_ms {
            ms = ms.max(last + 1);
        }
        if ms >= (self.end_secs * 1_000.0) as u64 {
            return None;
        }
        self.last_ms = Some(ms);
        Some(TraceRecord::new(
            Timestamp::from_millis(ms),
            self.ue,
            self.device,
            event,
        ))
    }

    /// Bootstrap via the first-event models (§5.4).
    fn first_event(&mut self) -> Option<(EventType, f64)> {
        let mut cursor = self.start.as_millis() as f64 / 1_000.0;
        let hour_len = (MS_PER_HOUR / 1_000) as f64;
        for _ in 0..MAX_SILENT_HOURS {
            if cursor >= self.end_secs {
                return None;
            }
            let model = self.model_at(cursor);
            if let Some((event, offset)) = model.first_event.sample(&mut self.rng) {
                let hour_start = (cursor / hour_len).floor() * hour_len;
                let t = (hour_start + offset).max(cursor);
                if t < self.end_secs && t < hour_start + hour_len {
                    return Some((event, t));
                }
                // Offset fell before a mid-hour start or past the end:
                // treat this hour as silent and move on.
            }
            cursor = next_hour_boundary(cursor);
        }
        None
    }

    fn sample_top(&mut self, s: TopState, base: f64) -> Option<(TopTransition, f64)> {
        let pending = self
            .model_at(base)
            .top
            .sample_next(s, &mut self.rng)
            .map(|(tr, d)| (tr, base + d));
        self.truncate(base, pending)
    }

    /// Arm the second-level timer for a fresh visit to `s`: with the fitted
    /// exit probability the visit is silent (no Category-2 event until the
    /// next top-level move); otherwise the sampled sojourn is conditioned
    /// on landing *before* `top_fire` — the empirical delays were observed
    /// within completed visits, so a free race against an independently
    /// redrawn top sojourn would systematically under-generate HO/TAU.
    fn arm_bottom(
        &mut self,
        s: TlState,
        base: f64,
        top_fire: f64,
    ) -> (Option<(BottomTransition, f64)>, f64) {
        let model = self.model_at(base);
        match model.exit_prob(s) {
            Some(p) if self.rng.gen::<f64>() < p => (None, f64::INFINITY),
            _ => {
                for _ in 0..16 {
                    match model.bottom.sample_next(s, &mut self.rng) {
                        Some((tr, d)) if base + d < top_fire => {
                            let pending = self.truncate(base, Some((tr, base + d)));
                            return match pending {
                                Some(p) => (Some(p), next_hour_boundary(base)),
                                // Truncated: retry at the boundary.
                                None => (None, next_hour_boundary(base)),
                            };
                        }
                        Some(_) => continue,
                        None => return (None, next_hour_boundary(base)),
                    }
                }
                // No draw fits in the residual residence: silent.
                (None, f64::INFINITY)
            }
        }
    }

    /// Sample the next HO/TAU inter-arrival fire time. Draws through a
    /// borrowed distribution — an empirical law here holds its full sample
    /// vector, and this is called once per overlay event, so cloning it
    /// would put a heap allocation + memcpy on the hot path.
    fn sample_gap(&mut self, ho: bool, base: f64) -> Option<f64> {
        let model = self.model_at(base);
        let dist = if ho {
            model.ho_interarrival.as_ref()
        } else {
            model.tau_interarrival.as_ref()
        };
        let pending = dist.map(|d| ((), base + d.sample(&mut self.rng).max(0.0)));
        self.truncate(base, pending).map(|((), fire)| fire)
    }

    /// Bootstrap into the appropriate mode, returning the first record.
    fn boot(&mut self) -> Option<TraceRecord> {
        let Some((first, t0)) = self.first_event() else {
            self.mode = Mode::Done;
            return None;
        };
        let rec = self.stamp(t0, first);
        if rec.is_none() {
            self.mode = Mode::Done;
            return None;
        }
        match self.method.machine() {
            StateMachineKind::TwoLevel => {
                let state = predecessor(first)
                    .apply(first)
                    .expect("predecessor makes the first event legal");
                let top_pending = self.sample_top(state.top(), t0);
                let tf = top_pending.map_or(f64::INFINITY, |(_, t)| t);
                let (bottom_pending, bottom_retry) = self.arm_bottom(state, t0, tf);
                self.mode = Mode::TwoLevel {
                    state,
                    top_pending,
                    top_retry: next_hour_boundary(t0),
                    bottom_pending,
                    bottom_retry,
                };
            }
            StateMachineKind::EmmEcm => {
                let state = match first {
                    EventType::Attach | EventType::ServiceRequest | EventType::Handover => {
                        TopState::Connected
                    }
                    EventType::Detach => TopState::Deregistered,
                    EventType::S1ConnRelease | EventType::Tau => TopState::Idle,
                };
                let top_pending = self.sample_top(state, t0);
                let ho_next = self.sample_gap(true, t0);
                let tau_next = self.sample_gap(false, t0);
                self.mode = Mode::EmmEcm {
                    state,
                    top_pending,
                    top_retry: next_hour_boundary(t0),
                    ho_next,
                    ho_retry: next_hour_boundary(t0),
                    tau_next,
                    tau_retry: next_hour_boundary(t0),
                };
            }
        }
        rec
    }

    /// Advance the two-level machine by one step. `Some(Some(rec))` emits,
    /// `Some(None)` exhausts the stream, `None` made progress without an
    /// emission (caller loops).
    fn step_two_level(&mut self) -> Option<Option<TraceRecord>> {
        let Mode::TwoLevel {
            mut state,
            mut top_pending,
            mut top_retry,
            mut bottom_pending,
            mut bottom_retry,
        } = std::mem::replace(&mut self.mode, Mode::Done)
        else {
            return Some(None);
        };

        // Re-arm empty timers at hour boundaries.
        if top_pending.is_none() {
            if top_retry >= self.end_secs {
                if bottom_pending.is_none() {
                    return Some(None); // done
                }
            } else {
                top_pending = self.sample_top(state.top(), top_retry);
                top_retry = next_hour_boundary(top_retry);
                if top_pending.is_none() {
                    self.guard += 1;
                    if self.guard > MAX_SILENT_HOURS {
                        return Some(None);
                    }
                    self.mode = Mode::TwoLevel {
                        state,
                        top_pending,
                        top_retry,
                        bottom_pending,
                        bottom_retry,
                    };
                    return None;
                }
                self.guard = 0;
            }
        }
        if bottom_pending.is_none() && bottom_retry < self.end_secs {
            let tf = top_pending.map_or(f64::INFINITY, |(_, t)| t);
            let base = bottom_retry;
            (bottom_pending, bottom_retry) = self.arm_bottom(state, base, tf);
            if bottom_pending.is_none() && top_pending.is_none() {
                self.guard += 1;
                if self.guard > MAX_SILENT_HOURS {
                    return Some(None);
                }
                self.mode = Mode::TwoLevel {
                    state,
                    top_pending,
                    top_retry,
                    bottom_pending,
                    bottom_retry,
                };
                return None;
            }
        }

        let top_fire = top_pending.map_or(f64::INFINITY, |(_, t)| t);
        let bottom_fire = bottom_pending.map_or(f64::INFINITY, |(_, t)| t);
        if top_fire == f64::INFINITY && bottom_fire == f64::INFINITY {
            return Some(None);
        }

        let emitted;
        if top_fire <= bottom_fire {
            let (tr, t) = top_pending.take().expect("top fires");
            if t >= self.end_secs {
                return Some(None);
            }
            let event = cn_fit::TransitionLike::trigger(tr);
            // The idle TAU's release must precede a top-level SRV_REQ
            // (Fig. 5's starred edge).
            if state == TlState::Idle(IdleSub::TauSIdle) && event == EventType::ServiceRequest {
                let Some(rel) = self.stamp(t, EventType::S1ConnRelease) else {
                    return Some(None);
                };
                state = TlState::Idle(IdleSub::S1RelS2);
                match self.stamp(t, event) {
                    Some(rec) => self.queued = Some(rec),
                    None => {
                        // Release emitted but the follow-up clipped.
                        self.mode = Mode::Done;
                        return Some(Some(rel));
                    }
                }
                emitted = Some(rel);
            } else {
                let Some(rec) = self.stamp(t, event) else {
                    return Some(None);
                };
                emitted = Some(rec);
            }
            state = state.apply(event).unwrap_or_else(|| {
                TlState::after_event(event, !matches!(state, TlState::Connected(_)))
            });
            top_pending = self.sample_top(state.top(), t);
            top_retry = next_hour_boundary(t);
            let tf = top_pending.map_or(f64::INFINITY, |(_, t)| t);
            (bottom_pending, bottom_retry) = self.arm_bottom(state, t, tf);
        } else {
            let (tr, t) = bottom_pending.take().expect("bottom fires");
            if t >= self.end_secs {
                if top_fire >= self.end_secs {
                    return Some(None);
                }
                self.mode = Mode::TwoLevel {
                    state,
                    top_pending,
                    top_retry,
                    bottom_pending,
                    bottom_retry,
                };
                return None;
            }
            let event = cn_fit::TransitionLike::trigger(tr);
            if let Some(next) = state.apply(event) {
                let Some(rec) = self.stamp(t, event) else {
                    return Some(None);
                };
                state = next;
                emitted = Some(rec);
            } else {
                emitted = None;
            }
            let tf = top_pending.map_or(f64::INFINITY, |(_, t)| t);
            (bottom_pending, bottom_retry) = self.arm_bottom(state, t, tf);
        }

        self.mode = Mode::TwoLevel {
            state,
            top_pending,
            top_retry,
            bottom_pending,
            bottom_retry,
        };
        emitted.map(Some)
    }

    /// Advance the EMM–ECM machine by one step (same convention as
    /// [`Self::step_two_level`]).
    fn step_emm_ecm(&mut self) -> Option<Option<TraceRecord>> {
        let Mode::EmmEcm {
            mut state,
            mut top_pending,
            mut top_retry,
            mut ho_next,
            mut ho_retry,
            mut tau_next,
            mut tau_retry,
        } = std::mem::replace(&mut self.mode, Mode::Done)
        else {
            return Some(None);
        };

        if top_pending.is_none() && top_retry < self.end_secs {
            top_pending = self.sample_top(state, top_retry);
            top_retry = next_hour_boundary(top_retry);
        }
        if ho_next.is_none() && ho_retry < self.end_secs {
            ho_next = self.sample_gap(true, ho_retry);
            ho_retry = next_hour_boundary(ho_retry);
        }
        if tau_next.is_none() && tau_retry < self.end_secs {
            tau_next = self.sample_gap(false, tau_retry);
            tau_retry = next_hour_boundary(tau_retry);
        }

        let top_fire = top_pending.map_or(f64::INFINITY, |(_, t)| t);
        let ho_fire = ho_next.unwrap_or(f64::INFINITY);
        let tau_fire = tau_next.unwrap_or(f64::INFINITY);
        let next = top_fire.min(ho_fire).min(tau_fire);
        if next >= self.end_secs {
            let retries_exhausted = top_retry >= self.end_secs
                && ho_retry >= self.end_secs
                && tau_retry >= self.end_secs;
            if next == f64::INFINITY && !retries_exhausted {
                self.guard += 1;
                if self.guard > MAX_SILENT_HOURS {
                    return Some(None);
                }
                self.mode = Mode::EmmEcm {
                    state,
                    top_pending,
                    top_retry,
                    ho_next,
                    ho_retry,
                    tau_next,
                    tau_retry,
                };
                return None;
            }
            return Some(None);
        }
        self.guard = 0;

        let emitted;
        if next == top_fire {
            let (tr, t) = top_pending.take().expect("top fires");
            let event = cn_fit::TransitionLike::trigger(tr);
            let Some(rec) = self.stamp(t, event) else {
                return Some(None);
            };
            emitted = rec;
            state = state.apply(event).unwrap_or(state);
            top_pending = self.sample_top(state, t);
            top_retry = next_hour_boundary(t);
        } else if next == ho_fire {
            let t = ho_next.take().expect("ho fires");
            // The baseline's defining flaw: HO fires whatever the state.
            let Some(rec) = self.stamp(t, EventType::Handover) else {
                return Some(None);
            };
            emitted = rec;
            ho_next = self.sample_gap(true, t);
            ho_retry = next_hour_boundary(t);
        } else {
            let t = tau_next.take().expect("tau fires");
            let Some(rec) = self.stamp(t, EventType::Tau) else {
                return Some(None);
            };
            emitted = rec;
            tau_next = self.sample_gap(false, t);
            tau_retry = next_hour_boundary(t);
        }

        self.mode = Mode::EmmEcm {
            state,
            top_pending,
            top_retry,
            ho_next,
            ho_retry,
            tau_next,
            tau_retry,
        };
        Some(Some(emitted))
    }
}

impl Iterator for UeEventIter<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if let Some(queued) = self.queued.take() {
            return Some(queued);
        }
        loop {
            let step = match &self.mode {
                Mode::Done => return None,
                Mode::Boot => return self.boot(),
                Mode::TwoLevel { .. } => self.step_two_level(),
                Mode::EmmEcm { .. } => self.step_emm_ecm(),
            };
            match step {
                Some(Some(rec)) => return Some(rec),
                Some(None) => {
                    self.mode = Mode::Done;
                    return None;
                }
                None => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig};
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};

    fn fitted(method: Method) -> cn_fit::ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(40, 20, 12), 2.0, 5));
        fit(&trace, &FitConfig::new(method))
    }

    #[test]
    fn generates_events_within_window() {
        let set = fitted(Method::Ours);
        let start = Timestamp::at_hour(0, 10);
        let end = Timestamp::at_hour(0, 12);
        let mut produced = 0;
        for seed in 0..40 {
            let t = generate_ue(
                set.device(DeviceType::Phone),
                Method::Ours,
                UeId(0),
                start,
                end,
                seed,
            );
            produced += t.len();
            for r in t.iter() {
                assert!(r.t >= start && r.t < end);
                assert_eq!(r.device, DeviceType::Phone);
            }
        }
        assert!(produced > 20, "only {produced} events across 40 UEs");
    }

    #[test]
    fn deterministic_per_seed() {
        let set = fitted(Method::Ours);
        let start = Timestamp::at_hour(0, 9);
        let end = Timestamp::at_hour(0, 11);
        let dm = set.device(DeviceType::ConnectedCar);
        let a = generate_ue(dm, Method::Ours, UeId(3), start, end, 77);
        let b = generate_ue(dm, Method::Ours, UeId(3), start, end, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn two_level_output_is_conformant() {
        use cn_statemachine::replay_ue;
        let set = fitted(Method::Ours);
        let start = Timestamp::at_hour(0, 8);
        let end = Timestamp::at_hour(0, 14);
        for device in DeviceType::ALL {
            for seed in 0..25 {
                let t = generate_ue(set.device(device), Method::Ours, UeId(0), start, end, seed);
                let out = replay_ue(t.records());
                assert!(
                    out.is_conformant(),
                    "{device} seed {seed}: {:?}",
                    out.violations.first()
                );
            }
        }
    }

    #[test]
    fn baseline_generates_ho_in_idle() {
        use cn_statemachine::replay_ue;
        let set = fitted(Method::Base);
        let start = Timestamp::at_hour(0, 8);
        let end = Timestamp::at_hour(0, 16);
        let mut idle_ho = 0usize;
        for seed in 0..60 {
            let t = generate_ue(
                set.device(DeviceType::ConnectedCar),
                Method::Base,
                UeId(0),
                start,
                end,
                seed,
            );
            let out = replay_ue(t.records());
            for (r, ctx) in t.iter().zip(&out.event_context) {
                if r.event == EventType::Handover && *ctx != TopState::Connected {
                    idle_ho += 1;
                }
            }
        }
        assert!(idle_ho > 0, "baseline should mis-place HO events");
    }

    #[test]
    fn empty_models_generate_nothing() {
        let dm = DeviceModels {
            device: DeviceType::Phone,
            personas: Vec::new(),
            hours: (0..24)
                .map(|_| cn_fit::HourModels {
                    clusters: Vec::new(),
                })
                .collect(),
        };
        let t = generate_ue(
            &dm,
            Method::Ours,
            UeId(0),
            Timestamp::at_hour(0, 0),
            Timestamp::at_hour(0, 5),
            1,
        );
        assert!(t.is_empty());
    }

    #[test]
    fn degenerate_window_is_empty() {
        let set = fitted(Method::Ours);
        let t = generate_ue(
            set.device(DeviceType::Phone),
            Method::Ours,
            UeId(0),
            Timestamp::at_hour(0, 5),
            Timestamp::at_hour(0, 5),
            1,
        );
        assert!(t.is_empty());
    }

    #[test]
    fn iterator_yields_time_ordered_events() {
        let set = fitted(Method::Ours);
        for seed in 0..20 {
            let iter = UeEventIter::new(
                set.device(DeviceType::Phone),
                Method::Ours,
                UeId(1),
                Timestamp::at_hour(0, 8),
                Timestamp::at_hour(0, 20),
                seed,
            );
            let events: Vec<TraceRecord> = iter.collect();
            for w in events.windows(2) {
                assert!(w[0].t < w[1].t, "seed {seed}: out of order");
            }
        }
    }

    #[test]
    fn truncating_semantics_is_conformant_and_distinct() {
        use crate::engine::HourSemantics;
        use cn_statemachine::replay_ue;
        let set = fitted(Method::Ours);
        let dm = set.device(DeviceType::Phone);
        let start = Timestamp::at_hour(0, 6);
        let end = Timestamp::at_hour(0, 23);
        let mut differs = false;
        for seed in 0..15 {
            let entry = generate_ue(dm, Method::Ours, UeId(0), start, end, seed);
            let trunc = generate_ue_with(
                dm,
                Method::Ours,
                UeId(0),
                start,
                end,
                seed,
                HourSemantics::TruncateAtBoundary,
            );
            let out = replay_ue(trunc.records());
            assert!(
                out.is_conformant(),
                "seed {seed}: {:?}",
                out.violations.first()
            );
            differs |= entry != trunc;
        }
        assert!(differs, "semantics never changed the output");
    }

    #[test]
    fn iterator_equals_batch_for_same_seed() {
        // `generate_ue` is the iterator collected — assert it stays so.
        let set = fitted(Method::B2);
        let dm = set.device(DeviceType::Tablet);
        let start = Timestamp::at_hour(0, 11);
        let end = Timestamp::at_hour(0, 15);
        let batch = generate_ue(dm, Method::B2, UeId(5), start, end, 31);
        let streamed: Trace = UeEventIter::new(dm, Method::B2, UeId(5), start, end, 31).collect();
        assert_eq!(batch, streamed);
    }
}
