//! Population-scale synthesis: K per-UE generators in parallel.

use crate::per_ue::generate_ue_with;
use cn_fit::ModelSet;
use cn_trace::{DeviceType, PopulationMix, Timestamp, Trace, UeId, MS_PER_HOUR};
use serde::{Deserialize, Serialize};

/// How the per-UE generator treats sojourns that cross hour boundaries —
/// a point §7 of the paper leaves open ("runs the per-hour state machine
/// one after another").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HourSemantics {
    /// Sample the sojourn from the model of the hour the state was
    /// *entered* and keep the absolute fire time (our default: no
    /// truncation artifacts; overnight idles survive intact).
    #[default]
    EntryHour,
    /// Discard fire times beyond the sampling hour and resample from the
    /// next hour's model at the boundary (a stricter reading of "one
    /// after another"; long sojourns become products of hourly survival).
    TruncateAtBoundary,
}

/// Configuration of a synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// How many UEs of each device type to synthesize (design goal 3:
    /// arbitrary population sizes, independent of the modeled population).
    pub population: PopulationMix,
    /// Trace start (its hour-of-day is the paper's "starting hour H").
    pub start: Timestamp,
    /// Trace length in hours.
    pub duration_hours: f64,
    /// Master seed; every UE's stream is a pure function of `(seed, ue)`.
    pub seed: u64,
    /// Worker threads (`0` = all cores).
    pub threads: usize,
    /// Hour-boundary sojourn semantics (see [`HourSemantics`]).
    pub semantics: HourSemantics,
}

impl GenConfig {
    /// A synthesis run for `population` UEs over `duration_hours` starting
    /// at `start`.
    pub fn new(
        population: PopulationMix,
        start: Timestamp,
        duration_hours: f64,
        seed: u64,
    ) -> Self {
        debug_assert!(
            duration_hours.is_finite() && duration_hours >= 0.0,
            "GenConfig duration_hours must be finite and non-negative, got {duration_hours}"
        );
        // Saturate rather than propagate: a NaN/negative/infinite duration
        // means an empty synthesis window, never a garbage end timestamp.
        let duration_hours = if duration_hours.is_finite() {
            duration_hours.max(0.0)
        } else {
            0.0
        };
        GenConfig {
            population,
            start,
            duration_hours,
            seed,
            threads: 0,
            semantics: HourSemantics::EntryHour,
        }
    }

    /// Device type of the synthesized UE at `index` (phones first, then
    /// connected cars, then tablets).
    pub fn device_of(&self, index: u32) -> DeviceType {
        if index < self.population.phones {
            DeviceType::Phone
        } else if index < self.population.phones + self.population.connected_cars {
            DeviceType::ConnectedCar
        } else {
            DeviceType::Tablet
        }
    }

    /// End of the synthesis window. `duration_hours` is a public field, so
    /// a non-finite or non-positive value can reach this point even though
    /// [`GenConfig::new`] saturates: such a duration yields an empty window
    /// (`end == start`), never a garbage timestamp (a bare `as u64` cast
    /// maps NaN to `0` but `+inf` to `u64::MAX`, which would send the
    /// generators off to synthesize forever).
    pub fn end(&self) -> Timestamp {
        let ms = self.duration_hours * MS_PER_HOUR as f64;
        if !ms.is_finite() || ms <= 0.0 {
            return self.start;
        }
        self.start.saturating_add(ms as u64)
    }
}

/// Worker threads / shards to use when a caller asks for "all cores"
/// (`GenConfig::threads == 0`): [`std::thread::available_parallelism`],
/// falling back to **1** when the parallelism cannot be determined
/// (restricted cgroups, exotic platforms).
///
/// The fallback is deliberately conservative. With an unknown core budget
/// the sequential path is always correct and never slower, whereas
/// speculatively spawning workers pays thread, channel, and merge tax for
/// potentially zero parallelism — exactly the regression the adaptive
/// sharded path exists to avoid. Shared by [`generate`],
/// [`crate::ShardedStream::new`], and the tracked benchmark so every
/// "0 = all cores" knob resolves identically.
pub fn effective_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Per-UE stream seed: decorrelated from the master seed via SplitMix64.
/// Shared by the batch engine and [`crate::stream::PopulationStream`] so
/// both produce identical per-UE streams.
pub(crate) fn ue_stream_seed(seed: u64, index: u32) -> u64 {
    splitmix64(seed ^ splitmix64(u64::from(index) + 0x5F0F))
}

/// SplitMix64 seed derivation (decorrelated per-UE seeds).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Synthesize a population trace from a fitted model set (§7).
///
/// ```
/// use cn_fit::{fit, FitConfig, Method};
/// use cn_gen::{generate, GenConfig};
/// use cn_trace::{PopulationMix, Timestamp};
/// use cn_world::{generate_world, WorldConfig};
/// let world = generate_world(&WorldConfig::new(PopulationMix::new(15, 5, 3), 1.0, 7));
/// let models = fit(&world, &FitConfig::new(Method::Ours));
/// // A busy hour for a 4x population — sizes are decoupled (goal 3).
/// let config = GenConfig::new(PopulationMix::new(60, 20, 12), Timestamp::at_hour(0, 18), 1.0, 1);
/// let trace = generate(&models, &config);
/// assert!(trace.iter().all(|r| r.t >= config.start && r.t < config.end()));
/// ```
pub fn generate(models: &ModelSet, config: &GenConfig) -> Trace {
    let total = config.population.total();
    // A NaN duration must take the empty-trace path too, not fall through
    // to the generators (`NaN <= 0.0` is false).
    if total == 0 || config.duration_hours.is_nan() || config.duration_hours <= 0.0 {
        return Trace::new();
    }
    let end = config.end();
    let threads = if config.threads == 0 {
        effective_parallelism()
    } else {
        config.threads
    }
    .min(total as usize)
    .max(1);
    let chunk = total.div_ceil(threads as u32);

    let partial: Vec<Trace> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u32)
            .map(|w| {
                scope.spawn(move |_| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    let mut traces = Vec::new();
                    for index in lo..hi {
                        let device = config.device_of(index);
                        traces.push(generate_ue_with(
                            models.device(device),
                            models.method,
                            UeId(index),
                            config.start,
                            end,
                            ue_stream_seed(config.seed, index),
                            config.semantics,
                        ));
                    }
                    Trace::merge(traces)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generator panicked"))
            .collect()
    })
    .expect("scope panicked");

    Trace::merge(partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_trace::check_well_formed;
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(40, 20, 12), 2.0, 5));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    #[test]
    fn population_trace_is_well_formed() {
        let set = fitted();
        let config = GenConfig::new(
            PopulationMix::new(25, 10, 8),
            Timestamp::at_hour(0, 10),
            2.0,
            9,
        );
        let t = generate(&set, &config);
        assert!(!t.is_empty());
        assert!(check_well_formed(&t).is_empty());
        for r in t.iter() {
            assert_eq!(r.device, config.device_of(r.ue.get()));
            assert!(r.t >= config.start && r.t < config.end());
        }
    }

    #[test]
    fn thread_count_invariant() {
        let set = fitted();
        let mut config = GenConfig::new(
            PopulationMix::new(12, 5, 4),
            Timestamp::at_hour(0, 9),
            1.0,
            3,
        );
        config.threads = 1;
        let a = generate(&set, &config);
        config.threads = 4;
        let b = generate(&set, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_to_larger_population_than_modeled() {
        // Design goal 3: the modeled trace had 72 UEs; synthesize 400.
        let set = fitted();
        let config = GenConfig::new(
            PopulationMix::new(250, 100, 50),
            Timestamp::at_hour(0, 12),
            1.0,
            21,
        );
        let t = generate(&set, &config);
        let active = t.ues().len();
        assert!(active > 150, "only {active} of 400 UEs active");
    }

    #[test]
    fn empty_population_is_empty() {
        let set = fitted();
        let config = GenConfig::new(
            PopulationMix::new(0, 0, 0),
            Timestamp::at_hour(0, 0),
            1.0,
            1,
        );
        assert!(generate(&set, &config).is_empty());
    }
}
