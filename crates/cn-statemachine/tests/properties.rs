//! Property-based tests for the state machines and the replay engine.

use cn_statemachine::two_level::TlState;
use cn_statemachine::{replay_ue, BottomTransition, TopTransition};
use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};
use proptest::prelude::*;

fn rec(t: u64, e: EventType) -> TraceRecord {
    TraceRecord::new(Timestamp::from_millis(t), UeId(0), DeviceType::Phone, e)
}

/// A random *legal* walk through the two-level machine starting from
/// DEREGISTERED, as (time, event) pairs with random gaps.
fn legal_walk() -> impl Strategy<Value = Vec<TraceRecord>> {
    (
        prop::collection::vec((0usize..16, 1u64..100_000), 0..120),
        Just(()),
    )
        .prop_map(|(choices, ())| {
            let mut state = TlState::Deregistered;
            let mut t = 0u64;
            let mut out = Vec::new();
            for (pick, gap) in choices {
                t += gap;
                let legal: Vec<EventType> = EventType::ALL
                    .into_iter()
                    .filter(|&e| state.apply(e).is_some())
                    .collect();
                if legal.is_empty() {
                    break;
                }
                let e = legal[pick % legal.len()];
                state = state.apply(e).expect("chosen legal");
                out.push(rec(t, e));
            }
            out
        })
}

fn arbitrary_stream() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec((1u64..100_000, 0u8..6), 0..120).prop_map(|pairs| {
        let mut t = 0;
        pairs
            .into_iter()
            .map(|(gap, code)| {
                t += gap;
                rec(t, EventType::from_code(code).unwrap())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legal walks replay with zero violations, and every sojourn duration
    /// is consistent with the event gaps.
    #[test]
    fn legal_walks_are_conformant(events in legal_walk()) {
        let out = replay_ue(&events);
        prop_assert!(out.is_conformant(), "violations: {:?}", out.violations);
        prop_assert_eq!(out.event_context.len(), events.len());
        for s in &out.top_sojourns {
            prop_assert!(s.duration_ms > 0);
        }
    }

    /// Replay never panics on arbitrary event soup and recovers after every
    /// violation (the forced state makes the stream continue).
    #[test]
    fn arbitrary_streams_replay_totally(events in arbitrary_stream()) {
        let out = replay_ue(&events);
        prop_assert_eq!(out.event_context.len(), events.len());
        // Segments cover the stream: #segments = #events + 1 (or 0 if empty).
        if events.is_empty() {
            prop_assert!(out.segments.is_empty());
        } else {
            prop_assert_eq!(out.segments.len(), events.len() + 1);
        }
        // Violations + legal moves = all events.
        prop_assert!(out.violations.len() <= events.len());
    }

    /// Replaying twice is deterministic.
    #[test]
    fn replay_is_deterministic(events in arbitrary_stream()) {
        let a = replay_ue(&events);
        let b = replay_ue(&events);
        prop_assert_eq!(a.violations, b.violations);
        prop_assert_eq!(a.top_sojourns.len(), b.top_sojourns.len());
        prop_assert_eq!(a.bottom_sojourns.len(), b.bottom_sojourns.len());
    }

    /// Every emitted sojourn references a transition whose trigger event
    /// actually exists at `enter + duration` in the stream.
    #[test]
    fn sojourns_match_stream_events(events in legal_walk()) {
        let out = replay_ue(&events);
        for s in &out.top_sojourns {
            let fire = s.enter.as_millis() + s.duration_ms;
            prop_assert!(
                events.iter().any(|r| r.t.as_millis() == fire
                    && r.event == TopTransition::event(s.transition)),
                "no {} at {}", TopTransition::event(s.transition), fire
            );
        }
        for s in &out.bottom_sojourns {
            let fire = s.enter.as_millis() + s.duration_ms;
            prop_assert!(
                events.iter().any(|r| r.t.as_millis() == fire
                    && r.event == BottomTransition::event(s.transition)),
                "no {} at {}", BottomTransition::event(s.transition), fire
            );
        }
    }
}
