//! Formal sanity analysis of the encoded machines.
//!
//! Cheap model-checking-style facts about the transition sets: which
//! states are reachable from power-on, whether any non-terminal state is a
//! dead end, and which events can ever fire in which top-level state.
//! These run in tests (the figures *are* the spec) and are available to
//! callers validating custom machine edits.

use crate::fiveg::Sa5gState;
use crate::two_level::TlState;
use cn_trace::EventType;
use std::collections::{BTreeSet, VecDeque};

/// States of the two-level machine reachable from `start` via legal events.
pub fn reachable_from(start: TlState) -> BTreeSet<TlState> {
    let mut seen: BTreeSet<TlState> = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(s) = queue.pop_front() {
        if !seen.insert(s) {
            continue;
        }
        for e in EventType::ALL {
            if let Some(next) = s.apply(e) {
                if !seen.contains(&next) {
                    queue.push_back(next);
                }
            }
        }
    }
    seen
}

/// States with no outgoing legal transition at all (dead ends).
pub fn dead_ends() -> Vec<TlState> {
    TlState::ALL
        .into_iter()
        .filter(|s| EventType::ALL.iter().all(|&e| s.apply(e).is_none()))
        .collect()
}

/// The set of events legal *somewhere* in each top-level context
/// `(connected_events, idle_events)` — the machine-level statement of
/// Table 4's HO/TAU context rules.
pub fn context_events() -> (BTreeSet<EventType>, BTreeSet<EventType>) {
    let mut connected = BTreeSet::new();
    let mut idle = BTreeSet::new();
    for s in TlState::ALL {
        for e in EventType::ALL {
            if s.apply(e).is_some() {
                match s {
                    TlState::Connected(_) => {
                        connected.insert(e);
                    }
                    TlState::Idle(_) => {
                        idle.insert(e);
                    }
                    TlState::Deregistered => {}
                }
            }
        }
    }
    (connected, idle)
}

/// Reachability for the 5G SA machine.
pub fn sa_reachable_from(start: Sa5gState) -> BTreeSet<Sa5gState> {
    let mut seen: BTreeSet<Sa5gState> = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(s) = queue.pop_front() {
        if !seen.insert(s) {
            continue;
        }
        for e in EventType::ALL {
            if let Some(next) = s.apply(e) {
                if !seen.contains(&next) {
                    queue.push_back(next);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_level::{ConnSub, IdleSub};

    #[test]
    fn all_seven_states_reachable_from_power_on() {
        let reachable = reachable_from(TlState::Deregistered);
        assert_eq!(reachable.len(), TlState::ALL.len(), "{reachable:?}");
    }

    #[test]
    fn no_dead_ends() {
        assert!(dead_ends().is_empty(), "{:?}", dead_ends());
    }

    #[test]
    fn every_state_can_return_to_deregistered() {
        // DTCH is reachable from every state: the machine is "shutdown
        // safe" (no state traps a powered-on UE forever).
        for s in TlState::ALL {
            let reach = reachable_from(s);
            assert!(
                reach.contains(&TlState::Deregistered),
                "{s} cannot reach DEREGISTERED"
            );
        }
    }

    #[test]
    fn context_rules_match_the_paper() {
        let (connected, idle) = context_events();
        // HO only in CONNECTED; TAU in both; SRV_REQ only from IDLE.
        assert!(connected.contains(&EventType::Handover));
        assert!(!idle.contains(&EventType::Handover));
        assert!(connected.contains(&EventType::Tau));
        assert!(idle.contains(&EventType::Tau));
        assert!(idle.contains(&EventType::ServiceRequest));
        assert!(!connected.contains(&EventType::ServiceRequest));
        // The idle sub-machine can release (TAU_S_IDLE → S1_REL_S_2).
        assert!(idle.contains(&EventType::S1ConnRelease));
    }

    #[test]
    fn idle_substates_reach_each_other() {
        // The idle TAU chain is fully connected internally.
        for sub in [IdleSub::S1RelS1, IdleSub::TauSIdle, IdleSub::S1RelS2] {
            let reach = reachable_from(TlState::Idle(sub));
            for target in [IdleSub::TauSIdle, IdleSub::S1RelS2] {
                assert!(
                    reach.contains(&TlState::Idle(target)),
                    "{sub:?} → {target:?}"
                );
            }
            assert!(reach.contains(&TlState::Connected(ConnSub::SrvReqS)));
        }
    }

    #[test]
    fn sa_machine_is_fully_reachable_and_tau_free() {
        let reach = sa_reachable_from(Sa5gState::Deregistered);
        assert_eq!(reach.len(), Sa5gState::ALL.len());
    }
}
