//! The EPS Connection Management (ECM) state machine (Fig. 1b).
//!
//! ECM tracks the signaling connectivity between a *registered* UE and the
//! MCN: `SRV_REQ` moves IDLE → CONNECTED, `S1_CONN_REL` moves back.

use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// ECM connection state (defined only while the UE is EMM-REGISTERED).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EcmState {
    /// `ECM_CONNECTED` — a signaling connection exists.
    Connected,
    /// `ECM_IDLE` — no signaling connection.
    Idle,
}

impl EcmState {
    /// Apply a control event. Returns the next state, or `None` if the
    /// event is illegal in this state under the plain ECM machine
    /// (in which `HO` requires CONNECTED and `TAU` is legal in both states).
    pub fn apply(self, event: EventType) -> Option<EcmState> {
        match (self, event) {
            (EcmState::Idle, EventType::ServiceRequest) => Some(EcmState::Connected),
            (EcmState::Connected, EventType::S1ConnRelease) => Some(EcmState::Idle),
            (EcmState::Connected, EventType::ServiceRequest) => None,
            (EcmState::Idle, EventType::S1ConnRelease) => None,
            (EcmState::Connected, EventType::Handover) => Some(EcmState::Connected),
            (EcmState::Idle, EventType::Handover) => None,
            (_, EventType::Tau) => Some(self),
            // ATCH/DTCH are EMM events; the ECM machine is indifferent.
            (_, EventType::Attach) | (_, EventType::Detach) => Some(self),
        }
    }

    /// Paper label (`CONNECTED` / `IDLE`).
    pub fn label(self) -> &'static str {
        match self {
            EcmState::Connected => "CONNECTED",
            EcmState::Idle => "IDLE",
        }
    }
}

impl std::fmt::Display for EcmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_release_cycle() {
        let s = EcmState::Idle.apply(EventType::ServiceRequest).unwrap();
        assert_eq!(s, EcmState::Connected);
        let s = s.apply(EventType::S1ConnRelease).unwrap();
        assert_eq!(s, EcmState::Idle);
    }

    #[test]
    fn handover_requires_connected() {
        assert!(EcmState::Idle.apply(EventType::Handover).is_none());
        assert_eq!(
            EcmState::Connected.apply(EventType::Handover),
            Some(EcmState::Connected)
        );
    }

    #[test]
    fn tau_legal_in_both() {
        assert_eq!(EcmState::Idle.apply(EventType::Tau), Some(EcmState::Idle));
        assert_eq!(
            EcmState::Connected.apply(EventType::Tau),
            Some(EcmState::Connected)
        );
    }

    #[test]
    fn double_service_request_is_illegal() {
        assert!(EcmState::Connected
            .apply(EventType::ServiceRequest)
            .is_none());
        assert!(EcmState::Idle.apply(EventType::S1ConnRelease).is_none());
    }
}
