//! The paper's two-level hierarchical state machine (Fig. 5).
//!
//! The top level is the merged EMM–ECM machine ([`crate::emm_ecm`]). Inside
//! CONNECTED and IDLE, two sub-state machines capture the dependence of the
//! Category-2 events (`HO`, `TAU`):
//!
//! * **CONNECTED sub-machine** — states `SRV_REQ_S`, `HO_S`, `TAU_S_CONN`;
//!   entered at `SRV_REQ_S` (after `SRV_REQ` or `ATCH`). `HO` moves to
//!   `HO_S` (self-looping), `TAU` moves to `TAU_S_CONN` (self-looping).
//! * **IDLE sub-machine** — states `S1_REL_S_1`, `TAU_S_IDLE`,
//!   `S1_REL_S_2`; entered at `S1_REL_S_1` (after the releasing
//!   `S1_CONN_REL`). A `TAU` in idle moves to `TAU_S_IDLE`, after which an
//!   `S1_CONN_REL` *always* follows (releasing the TAU's signaling
//!   resources) moving to `S1_REL_S_2`, from which further `TAU`s may
//!   repeat. Per Fig. 5's starred edge, `SRV_REQ` may leave IDLE only from
//!   `S1_REL_S_1` or `S1_REL_S_2` — never from `TAU_S_IDLE`.
//!
//! The flattened [`TlState`] drives replay; the nine [`BottomTransition`]s
//! are exactly the second-level transitions of the paper's Table 10.

use crate::emm_ecm::TopState;
use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// Sub-state within ECM-CONNECTED.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConnSub {
    /// `SRV_REQ_S` — entered after `SRV_REQ` (or `ATCH`).
    SrvReqS,
    /// `HO_S` — entered after a `HO`.
    HoS,
    /// `TAU_S_CONN` — entered after a `TAU` while connected.
    TauSConn,
}

/// Sub-state within ECM-IDLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IdleSub {
    /// `S1_REL_S_1` — entered by the CONNECTED → IDLE release.
    S1RelS1,
    /// `TAU_S_IDLE` — entered after a `TAU` while idle.
    TauSIdle,
    /// `S1_REL_S_2` — entered by the `S1_CONN_REL` that releases the idle
    /// TAU's signaling resources.
    S1RelS2,
}

/// Flattened state of the two-level machine: the top-level state plus,
/// where applicable, the second-level sub-state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TlState {
    /// `EMM_DEREGISTERED` (no sub-machine).
    Deregistered,
    /// `ECM_CONNECTED` with its sub-state.
    Connected(ConnSub),
    /// `ECM_IDLE` with its sub-state.
    Idle(IdleSub),
}

impl TlState {
    /// All seven flattened states.
    pub const ALL: [TlState; 7] = [
        TlState::Deregistered,
        TlState::Connected(ConnSub::SrvReqS),
        TlState::Connected(ConnSub::HoS),
        TlState::Connected(ConnSub::TauSConn),
        TlState::Idle(IdleSub::S1RelS1),
        TlState::Idle(IdleSub::TauSIdle),
        TlState::Idle(IdleSub::S1RelS2),
    ];

    /// Project to the top-level EMM–ECM state.
    pub fn top(self) -> TopState {
        match self {
            TlState::Deregistered => TopState::Deregistered,
            TlState::Connected(_) => TopState::Connected,
            TlState::Idle(_) => TopState::Idle,
        }
    }

    /// Paper label of the flattened state.
    pub fn label(self) -> &'static str {
        match self {
            TlState::Deregistered => "EMM_DEREGISTERED",
            TlState::Connected(ConnSub::SrvReqS) => "SRV_REQ_S",
            TlState::Connected(ConnSub::HoS) => "HO_S",
            TlState::Connected(ConnSub::TauSConn) => "TAU_S_CONN",
            TlState::Idle(IdleSub::S1RelS1) => "S1_REL_S_1",
            TlState::Idle(IdleSub::TauSIdle) => "TAU_S_IDLE",
            TlState::Idle(IdleSub::S1RelS2) => "S1_REL_S_2",
        }
    }

    /// Apply an event to the two-level machine. Returns the next flattened
    /// state, or `None` if the event is illegal here.
    pub fn apply(self, event: EventType) -> Option<TlState> {
        use ConnSub::*;
        use EventType::*;
        use IdleSub::*;
        use TlState::*;
        match (self, event) {
            // Top-level transitions.
            (Deregistered, Attach) => Some(Connected(SrvReqS)),
            (Connected(_), Detach) => Some(Deregistered),
            (Connected(_), S1ConnRelease) => Some(Idle(S1RelS1)),
            (Idle(_), Detach) => Some(Deregistered),
            // SRV_REQ may leave IDLE only from the S1_REL states (Fig. 5, *).
            (Idle(S1RelS1), ServiceRequest) | (Idle(S1RelS2), ServiceRequest) => {
                Some(Connected(SrvReqS))
            }
            (Idle(TauSIdle), ServiceRequest) => None,
            // CONNECTED sub-machine.
            (Connected(_), Handover) => Some(Connected(HoS)),
            (Connected(_), Tau) => Some(Connected(TauSConn)),
            // IDLE sub-machine.
            (Idle(S1RelS1), Tau) | (Idle(S1RelS2), Tau) => Some(Idle(TauSIdle)),
            (Idle(TauSIdle), S1ConnRelease) => Some(Idle(S1RelS2)),
            (Idle(TauSIdle), Tau) => None, // a release must intervene
            (Idle(S1RelS1), S1ConnRelease) | (Idle(S1RelS2), S1ConnRelease) => None,
            (Idle(_), Handover) => None,
            (Deregistered, _) => None,
            (Connected(_), Attach) | (Connected(_), ServiceRequest) => None,
            (Idle(_), Attach) => None,
        }
    }

    /// The state a UE occupies right after the given event, independent of
    /// the predecessor state — used to infer an initial state when a trace
    /// starts mid-stream. Ambiguous events resolve to the paper's sub-state
    /// semantics ("each state corresponds to the event that happens right
    /// before entering it").
    pub fn after_event(event: EventType, idle_context: bool) -> TlState {
        match event {
            EventType::Attach => TlState::Connected(ConnSub::SrvReqS),
            EventType::Detach => TlState::Deregistered,
            EventType::ServiceRequest => TlState::Connected(ConnSub::SrvReqS),
            EventType::S1ConnRelease => TlState::Idle(IdleSub::S1RelS1),
            EventType::Handover => TlState::Connected(ConnSub::HoS),
            EventType::Tau => {
                if idle_context {
                    TlState::Idle(IdleSub::TauSIdle)
                } else {
                    TlState::Connected(ConnSub::TauSConn)
                }
            }
        }
    }
}

impl std::fmt::Display for TlState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One of the nine second-level transitions (the rows of the paper's
/// Table 10, labeled `outbound-state − trigger-event`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BottomTransition {
    /// `SRV_REQ_S` —`HO`→ `HO_S`.
    SrvReqToHo,
    /// `HO_S` —`HO`→ `HO_S` (self-loop).
    HoToHo,
    /// `TAU_S_CONN` —`HO`→ `HO_S`.
    TauConnToHo,
    /// `SRV_REQ_S` —`TAU`→ `TAU_S_CONN`.
    SrvReqToTauConn,
    /// `TAU_S_CONN` —`TAU`→ `TAU_S_CONN` (self-loop).
    TauConnToTauConn,
    /// `HO_S` —`TAU`→ `TAU_S_CONN`.
    HoToTauConn,
    /// `S1_REL_S_1` —`TAU`→ `TAU_S_IDLE`.
    S1Rel1ToTauIdle,
    /// `S1_REL_S_2` —`TAU`→ `TAU_S_IDLE`.
    S1Rel2ToTauIdle,
    /// `TAU_S_IDLE` —`S1_CONN_REL`→ `S1_REL_S_2`.
    TauIdleToS1Rel2,
}

impl BottomTransition {
    /// All nine second-level transitions, in Table 10 column order.
    pub const ALL: [BottomTransition; 9] = [
        BottomTransition::SrvReqToHo,
        BottomTransition::HoToHo,
        BottomTransition::TauConnToHo,
        BottomTransition::SrvReqToTauConn,
        BottomTransition::TauConnToTauConn,
        BottomTransition::HoToTauConn,
        BottomTransition::S1Rel1ToTauIdle,
        BottomTransition::S1Rel2ToTauIdle,
        BottomTransition::TauIdleToS1Rel2,
    ];

    /// Source flattened state.
    pub fn from(self) -> TlState {
        use BottomTransition::*;
        match self {
            SrvReqToHo | SrvReqToTauConn => TlState::Connected(ConnSub::SrvReqS),
            HoToHo | HoToTauConn => TlState::Connected(ConnSub::HoS),
            TauConnToHo | TauConnToTauConn => TlState::Connected(ConnSub::TauSConn),
            S1Rel1ToTauIdle => TlState::Idle(IdleSub::S1RelS1),
            S1Rel2ToTauIdle => TlState::Idle(IdleSub::S1RelS2),
            TauIdleToS1Rel2 => TlState::Idle(IdleSub::TauSIdle),
        }
    }

    /// Destination flattened state.
    pub fn to(self) -> TlState {
        use BottomTransition::*;
        match self {
            SrvReqToHo | HoToHo | TauConnToHo => TlState::Connected(ConnSub::HoS),
            SrvReqToTauConn | TauConnToTauConn | HoToTauConn => {
                TlState::Connected(ConnSub::TauSConn)
            }
            S1Rel1ToTauIdle | S1Rel2ToTauIdle => TlState::Idle(IdleSub::TauSIdle),
            TauIdleToS1Rel2 => TlState::Idle(IdleSub::S1RelS2),
        }
    }

    /// The triggering event.
    pub fn event(self) -> EventType {
        use BottomTransition::*;
        match self {
            SrvReqToHo | HoToHo | TauConnToHo => EventType::Handover,
            SrvReqToTauConn | TauConnToTauConn | HoToTauConn | S1Rel1ToTauIdle
            | S1Rel2ToTauIdle => EventType::Tau,
            TauIdleToS1Rel2 => EventType::S1ConnRelease,
        }
    }

    /// Look up the transition for a `(state, event)` pair, if it is a legal
    /// second-level move.
    pub fn lookup(from: TlState, event: EventType) -> Option<BottomTransition> {
        BottomTransition::ALL
            .into_iter()
            .find(|t| t.from() == from && t.event() == event)
    }

    /// Transitions leaving the given flattened state.
    pub fn outgoing(from: TlState) -> Vec<BottomTransition> {
        BottomTransition::ALL
            .into_iter()
            .filter(|t| t.from() == from)
            .collect()
    }

    /// Table 10 column label, e.g. `SRV_REQ_S-HO`.
    pub fn label(self) -> &'static str {
        use BottomTransition::*;
        match self {
            SrvReqToHo => "SRV_REQ_S-HO",
            HoToHo => "HO_S-HO",
            TauConnToHo => "TAU_S_C-HO",
            SrvReqToTauConn => "SRV_REQ_S-TAU",
            TauConnToTauConn => "TAU_S_C-TAU",
            HoToTauConn => "HO_S-TAU",
            S1Rel1ToTauIdle => "S1_REL_1-TAU",
            S1Rel2ToTauIdle => "S1_REL_2-TAU",
            TauIdleToS1Rel2 => "TAU_S_I-S1_REL",
        }
    }
}

impl std::fmt::Display for BottomTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_nine_bottom_transitions_and_they_apply() {
        assert_eq!(BottomTransition::ALL.len(), 9);
        for t in BottomTransition::ALL {
            assert_eq!(t.from().apply(t.event()), Some(t.to()), "{t}");
            assert_eq!(BottomTransition::lookup(t.from(), t.event()), Some(t));
        }
    }

    #[test]
    fn attach_enters_srv_req_s() {
        assert_eq!(
            TlState::Deregistered.apply(EventType::Attach),
            Some(TlState::Connected(ConnSub::SrvReqS))
        );
    }

    #[test]
    fn srv_req_only_from_s1_rel_states() {
        // Fig. 5 starred edge.
        assert!(TlState::Idle(IdleSub::S1RelS1)
            .apply(EventType::ServiceRequest)
            .is_some());
        assert!(TlState::Idle(IdleSub::S1RelS2)
            .apply(EventType::ServiceRequest)
            .is_some());
        assert!(TlState::Idle(IdleSub::TauSIdle)
            .apply(EventType::ServiceRequest)
            .is_none());
    }

    #[test]
    fn s1_conn_rel_from_any_connected_substate() {
        for sub in [ConnSub::SrvReqS, ConnSub::HoS, ConnSub::TauSConn] {
            assert_eq!(
                TlState::Connected(sub).apply(EventType::S1ConnRelease),
                Some(TlState::Idle(IdleSub::S1RelS1)),
            );
        }
    }

    #[test]
    fn idle_tau_release_alternation() {
        // S1_REL_S_1 -TAU-> TAU_S_IDLE -S1_REL-> S1_REL_S_2 -TAU-> TAU_S_IDLE.
        let s = TlState::Idle(IdleSub::S1RelS1);
        let s = s.apply(EventType::Tau).unwrap();
        assert_eq!(s, TlState::Idle(IdleSub::TauSIdle));
        assert!(s.apply(EventType::Tau).is_none(), "TAU-TAU without release");
        let s = s.apply(EventType::S1ConnRelease).unwrap();
        assert_eq!(s, TlState::Idle(IdleSub::S1RelS2));
        let s = s.apply(EventType::Tau).unwrap();
        assert_eq!(s, TlState::Idle(IdleSub::TauSIdle));
    }

    #[test]
    fn no_handover_in_idle() {
        for sub in [IdleSub::S1RelS1, IdleSub::TauSIdle, IdleSub::S1RelS2] {
            assert!(TlState::Idle(sub).apply(EventType::Handover).is_none());
        }
    }

    #[test]
    fn connected_ho_tau_interleavings() {
        let s = TlState::Connected(ConnSub::SrvReqS);
        let s = s.apply(EventType::Handover).unwrap();
        assert_eq!(s, TlState::Connected(ConnSub::HoS));
        let s = s.apply(EventType::Handover).unwrap();
        assert_eq!(s, TlState::Connected(ConnSub::HoS));
        let s = s.apply(EventType::Tau).unwrap();
        assert_eq!(s, TlState::Connected(ConnSub::TauSConn));
        let s = s.apply(EventType::Tau).unwrap();
        assert_eq!(s, TlState::Connected(ConnSub::TauSConn));
        let s = s.apply(EventType::Handover).unwrap();
        assert_eq!(s, TlState::Connected(ConnSub::HoS));
    }

    #[test]
    fn top_projection_consistent_with_apply() {
        // Whenever the flattened machine makes a move, the projected top
        // state must agree with the merged EMM–ECM machine — except for the
        // idle TAU-release, which is a *second-level* S1_CONN_REL invisible
        // to the top machine (the two levels run concurrently, §5.1).
        for s in TlState::ALL {
            for e in EventType::ALL {
                if s == TlState::Idle(IdleSub::TauSIdle) && e == EventType::S1ConnRelease {
                    continue;
                }
                if let Some(next) = s.apply(e) {
                    let top_next = s.top().apply(e);
                    assert_eq!(top_next, Some(next.top()), "{s} --{e}--> {next}");
                }
            }
        }
    }

    #[test]
    fn deregistered_only_accepts_attach() {
        for e in EventType::ALL {
            let expect = e == EventType::Attach;
            assert_eq!(TlState::Deregistered.apply(e).is_some(), expect, "{e}");
        }
    }

    #[test]
    fn after_event_lands_in_consistent_state() {
        for e in EventType::ALL {
            for idle in [false, true] {
                let s = TlState::after_event(e, idle);
                // The inferred state must be reachable: some predecessor
                // state applies `e` into it.
                let reachable = TlState::ALL.into_iter().any(|p| p.apply(e) == Some(s));
                assert!(reachable, "{e} idle={idle} → {s}");
            }
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = TlState::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }
}
