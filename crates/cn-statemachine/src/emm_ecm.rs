//! The merged top-level EMM–ECM state machine (§5.1, top level of Fig. 5).
//!
//! Because a UE that transitions DEREGISTERED → REGISTERED always enters
//! CONNECTED at the same time (3GPP attach procedure), the EMM and ECM
//! machines merge into a single three-state machine:
//! DEREGISTERED, CONNECTED, IDLE. This is both the top level of the paper's
//! two-level machine and the *entire* machine of the Base/B1 comparison
//! methods (Table 3).

use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// State of the merged EMM–ECM machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TopState {
    /// `EMM_DEREGISTERED`.
    Deregistered,
    /// `EMM_REGISTERED` + `ECM_CONNECTED`.
    Connected,
    /// `EMM_REGISTERED` + `ECM_IDLE`.
    Idle,
}

impl TopState {
    /// All three states.
    pub const ALL: [TopState; 3] = [TopState::Deregistered, TopState::Connected, TopState::Idle];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            TopState::Deregistered => "DEREGISTERED",
            TopState::Connected => "CONNECTED",
            TopState::Idle => "IDLE",
        }
    }

    /// Apply a **Category-1** event to the merged machine. Returns the next
    /// state, or `None` if illegal. Category-2 events (HO/TAU) do not drive
    /// this machine; passing them returns the current state if they are
    /// legal *in* it (HO needs CONNECTED, TAU needs REGISTERED) and `None`
    /// otherwise.
    pub fn apply(self, event: EventType) -> Option<TopState> {
        use EventType::*;
        use TopState::*;
        match (self, event) {
            (Deregistered, Attach) => Some(Connected),
            (Connected, S1ConnRelease) => Some(Idle),
            (Connected, Detach) => Some(Deregistered),
            (Idle, ServiceRequest) => Some(Connected),
            (Idle, Detach) => Some(Deregistered),
            (Connected, Handover) => Some(Connected),
            (Connected, Tau) => Some(Connected),
            (Idle, Tau) => Some(Idle),
            _ => None,
        }
    }
}

impl std::fmt::Display for TopState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A legal transition of the merged top-level machine.
///
/// These five transitions are the edges of the top level of Fig. 5; the
/// Semi-Markov model attaches a probability and a sojourn-time CDF to each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TopTransition {
    /// DEREGISTERED → CONNECTED on `ATCH`.
    DeregToConn,
    /// CONNECTED → IDLE on `S1_CONN_REL`.
    ConnToIdle,
    /// CONNECTED → DEREGISTERED on `DTCH`.
    ConnToDereg,
    /// IDLE → CONNECTED on `SRV_REQ`.
    IdleToConn,
    /// IDLE → DEREGISTERED on `DTCH`.
    IdleToDereg,
}

impl TopTransition {
    /// All five legal top-level transitions.
    pub const ALL: [TopTransition; 5] = [
        TopTransition::DeregToConn,
        TopTransition::ConnToIdle,
        TopTransition::ConnToDereg,
        TopTransition::IdleToConn,
        TopTransition::IdleToDereg,
    ];

    /// Source state.
    pub fn from(self) -> TopState {
        match self {
            TopTransition::DeregToConn => TopState::Deregistered,
            TopTransition::ConnToIdle | TopTransition::ConnToDereg => TopState::Connected,
            TopTransition::IdleToConn | TopTransition::IdleToDereg => TopState::Idle,
        }
    }

    /// Destination state.
    pub fn to(self) -> TopState {
        match self {
            TopTransition::DeregToConn | TopTransition::IdleToConn => TopState::Connected,
            TopTransition::ConnToIdle => TopState::Idle,
            TopTransition::ConnToDereg | TopTransition::IdleToDereg => TopState::Deregistered,
        }
    }

    /// The event that triggers the transition.
    pub fn event(self) -> EventType {
        match self {
            TopTransition::DeregToConn => EventType::Attach,
            TopTransition::ConnToIdle => EventType::S1ConnRelease,
            TopTransition::ConnToDereg | TopTransition::IdleToDereg => EventType::Detach,
            TopTransition::IdleToConn => EventType::ServiceRequest,
        }
    }

    /// Look up the transition for a `(state, event)` pair, if legal.
    pub fn lookup(from: TopState, event: EventType) -> Option<TopTransition> {
        TopTransition::ALL
            .into_iter()
            .find(|t| t.from() == from && t.event() == event)
    }

    /// Transitions leaving the given state.
    pub fn outgoing(from: TopState) -> Vec<TopTransition> {
        TopTransition::ALL
            .into_iter()
            .filter(|t| t.from() == from)
            .collect()
    }
}

impl std::fmt::Display for TopTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.from().label(), self.event().mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_enters_connected_directly() {
        // §5.1: DEREGISTERED → REGISTERED always lands in CONNECTED.
        assert_eq!(
            TopState::Deregistered.apply(EventType::Attach),
            Some(TopState::Connected)
        );
    }

    #[test]
    fn transitions_agree_with_apply() {
        for t in TopTransition::ALL {
            assert_eq!(t.from().apply(t.event()), Some(t.to()), "{t:?}");
            assert_eq!(TopTransition::lookup(t.from(), t.event()), Some(t));
        }
    }

    #[test]
    fn illegal_pairs_rejected() {
        assert!(TopState::Deregistered
            .apply(EventType::ServiceRequest)
            .is_none());
        assert!(TopState::Deregistered.apply(EventType::Handover).is_none());
        assert!(TopState::Connected.apply(EventType::Attach).is_none());
        assert!(TopState::Connected
            .apply(EventType::ServiceRequest)
            .is_none());
        assert!(TopState::Idle.apply(EventType::S1ConnRelease).is_none());
        assert!(TopState::Idle.apply(EventType::Handover).is_none());
    }

    #[test]
    fn outgoing_edge_counts() {
        assert_eq!(TopTransition::outgoing(TopState::Deregistered).len(), 1);
        assert_eq!(TopTransition::outgoing(TopState::Connected).len(), 2);
        assert_eq!(TopTransition::outgoing(TopState::Idle).len(), 2);
    }

    #[test]
    fn display_labels() {
        assert_eq!(
            TopTransition::ConnToIdle.to_string(),
            "CONNECTED-S1_CONN_REL"
        );
    }
}
