//! Graphviz (DOT) rendering of the state machines.
//!
//! `dot -Tsvg` on the output reproduces Fig. 5 / Fig. 6 of the paper —
//! useful for documentation and for eyeballing that the encoded transition
//! sets really are the figures.

use crate::emm_ecm::TopTransition;
use crate::fiveg::Sa5gState;
use crate::two_level::{BottomTransition, TlState};
use cn_trace::EventType;

/// DOT for the two-level LTE machine (Fig. 5): top-level states as a
/// cluster of boxes, sub-states as ovals inside CONNECTED/IDLE clusters.
pub fn two_level_dot() -> String {
    let mut out =
        String::from("digraph two_level {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n");
    out.push_str("  EMM_DEREGISTERED [shape=box];\n");
    out.push_str("  subgraph cluster_connected {\n    label=\"ECM_CONNECTED\";\n");
    for s in ["SRV_REQ_S", "HO_S", "TAU_S_CONN"] {
        out.push_str(&format!("    {s} [shape=ellipse];\n"));
    }
    out.push_str("  }\n");
    out.push_str("  subgraph cluster_idle {\n    label=\"ECM_IDLE\";\n");
    for s in ["S1_REL_S_1", "TAU_S_IDLE", "S1_REL_S_2"] {
        out.push_str(&format!("    {s} [shape=ellipse];\n"));
    }
    out.push_str("  }\n");

    // Second-level edges, straight from the encoded transition set.
    for t in BottomTransition::ALL {
        out.push_str(&format!(
            "  {} -> {} [label=\"{}\"];\n",
            t.from().label(),
            t.to().label(),
            t.event().mnemonic()
        ));
    }
    // Top-level edges, drawn between representative entry states.
    let rep = |s: TlState| s.label();
    for t in TopTransition::ALL {
        let (from, to) = match t {
            TopTransition::DeregToConn => (
                "EMM_DEREGISTERED",
                rep(TlState::after_event(EventType::Attach, false)),
            ),
            TopTransition::ConnToIdle => ("SRV_REQ_S", "S1_REL_S_1"),
            TopTransition::ConnToDereg => ("SRV_REQ_S", "EMM_DEREGISTERED"),
            TopTransition::IdleToConn => ("S1_REL_S_1", "SRV_REQ_S"),
            TopTransition::IdleToDereg => ("S1_REL_S_1", "EMM_DEREGISTERED"),
        };
        out.push_str(&format!(
            "  {from} -> {to} [label=\"{}\", style=bold];\n",
            t.event().mnemonic()
        ));
    }
    out.push_str("}\n");
    out
}

/// DOT for the adjusted 5G SA machine (Fig. 6).
pub fn fiveg_sa_dot() -> String {
    let mut out =
        String::from("digraph fiveg_sa {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n");
    out.push_str("  \"RM-DEREGISTERED\" [shape=box];\n");
    out.push_str("  \"CM-IDLE\" [shape=box];\n");
    out.push_str("  subgraph cluster_connected {\n    label=\"CM-CONNECTED\";\n");
    out.push_str("    SRV_REQ_S [shape=ellipse];\n    HO_S [shape=ellipse];\n  }\n");
    // Enumerate legal moves of the encoded machine.
    for s in Sa5gState::ALL {
        for e in EventType::ALL {
            if let Some(next) = s.apply(e) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                    s.label(),
                    next.label(),
                    e.mnemonic()
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_dot_contains_all_nine_second_level_edges() {
        let dot = two_level_dot();
        for t in BottomTransition::ALL {
            assert!(
                dot.contains(&format!("{} -> {}", t.from().label(), t.to().label())),
                "missing {t}"
            );
        }
        assert!(dot.contains("EMM_DEREGISTERED"));
        assert!(dot.contains("cluster_idle"));
        // Balanced braces — parseable by graphviz.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn fiveg_dot_has_no_tau() {
        let dot = fiveg_sa_dot();
        assert!(!dot.contains("TAU"));
        assert!(dot.contains("RM-DEREGISTERED"));
        assert!(dot.contains("AN_REL") || dot.contains("S1_CONN_REL"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
