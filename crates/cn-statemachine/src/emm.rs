//! The EPS Mobility Management (EMM) state machine (Fig. 1a).
//!
//! EMM tracks the UE's registration with the mobile core network:
//! `ATCH` moves DEREGISTERED → REGISTERED, `DTCH` moves back.

use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// EMM registration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmmState {
    /// `EMM_DEREGISTERED` — the UE is not registered with the MCN.
    Deregistered,
    /// `EMM_REGISTERED` — the UE is registered with the MCN.
    Registered,
}

impl EmmState {
    /// Apply a control event. Returns the next state, or `None` if the
    /// event is not a legal EMM transition from this state (events that are
    /// not EMM-relevant — everything except ATCH/DTCH — leave the state
    /// unchanged).
    pub fn apply(self, event: EventType) -> Option<EmmState> {
        match (self, event) {
            (EmmState::Deregistered, EventType::Attach) => Some(EmmState::Registered),
            (EmmState::Registered, EventType::Detach) => Some(EmmState::Deregistered),
            (EmmState::Deregistered, EventType::Detach) => None,
            (EmmState::Registered, EventType::Attach) => None,
            // Non-EMM events require registration (a deregistered UE emits
            // nothing else).
            (EmmState::Registered, _) => Some(EmmState::Registered),
            (EmmState::Deregistered, _) => None,
        }
    }

    /// Paper label (`DEREGISTERED` / `REGISTERED`).
    pub fn label(self) -> &'static str {
        match self {
            EmmState::Deregistered => "DEREGISTERED",
            EmmState::Registered => "REGISTERED",
        }
    }
}

impl std::fmt::Display for EmmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_detach_cycle() {
        let s = EmmState::Deregistered;
        let s = s.apply(EventType::Attach).unwrap();
        assert_eq!(s, EmmState::Registered);
        let s = s.apply(EventType::Detach).unwrap();
        assert_eq!(s, EmmState::Deregistered);
    }

    #[test]
    fn double_attach_is_illegal() {
        let s = EmmState::Deregistered.apply(EventType::Attach).unwrap();
        assert!(s.apply(EventType::Attach).is_none());
    }

    #[test]
    fn detach_when_deregistered_is_illegal() {
        assert!(EmmState::Deregistered.apply(EventType::Detach).is_none());
    }

    #[test]
    fn other_events_require_registration() {
        assert!(EmmState::Deregistered.apply(EventType::Handover).is_none());
        assert_eq!(
            EmmState::Registered.apply(EventType::Tau),
            Some(EmmState::Registered)
        );
    }
}
