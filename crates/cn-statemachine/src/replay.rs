//! Replay a per-UE event stream through the two-level machine.
//!
//! Replay serves three purposes in the pipeline:
//!
//! 1. **Sojourn extraction** (§4.1.1, §5.2): walking the trace through the
//!    machine yields, for every legal transition taken, the time spent in
//!    the outbound state — the samples from which the Semi-Markov model's
//!    per-transition CDFs and transition probabilities are estimated.
//! 2. **Protocol conformance**: illegal `(state, event)` pairs are reported
//!    as [`Violation`]s. Traces produced by our own two-level generator
//!    must replay violation-free; traces from the EMM–ECM baselines
//!    generally do not (e.g. `HO` in IDLE), which is exactly what Tables
//!    4/11 measure.
//! 3. **Context attribution**: every event is labeled with the top-level
//!    state it fired in, so evaluation can split `HO`/`TAU` into their
//!    CONNECTED/IDLE contexts.
//!
//! Replay is *lenient*: a violating event is recorded and the machine is
//! forced into the state the event would normally lead to
//! ([`TlState::after_event`]), so one bad event does not cascade. No
//! sojourn samples are emitted for forced moves. Because a trace usually
//! starts mid-stream, the initial state is inferred from the first event
//! and no sojourn is emitted for it (its entry time is unknown).

use crate::emm_ecm::{TopState, TopTransition};
use crate::two_level::{BottomTransition, TlState};
use cn_trace::{EventType, Timestamp, TraceRecord};
use serde::{Deserialize, Serialize};

/// A maximal interval a UE spends in one flattened state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The flattened two-level state.
    pub state: TlState,
    /// When the state was entered (`None` for the inferred initial state).
    pub enter: Option<Timestamp>,
    /// When the state was left (`None` if the trace ends in this state).
    pub exit: Option<Timestamp>,
    /// The event that ended the segment, if any.
    pub out_event: Option<EventType>,
}

/// A sojourn-time observation for one transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SojournSample<T> {
    /// Which transition was taken.
    pub transition: T,
    /// When the outbound state was entered (start of the sojourn).
    pub enter: Timestamp,
    /// Time spent in the outbound state, in milliseconds.
    pub duration_ms: u64,
}

/// An event that was illegal in the state it fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Index of the event within the replayed slice.
    pub index: usize,
    /// The state the machine was in.
    pub state: TlState,
    /// The offending event.
    pub event: EventType,
    /// When it fired.
    pub t: Timestamp,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event #{}: {} illegal in {} at {}",
            self.index, self.event, self.state, self.t
        )
    }
}

/// Everything replay learns from one UE's event stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// State segments in time order.
    pub segments: Vec<Segment>,
    /// Sojourn observations for top-level (EMM–ECM) transitions.
    pub top_sojourns: Vec<SojournSample<TopTransition>>,
    /// Sojourn observations for second-level transitions.
    pub bottom_sojourns: Vec<SojournSample<BottomTransition>>,
    /// Protocol violations encountered (empty for conformant traces).
    pub violations: Vec<Violation>,
    /// For every input event, the top-level state it fired in.
    pub event_context: Vec<TopState>,
    /// Bottom-state visits that ended *without* a second-level transition
    /// (the residence was cut short by a top-level move). These censored
    /// visits are what lets the Semi-Markov fit estimate the probability
    /// that a state visit produces no Category-2 event at all — without
    /// them, a generator would arm an HO/TAU timer on every visit and
    /// flood the trace with Category-2 events.
    pub bottom_censored: Vec<(TlState, Timestamp)>,
}

impl Default for Segment {
    fn default() -> Self {
        Segment {
            state: TlState::Deregistered,
            enter: None,
            exit: None,
            out_event: None,
        }
    }
}

impl ReplayOutcome {
    /// True when the stream replayed with no protocol violations.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A [`Violation`] attributed to the UE whose stream produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UeViolation {
    /// The UE whose stream violated the protocol.
    pub ue: cn_trace::UeId,
    /// The violation itself.
    pub violation: Violation,
}

impl std::fmt::Display for UeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.ue, self.violation)
    }
}

/// Structured conformance diagnostics for a whole population trace —
/// what a caller gets instead of a bare conformant/not-conformant bool.
///
/// Produced by [`replay_trace`]. Besides the verdict it carries every
/// rejection with its UE and `(state, event)` pair, a rejection histogram
/// for quick triage, and the pooled per-transition sojourn samples that
/// model re-fitting needs — so one pass over the trace serves both the
/// conformance gate and the statistical round trip.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopulationReplay {
    /// Number of distinct UEs replayed.
    pub ue_count: usize,
    /// Total number of events replayed.
    pub total_events: usize,
    /// Every protocol violation, with the offending UE.
    pub violations: Vec<UeViolation>,
    /// Pooled top-level sojourn observations across all UEs.
    pub top_sojourns: Vec<SojournSample<TopTransition>>,
    /// Pooled second-level sojourn observations across all UEs.
    pub bottom_sojourns: Vec<SojournSample<BottomTransition>>,
    /// Pooled censored bottom-state visits (see [`ReplayOutcome`]).
    pub bottom_censored: Vec<(TlState, Timestamp)>,
}

impl PopulationReplay {
    /// True when every event of every UE replayed legally.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of events accepted by the machine.
    pub fn accepted_events(&self) -> usize {
        self.total_events - self.violations.len()
    }

    /// Fraction of events the machine accepted (1.0 for an empty trace).
    pub fn acceptance_rate(&self) -> f64 {
        if self.total_events == 0 {
            1.0
        } else {
            self.accepted_events() as f64 / self.total_events as f64
        }
    }

    /// Rejections grouped by `(state, event)`, most frequent first — the
    /// shape of *how* a trace violates the protocol (e.g. all counts on
    /// `(IDLE, HO)` is the EMM–ECM baseline's signature).
    pub fn rejection_histogram(&self) -> Vec<((TlState, EventType), usize)> {
        let mut counts: Vec<((TlState, EventType), usize)> = Vec::new();
        for v in &self.violations {
            let key = (v.violation.state, v.violation.event);
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => counts.push((key, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }

    /// One-line human summary, e.g. for assertion messages.
    pub fn summary(&self) -> String {
        if self.is_conformant() {
            format!(
                "{} events from {} UEs, all conformant",
                self.total_events, self.ue_count
            )
        } else {
            let hist = self.rejection_histogram();
            let head: Vec<String> = hist
                .iter()
                .take(3)
                .map(|((s, e), n)| format!("{n}x {e} in {s}"))
                .collect();
            format!(
                "{}/{} events rejected across {} UEs ({})",
                self.violations.len(),
                self.total_events,
                self.ue_count,
                head.join(", ")
            )
        }
    }
}

/// Replay a time-sorted population trace, one UE at a time, and aggregate
/// the outcomes into a [`PopulationReplay`].
///
/// Events are grouped by UE preserving trace order, so each UE's stream is
/// time-sorted iff the input is (population traces produced by `cn-trace`
/// and `cn-gen` guarantee this).
pub fn replay_trace(records: &[TraceRecord]) -> PopulationReplay {
    use std::collections::HashMap;
    let mut by_ue: HashMap<cn_trace::UeId, Vec<TraceRecord>> = HashMap::new();
    for r in records {
        by_ue.entry(r.ue).or_default().push(*r);
    }
    let mut ues: Vec<cn_trace::UeId> = by_ue.keys().copied().collect();
    ues.sort();

    let mut pop = PopulationReplay {
        ue_count: ues.len(),
        total_events: records.len(),
        ..Default::default()
    };
    for ue in ues {
        let stream = &by_ue[&ue];
        let out = replay_ue(stream);
        pop.violations.extend(
            out.violations
                .into_iter()
                .map(|violation| UeViolation { ue, violation }),
        );
        pop.top_sojourns.extend(out.top_sojourns);
        pop.bottom_sojourns.extend(out.bottom_sojourns);
        pop.bottom_censored.extend(out.bottom_censored);
    }
    pop
}

/// Infer the state a UE must have been in *before* its first event.
fn initial_state_for(first: EventType) -> TlState {
    use crate::two_level::{ConnSub, IdleSub};
    match first {
        EventType::Attach => TlState::Deregistered,
        // A detach, service request, or TAU arriving first most plausibly
        // finds the UE idle; a release or handover requires CONNECTED.
        EventType::Detach | EventType::ServiceRequest | EventType::Tau => {
            TlState::Idle(IdleSub::S1RelS1)
        }
        EventType::S1ConnRelease | EventType::Handover => TlState::Connected(ConnSub::SrvReqS),
    }
}

/// Replay one UE's time-sorted events through the two-level machine.
///
/// ```
/// use cn_statemachine::replay_ue;
/// use cn_trace::{DeviceType, EventType, Timestamp, TraceRecord, UeId};
/// let rec = |t, e| TraceRecord::new(Timestamp::from_secs(t), UeId(0), DeviceType::Phone, e);
/// let events = [
///     rec(0, EventType::Attach),
///     rec(30, EventType::S1ConnRelease),
///     rec(90, EventType::ServiceRequest),
/// ];
/// let out = replay_ue(&events);
/// assert!(out.is_conformant());
/// assert_eq!(out.top_sojourns[0].duration_ms, 30_000); // CONNECTED for 30 s
/// assert_eq!(out.top_sojourns[1].duration_ms, 60_000); // IDLE for 60 s
/// ```
pub fn replay_ue(events: &[TraceRecord]) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    let Some(first) = events.first() else {
        return out;
    };
    let mut state = initial_state_for(first.event);
    // Entry times are unknown until the first transition into a state.
    let mut top_enter: Option<Timestamp> = None;
    let mut sub_enter: Option<Timestamp> = None;
    let mut seg = Segment {
        state,
        enter: None,
        exit: None,
        out_event: None,
    };

    for (index, rec) in events.iter().enumerate() {
        let (event, t) = (rec.event, rec.t);
        out.event_context.push(state.top());
        let next = match state.apply(event) {
            Some(next) => {
                // Emit sojourn samples for legal moves with known entry time.
                if next.top() != state.top() {
                    if let (Some(enter), Some(tr)) =
                        (top_enter, TopTransition::lookup(state.top(), event))
                    {
                        out.top_sojourns.push(SojournSample {
                            transition: tr,
                            enter,
                            duration_ms: t.since(enter),
                        });
                    }
                }
                match BottomTransition::lookup(state, event) {
                    Some(bt) => {
                        if let Some(enter) = sub_enter {
                            out.bottom_sojourns.push(SojournSample {
                                transition: bt,
                                enter,
                                duration_ms: t.since(enter),
                            });
                        }
                    }
                    None => {
                        // A top-level move ended this bottom-state visit:
                        // censored (no Category-2 event this visit).
                        if state != TlState::Deregistered {
                            if let Some(enter) = sub_enter {
                                out.bottom_censored.push((state, enter));
                            }
                        }
                    }
                }
                next
            }
            None => {
                out.violations.push(Violation {
                    index,
                    state,
                    event,
                    t,
                });
                let idle_context = !matches!(state, TlState::Connected(_));
                TlState::after_event(event, idle_context)
            }
        };

        // Close the current segment and open the next one.
        seg.exit = Some(t);
        seg.out_event = Some(event);
        out.segments.push(seg);
        seg = Segment {
            state: next,
            enter: Some(t),
            exit: None,
            out_event: None,
        };

        if next.top() != state.top() {
            top_enter = Some(t);
        }
        sub_enter = Some(t);
        state = next;
    }
    out.segments.push(seg);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_level::{ConnSub, IdleSub};
    use cn_trace::{DeviceType, UeId};

    fn stream(events: &[(u64, EventType)]) -> Vec<TraceRecord> {
        events
            .iter()
            .map(|&(t, e)| {
                TraceRecord::new(Timestamp::from_millis(t), UeId(0), DeviceType::Phone, e)
            })
            .collect()
    }

    #[test]
    fn empty_stream_is_empty_outcome() {
        let out = replay_ue(&[]);
        assert!(out.segments.is_empty());
        assert!(out.is_conformant());
    }

    #[test]
    fn full_lifecycle_is_conformant() {
        use EventType::*;
        let evs = stream(&[
            (0, Attach),
            (1_000, Handover),
            (2_000, Tau),
            (5_000, S1ConnRelease),
            (9_000, Tau),
            (9_500, S1ConnRelease),
            (20_000, ServiceRequest),
            (30_000, S1ConnRelease),
            (60_000, Detach),
        ]);
        let out = replay_ue(&evs);
        assert!(out.is_conformant(), "{:?}", out.violations);
        // Final state: Deregistered.
        assert_eq!(out.segments.last().unwrap().state, TlState::Deregistered);
    }

    #[test]
    fn top_sojourns_measure_connected_and_idle() {
        use EventType::*;
        let evs = stream(&[
            (0, Attach),
            (5_000, S1ConnRelease),   // CONNECTED for 5 s
            (25_000, ServiceRequest), // IDLE for 20 s
            (26_000, S1ConnRelease),  // CONNECTED for 1 s
        ]);
        let out = replay_ue(&evs);
        assert!(out.is_conformant());
        let durations: Vec<(TopTransition, u64)> = out
            .top_sojourns
            .iter()
            .map(|s| (s.transition, s.duration_ms))
            .collect();
        assert_eq!(
            durations,
            vec![
                (TopTransition::ConnToIdle, 5_000),
                (TopTransition::IdleToConn, 20_000),
                (TopTransition::ConnToIdle, 1_000),
            ]
        );
    }

    #[test]
    fn first_event_emits_no_sojourn() {
        use EventType::*;
        // Stream starts mid-connection with a release: entry time unknown.
        let evs = stream(&[(10_000, S1ConnRelease), (40_000, ServiceRequest)]);
        let out = replay_ue(&evs);
        assert!(out.is_conformant());
        // Only the IDLE sojourn (30 s) is measurable.
        assert_eq!(out.top_sojourns.len(), 1);
        assert_eq!(out.top_sojourns[0].transition, TopTransition::IdleToConn);
        assert_eq!(out.top_sojourns[0].duration_ms, 30_000);
    }

    #[test]
    fn bottom_sojourns_include_self_loops() {
        use EventType::*;
        let evs = stream(&[
            (0, Attach),
            (1_000, Handover), // SRV_REQ_S --HO--> HO_S (1s)
            (3_000, Handover), // HO_S --HO--> HO_S (2s)
            (6_000, Tau),      // HO_S --TAU--> TAU_S_CONN (3s)
        ]);
        let out = replay_ue(&evs);
        assert!(out.is_conformant());
        let bt: Vec<(BottomTransition, u64)> = out
            .bottom_sojourns
            .iter()
            .map(|s| (s.transition, s.duration_ms))
            .collect();
        assert_eq!(
            bt,
            vec![
                (BottomTransition::SrvReqToHo, 1_000),
                (BottomTransition::HoToHo, 2_000),
                (BottomTransition::HoToTauConn, 3_000),
            ]
        );
    }

    #[test]
    fn idle_tau_release_chain_sojourns() {
        use EventType::*;
        let evs = stream(&[
            (0, Attach),
            (1_000, S1ConnRelease), // → Idle(S1RelS1)
            (4_000, Tau),           // S1_REL_1 --TAU--> TAU_S_IDLE (3s)
            (4_200, S1ConnRelease), // TAU_S_IDLE --S1_REL--> S1_REL_S_2 (0.2s)
            (9_200, Tau),           // S1_REL_2 --TAU--> TAU_S_IDLE (5s)
        ]);
        let out = replay_ue(&evs);
        assert!(out.is_conformant(), "{:?}", out.violations);
        let bt: Vec<(BottomTransition, u64)> = out
            .bottom_sojourns
            .iter()
            .map(|s| (s.transition, s.duration_ms))
            .collect();
        assert_eq!(
            bt,
            vec![
                (BottomTransition::S1Rel1ToTauIdle, 3_000),
                (BottomTransition::TauIdleToS1Rel2, 200),
                (BottomTransition::S1Rel2ToTauIdle, 5_000),
            ]
        );
        // The idle TAU-release is NOT a top-level transition.
        assert_eq!(out.top_sojourns.len(), 1);
        assert_eq!(out.top_sojourns[0].transition, TopTransition::ConnToIdle);
    }

    #[test]
    fn violations_recorded_and_recovered() {
        use EventType::*;
        // HO while idle — the Base method's classic mistake.
        let evs = stream(&[
            (0, Attach),
            (1_000, S1ConnRelease),
            (2_000, Handover), // illegal in IDLE
            (3_000, S1ConnRelease),
        ]);
        let out = replay_ue(&evs);
        assert_eq!(out.violations.len(), 1);
        let v = out.violations[0];
        assert_eq!(v.index, 2);
        assert_eq!(v.event, Handover);
        assert_eq!(v.state, TlState::Idle(IdleSub::S1RelS1));
        // Forced to HO_S (connected), so the final release is legal again.
        assert_eq!(out.violations.len(), 1);
        assert_eq!(
            out.segments.last().unwrap().state,
            TlState::Idle(IdleSub::S1RelS1)
        );
    }

    #[test]
    fn event_context_attributes_top_state() {
        use EventType::*;
        let evs = stream(&[
            (0, Attach),            // fired in DEREGISTERED
            (1_000, Handover),      // fired in CONNECTED
            (2_000, S1ConnRelease), // fired in CONNECTED
            (3_000, Tau),           // fired in IDLE
        ]);
        let out = replay_ue(&evs);
        assert_eq!(
            out.event_context,
            vec![
                TopState::Deregistered,
                TopState::Connected,
                TopState::Connected,
                TopState::Idle
            ]
        );
    }

    #[test]
    fn initial_state_inference() {
        use EventType::*;
        assert_eq!(initial_state_for(Attach), TlState::Deregistered);
        assert_eq!(
            initial_state_for(Handover),
            TlState::Connected(ConnSub::SrvReqS)
        );
        assert_eq!(
            initial_state_for(ServiceRequest),
            TlState::Idle(IdleSub::S1RelS1)
        );
        // And the inferred states make the first event legal.
        for e in EventType::ALL {
            assert!(initial_state_for(e).apply(e).is_some(), "{e}");
        }
    }

    #[test]
    fn population_replay_aggregates_per_ue() {
        use EventType::*;
        // UE 0 conformant, UE 1 fires HO in IDLE (one violation).
        let mk =
            |t, ue, e| TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e);
        let records = vec![
            mk(0, 0, Attach),
            mk(500, 1, Attach),
            mk(1_000, 0, S1ConnRelease),
            mk(1_500, 1, S1ConnRelease),
            mk(2_000, 1, Handover), // illegal: UE 1 is IDLE
            mk(3_000, 0, ServiceRequest),
        ];
        let pop = replay_trace(&records);
        assert_eq!(pop.ue_count, 2);
        assert_eq!(pop.total_events, 6);
        assert!(!pop.is_conformant());
        assert_eq!(pop.accepted_events(), 5);
        assert!((pop.acceptance_rate() - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(pop.violations.len(), 1);
        assert_eq!(pop.violations[0].ue, UeId(1));
        assert_eq!(pop.violations[0].violation.event, Handover);
        let hist = pop.rejection_histogram();
        assert_eq!(hist, vec![((TlState::Idle(IdleSub::S1RelS1), Handover), 1)]);
        assert!(pop.summary().contains("rejected"));
        // Sojourns pooled from both UEs: each had a measurable CONNECTED
        // sojourn; UE 0 also has a measurable IDLE sojourn.
        assert_eq!(pop.top_sojourns.len(), 3);
    }

    #[test]
    fn population_replay_of_empty_trace() {
        let pop = replay_trace(&[]);
        assert!(pop.is_conformant());
        assert_eq!(pop.acceptance_rate(), 1.0);
        assert_eq!(pop.ue_count, 0);
        assert!(pop.summary().contains("all conformant"));
    }

    #[test]
    fn segment_chain_is_contiguous() {
        use EventType::*;
        let evs = stream(&[(0, Attach), (500, Tau), (900, S1ConnRelease)]);
        let out = replay_ue(&evs);
        assert_eq!(out.segments.len(), 4); // initial + 3 transitions
        for w in out.segments.windows(2) {
            assert_eq!(w[0].exit, w[1].enter);
        }
        assert!(out.segments.last().unwrap().exit.is_none());
    }
}
