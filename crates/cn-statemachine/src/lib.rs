//! 3GPP UE state machines and the paper's two-level hierarchical machine.
//!
//! This crate encodes, as explicit Rust enums with exhaustively enumerated
//! legal transitions:
//!
//! * the base **EMM** and **ECM** machines of Fig. 1 ([`emm`], [`ecm`]);
//! * the merged top-level **EMM–ECM** machine used by the paper's baseline
//!   methods ([`emm_ecm`]);
//! * the paper's contribution, the **two-level hierarchical machine** of
//!   Fig. 5 with its six second-level states and nine second-level
//!   transitions ([`two_level`]);
//! * the adjusted **5G SA** machine of Fig. 6 ([`fiveg`]);
//! * Graphviz renderings of the machines ([`dot`]) for documentation;
//! * a **replay engine** ([`replay`]) that walks a per-UE event stream
//!   through the two-level machine, producing per-transition sojourn-time
//!   samples (the raw material of the Semi-Markov model, §5.2) and protocol
//!   violations (the basis of conformance checking and of attributing
//!   HO/TAU events to an ECM context in Tables 4/11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod ecm;
pub mod emm;
pub mod emm_ecm;
pub mod fiveg;
pub mod replay;
pub mod two_level;

pub use emm_ecm::{TopState, TopTransition};
pub use replay::{
    replay_trace, replay_ue, PopulationReplay, ReplayOutcome, Segment, SojournSample, UeViolation,
    Violation,
};
pub use two_level::{BottomTransition, ConnSub, IdleSub, TlState};
