//! The adjusted two-level state machine for 5G SA (Fig. 6).
//!
//! 5G SA has a one-to-one mapping of every primary event type and UE state
//! with LTE *except* TAU, which has no 5G counterpart (Table 2). Removing
//! the TAU states and transitions from Fig. 5 yields this machine:
//! RM-DEREGISTERED, CM-CONNECTED (sub-states `SRV_REQ_S`, `HO_S`) and
//! CM-IDLE (no sub-structure left once the TAU chain is gone).
//!
//! The machine operates on the LTE [`EventType`] vocabulary — the 4G↔5G
//! *renaming* (ATCH→REGISTER, S1_CONN_REL→AN_REL, …) is applied by
//! `cn-fivegee::mapping` at output time; `TAU` is simply illegal here.
//!
//! 5G NSA runs on LTE's core, shares LTE's event types, and therefore uses
//! the unmodified two-level machine of [`crate::two_level`] (§6, footnote).

use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// Sub-state within CM-CONNECTED for 5G SA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConnSub5g {
    /// `SRV_REQ_S` — entered after `SRV_REQ` (or `REGISTER`).
    SrvReqS,
    /// `HO_S` — entered after a `HO`.
    HoS,
}

/// Flattened state of the 5G SA machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sa5gState {
    /// `RM-DEREGISTERED`.
    Deregistered,
    /// `CM-CONNECTED` with its sub-state.
    Connected(ConnSub5g),
    /// `CM-IDLE` (no sub-states in 5G SA).
    Idle,
}

impl Sa5gState {
    /// All four flattened states.
    pub const ALL: [Sa5gState; 4] = [
        Sa5gState::Deregistered,
        Sa5gState::Connected(ConnSub5g::SrvReqS),
        Sa5gState::Connected(ConnSub5g::HoS),
        Sa5gState::Idle,
    ];

    /// Apply an event (LTE vocabulary; `Tau` is always illegal).
    pub fn apply(self, event: EventType) -> Option<Sa5gState> {
        use EventType::*;
        use Sa5gState::*;
        match (self, event) {
            (Deregistered, Attach) => Some(Connected(ConnSub5g::SrvReqS)),
            (Connected(_), Detach) => Some(Deregistered),
            (Connected(_), S1ConnRelease) => Some(Idle),
            (Connected(_), Handover) => Some(Connected(ConnSub5g::HoS)),
            (Idle, ServiceRequest) => Some(Connected(ConnSub5g::SrvReqS)),
            (Idle, Detach) => Some(Deregistered),
            (_, Tau) => None,
            _ => None,
        }
    }

    /// The state a UE occupies right after the given event, independent of
    /// the predecessor state — the SA analogue of
    /// [`crate::TlState::after_event`], used to infer an initial state when
    /// a trace starts mid-stream (a UE's first event of the window need not
    /// be a registration). `None` for `Tau`, which has no SA counterpart.
    pub fn after_event(event: EventType) -> Option<Sa5gState> {
        match event {
            EventType::Attach | EventType::ServiceRequest => {
                Some(Sa5gState::Connected(ConnSub5g::SrvReqS))
            }
            EventType::Handover => Some(Sa5gState::Connected(ConnSub5g::HoS)),
            EventType::S1ConnRelease => Some(Sa5gState::Idle),
            EventType::Detach => Some(Sa5gState::Deregistered),
            EventType::Tau => None,
        }
    }

    /// 5G label of the state (Table 2 vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Sa5gState::Deregistered => "RM-DEREGISTERED",
            Sa5gState::Connected(ConnSub5g::SrvReqS) => "SRV_REQ_S",
            Sa5gState::Connected(ConnSub5g::HoS) => "HO_S",
            Sa5gState::Idle => "CM-IDLE",
        }
    }
}

impl std::fmt::Display for Sa5gState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_never_legal() {
        for s in Sa5gState::ALL {
            assert!(s.apply(EventType::Tau).is_none(), "{s}");
        }
    }

    #[test]
    fn register_release_cycle() {
        let s = Sa5gState::Deregistered.apply(EventType::Attach).unwrap();
        assert_eq!(s, Sa5gState::Connected(ConnSub5g::SrvReqS));
        let s = s.apply(EventType::Handover).unwrap();
        assert_eq!(s, Sa5gState::Connected(ConnSub5g::HoS));
        let s = s.apply(EventType::Handover).unwrap();
        assert_eq!(s, Sa5gState::Connected(ConnSub5g::HoS));
        let s = s.apply(EventType::S1ConnRelease).unwrap();
        assert_eq!(s, Sa5gState::Idle);
        let s = s.apply(EventType::ServiceRequest).unwrap();
        assert_eq!(s, Sa5gState::Connected(ConnSub5g::SrvReqS));
        let s = s.apply(EventType::Detach).unwrap();
        assert_eq!(s, Sa5gState::Deregistered);
    }

    #[test]
    fn idle_has_no_substructure() {
        assert!(Sa5gState::Idle.apply(EventType::S1ConnRelease).is_none());
        assert!(Sa5gState::Idle.apply(EventType::Handover).is_none());
    }

    #[test]
    fn mirrors_two_level_machine_minus_tau() {
        // Every legal 5G SA move must also be legal in the LTE two-level
        // machine (after mapping CM-IDLE to IDLE/S1_REL_S_1).
        use crate::two_level::{ConnSub, IdleSub, TlState};
        let map = |s: Sa5gState| match s {
            Sa5gState::Deregistered => TlState::Deregistered,
            Sa5gState::Connected(ConnSub5g::SrvReqS) => TlState::Connected(ConnSub::SrvReqS),
            Sa5gState::Connected(ConnSub5g::HoS) => TlState::Connected(ConnSub::HoS),
            Sa5gState::Idle => TlState::Idle(IdleSub::S1RelS1),
        };
        for s in Sa5gState::ALL {
            for e in EventType::ALL {
                if let Some(next) = s.apply(e) {
                    let lte_next = map(s).apply(e);
                    assert_eq!(lte_next, Some(map(next)), "{s} --{e}--> {next}");
                }
            }
        }
    }
}
