//! Calibration diagnostics: how close is the simulated world's event
//! breakdown to the paper's Table 1 shape?
//!
//! The shape requirements (these are asserted): SRV_REQ/S1_CONN_REL
//! dominate (> 80% combined), releases ≥ requests, connected cars have the
//! largest HO and TAU shares, ATCH/DTCH are small, and cars' ATCH share
//! exceeds phones'. The `print_breakdown` test (ignored by default) dumps
//! the full table for manual tuning:
//! `cargo test -p cn-world --test calibration -- --ignored --nocapture`

use cn_trace::{DeviceType, EventType, PopulationMix};
use cn_world::{generate_world, WorldConfig};

fn breakdown(days: f64, seed: u64) -> [[f64; 6]; 3] {
    let config = WorldConfig::new(PopulationMix::new(120, 60, 40), days, seed);
    let trace = generate_world(&config);
    let mut counts = [[0usize; 6]; 3];
    for r in trace.iter() {
        counts[r.device.code() as usize][r.event.code() as usize] += 1;
    }
    let mut shares = [[0f64; 6]; 3];
    for d in 0..3 {
        let total: usize = counts[d].iter().sum();
        for e in 0..6 {
            shares[d][e] = counts[d][e] as f64 / total.max(1) as f64;
        }
    }
    shares
}

#[test]
fn breakdown_shape_matches_table1() {
    let shares = breakdown(3.0, 2024);
    let idx = |e: EventType| e.code() as usize;
    for device in DeviceType::ALL {
        let s = shares[device.code() as usize];
        let dominant = s[idx(EventType::ServiceRequest)] + s[idx(EventType::S1ConnRelease)];
        assert!(dominant > 0.75, "{device}: SRV+REL share {dominant}");
        assert!(
            s[idx(EventType::S1ConnRelease)] >= s[idx(EventType::ServiceRequest)] - 0.01,
            "{device}: REL {} < SRV {}",
            s[idx(EventType::S1ConnRelease)],
            s[idx(EventType::ServiceRequest)]
        );
        assert!(
            s[idx(EventType::Attach)] < 0.05,
            "{device}: ATCH {}",
            s[idx(EventType::Attach)]
        );
        assert!(
            s[idx(EventType::Detach)] < 0.07,
            "{device}: DTCH {}",
            s[idx(EventType::Detach)]
        );
    }
    let ho = |d: DeviceType| shares[d.code() as usize][idx(EventType::Handover)];
    let tau = |d: DeviceType| shares[d.code() as usize][idx(EventType::Tau)];
    assert!(
        ho(DeviceType::ConnectedCar) > ho(DeviceType::Phone),
        "car HO ≤ phone HO"
    );
    assert!(
        ho(DeviceType::Phone) > ho(DeviceType::Tablet),
        "phone HO ≤ tablet HO"
    );
    assert!(
        tau(DeviceType::ConnectedCar) > tau(DeviceType::Phone),
        "car TAU ≤ phone TAU"
    );
    assert!(
        shares[DeviceType::ConnectedCar.code() as usize][idx(EventType::Attach)]
            > shares[DeviceType::Phone.code() as usize][idx(EventType::Attach)],
        "car ATCH ≤ phone ATCH"
    );
}

#[test]
#[ignore = "diagnostic table dump for manual calibration"]
fn print_breakdown() {
    let shares = breakdown(7.0, 2024);
    println!(
        "{:<14} {:>7} {:>7} {:>8} {:>12} {:>7} {:>7}",
        "device", "ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU"
    );
    for device in DeviceType::ALL {
        let s = shares[device.code() as usize];
        println!(
            "{:<14} {:>6.1}% {:>6.1}% {:>7.1}% {:>11.1}% {:>6.1}% {:>6.1}%",
            device.abbrev(),
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            s[3] * 100.0,
            s[4] * 100.0,
            s[5] * 100.0
        );
    }
    println!("paper Table 1:");
    println!("P   0.1% 0.2% 45.5% 47.5% 3.8% 2.9%");
    println!("CC  0.9% 0.9% 38.9% 45.2% 6.6% 7.4%");
    println!("T   1.2% 1.1% 43.9% 47.7% 2.1% 4.0%");
}
