//! Property-based tests for the ground-truth world simulator.

use cn_statemachine::replay_ue;
use cn_trace::{check_well_formed, PopulationMix};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = WorldConfig> {
    (1u32..15, 0u32..8, 0u32..6, 1u64..10_000, 1u32..73).prop_map(|(p, c, t, seed, hours)| {
        WorldConfig::new(PopulationMix::new(p, c, t), f64::from(hours) / 24.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every simulated world is structurally well-formed and every per-UE
    /// stream walks the two-level machine without violations.
    #[test]
    fn worlds_are_conformant(config in arb_config()) {
        let world = generate_world(&config);
        prop_assert!(check_well_formed(&world).is_empty());
        for (ue, events) in world.per_ue().iter() {
            let out = replay_ue(events);
            prop_assert!(
                out.is_conformant(),
                "{ue}: {:?}", out.violations.first()
            );
            // Per-UE strictly increasing timestamps.
            prop_assert!(events.windows(2).all(|w| w[0].t < w[1].t));
        }
    }

    /// Worlds stay within their horizon and their population layout.
    #[test]
    fn worlds_respect_horizon_and_layout(config in arb_config()) {
        let world = generate_world(&config);
        let horizon_ms = (config.days * 86_400_000.0) as u64;
        for r in world.iter() {
            prop_assert!(r.t.as_millis() < horizon_ms);
            prop_assert!(r.ue.get() < config.mix.total());
            prop_assert_eq!(r.device, config.device_of(r.ue.get()));
        }
    }

    /// Simulation is a pure function of the configuration.
    #[test]
    fn worlds_are_deterministic(config in arb_config()) {
        prop_assert_eq!(generate_world(&config), generate_world(&config));
    }
}
