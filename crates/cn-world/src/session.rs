//! Session-process sampling: clumpy arrivals and mixture durations.

use crate::profile::SessionProfile;
use cn_trace::{Timestamp, MS_PER_HOUR};
use rand::Rng;

/// Upper bound on how far ahead the piecewise sampler will search before
/// giving up (all-zero rates); 60 days in seconds.
const MAX_LOOKAHEAD_SECS: f64 = 60.0 * 86_400.0;

/// Draw the waiting time (seconds) until the next arrival of a Poisson
/// process whose rate is piecewise-constant per 1-hour slot.
///
/// `rate_per_hour(t)` gives the hourly rate in effect at time `t` (the
/// callee may consult hour-of-day *and* day-of-week). This is the exact
/// inversion method for non-homogeneous exponentials with piecewise
/// constant rate. Returns `None` when no arrival occurs within the
/// lookahead window (effectively-zero rates).
pub fn piecewise_exp_gap<R: Rng + ?Sized, F: Fn(Timestamp) -> f64>(
    now_secs: f64,
    rate_per_hour: F,
    rng: &mut R,
) -> Option<f64> {
    let hour_secs = (MS_PER_HOUR / 1_000) as f64;
    // Exponential "work" to accumulate, in units of (rate × time).
    let mut budget = -(1.0f64 - rng.gen::<f64>()).ln();
    let mut t = now_secs;
    while t - now_secs < MAX_LOOKAHEAD_SECS {
        let rate = rate_per_hour(Timestamp::from_secs_f64(t)).max(0.0) / hour_secs; // per second
        let boundary = (t / hour_secs).floor() * hour_secs + hour_secs;
        let span = boundary - t;
        if rate > 0.0 {
            let need = budget / rate;
            if need <= span {
                return Some(t + need - now_secs);
            }
            budget -= rate * span;
        }
        t = boundary;
    }
    None
}

/// Draw the gap (seconds) from the end of the previous session to the start
/// of the next: a short in-clump gap with probability `burst_prob`, else a
/// diurnally-modulated background gap.
pub fn next_session_gap<R: Rng + ?Sized>(
    profile: &SessionProfile,
    now_secs: f64,
    rate_multiplier: impl Fn(Timestamp) -> f64,
    rng: &mut R,
) -> Option<f64> {
    if rng.gen::<f64>() < profile.burst_prob {
        Some(profile.burst_gap.sample(rng))
    } else {
        piecewise_exp_gap(
            now_secs,
            |t| profile.base_rate_per_hour * rate_multiplier(t),
            rng,
        )
    }
}

/// Draw one session duration (seconds) from the profile's mixture.
pub fn sample_duration<R: Rng + ?Sized>(profile: &SessionProfile, rng: &mut R) -> f64 {
    let total: f64 = profile.durations.iter().map(|(w, _)| w).sum();
    let mut pick = rng.gen::<f64>() * total;
    for (w, dist) in &profile.durations {
        pick -= w;
        if pick <= 0.0 {
            return dist.sample(rng).max(0.1);
        }
    }
    // Floating-point fallthrough: use the last component.
    profile
        .durations
        .last()
        .expect("non-empty mixture")
        .1
        .sample(rng)
        .max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use cn_trace::DeviceType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn piecewise_gap_matches_constant_rate() {
        // With a flat rate the piecewise sampler must behave like a plain
        // exponential: mean gap = 1/rate.
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 6.0; // per hour
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| piecewise_exp_gap(0.0, |_| rate, &mut rng).unwrap())
            .sum::<f64>()
            / n as f64;
        let expected = 3_600.0 / rate;
        assert!((mean - expected).abs() / expected < 0.03, "mean {mean}");
    }

    #[test]
    fn piecewise_gap_skips_dead_hours() {
        // Rate is zero except during hour 5: every arrival starting from
        // hour 0 must land inside hour 5.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let gap = piecewise_exp_gap(
                0.0,
                |t| {
                    if t.hour_of_day().get() == 5 {
                        100.0
                    } else {
                        0.0
                    }
                },
                &mut rng,
            )
            .unwrap();
            let t = gap; // started at 0
            let hour = (t / 3_600.0) as u64 % 24;
            assert_eq!(hour, 5, "arrival at t={t}");
        }
    }

    #[test]
    fn all_zero_rate_returns_none() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(piecewise_exp_gap(0.0, |_| 0.0, &mut rng).is_none());
    }

    #[test]
    fn gap_respects_start_offset() {
        // Starting mid-hour-4 with rate only in hour 5: gap < 2 hours.
        let mut rng = StdRng::seed_from_u64(6);
        let start = 4.0 * 3_600.0 + 1_800.0;
        let gap = piecewise_exp_gap(
            start,
            |t| {
                if t.hour_of_day().get() == 5 {
                    1_000.0
                } else {
                    0.0
                }
            },
            &mut rng,
        )
        .unwrap();
        assert!(gap > 1_700.0 && gap < 2.0 * 3_600.0, "gap {gap}");
    }

    #[test]
    fn durations_positive_and_heavy_tailed() {
        let p = DeviceProfile::preset(DeviceType::Phone);
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| sample_duration(&p.session, &mut rng))
            .collect();
        assert!(samples.iter().all(|&d| d > 0.0));
        let max = samples.iter().copied().fold(0.0, f64::max);
        // The Pareto tail should reach well past 1000 s in 50k draws.
        assert!(max > 1_000.0, "max {max}");
        // ... while the median stays modest (body of the mixture).
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(median < 60.0, "median {median}");
    }

    #[test]
    fn burst_prob_produces_short_gaps() {
        let p = DeviceProfile::preset(DeviceType::Phone);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 10_000;
        let gaps: Vec<f64> = (0..n)
            .filter_map(|_| next_session_gap(&p.session, 12.0 * 3_600.0, |_| 1.0, &mut rng))
            .collect();
        let short = gaps.iter().filter(|&&g| g < 120.0).count() as f64 / gaps.len() as f64;
        // At least the burst fraction of gaps is short.
        assert!(short > 0.3, "short fraction {short}");
    }
}
