//! Population-scale world generation.
//!
//! Simulates every UE of a [`PopulationMix`] independently (the paper's UEs
//! are i.i.d. given their type, §4.1.1) and merges the per-UE streams into
//! one time-sorted trace. UEs are partitioned across worker threads; each
//! UE derives its own RNG seed from the world seed, so results are
//! identical regardless of thread count.

use crate::profile::DeviceProfile;
use cn_trace::{DeviceType, PopulationMix, Trace, UeId};
use serde::{Deserialize, Serialize};

/// Configuration of a ground-truth world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// How many UEs of each device type to simulate.
    pub mix: PopulationMix,
    /// Trace length in days (day 0 starts at midnight, t = 0).
    pub days: f64,
    /// Master seed; every UE's stream is a pure function of
    /// `(seed, ue_index)`.
    pub seed: u64,
    /// Per-device behavioral profiles, indexed by [`DeviceType::code`].
    pub profiles: Vec<DeviceProfile>,
    /// Number of worker threads (`0` = all available cores).
    pub threads: usize,
}

impl WorldConfig {
    /// A world with preset profiles for the given population and length.
    pub fn new(mix: PopulationMix, days: f64, seed: u64) -> WorldConfig {
        WorldConfig {
            mix,
            days,
            seed,
            profiles: DeviceProfile::all_presets().to_vec(),
            threads: 0,
        }
    }

    /// Serialize the full world configuration (profiles included) to JSON
    /// — a reproducible description of a synthetic "carrier".
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Load a world configuration from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<WorldConfig> {
        serde_json::from_str(json)
    }

    /// Device type of the UE at `index` (phones first, then connected
    /// cars, then tablets — matching [`PopulationMix`] order).
    pub fn device_of(&self, index: u32) -> DeviceType {
        if index < self.mix.phones {
            DeviceType::Phone
        } else if index < self.mix.phones + self.mix.connected_cars {
            DeviceType::ConnectedCar
        } else {
            DeviceType::Tablet
        }
    }
}

/// SplitMix64 — derives decorrelated per-UE seeds from the master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-UE seed for a world.
pub fn ue_seed(world_seed: u64, ue_index: u32) -> u64 {
    splitmix64(world_seed ^ splitmix64(u64::from(ue_index).wrapping_add(0xA5A5_5A5A)))
}

/// Generate the world trace.
///
/// # Panics
/// Panics if `profiles` does not cover all three device types.
pub fn generate_world(config: &WorldConfig) -> Trace {
    let total = config.mix.total();
    if total == 0 || config.days <= 0.0 {
        return Trace::new();
    }
    for device in DeviceType::ALL {
        assert!(
            config
                .profiles
                .get(device.code() as usize)
                .is_some_and(|p| p.device == device),
            "profiles must be indexed by device code"
        );
    }
    let horizon_secs = config.days * 86_400.0;
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        config.threads
    }
    .min(total as usize)
    .max(1);

    let chunk = total.div_ceil(threads as u32);
    let partial: Vec<Trace> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u32)
            .map(|w| {
                let config = &config;
                scope.spawn(move |_| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(total);
                    let mut traces = Vec::new();
                    for index in lo..hi {
                        let device = config.device_of(index);
                        let profile = &config.profiles[device.code() as usize];
                        traces.push(crate::ue::simulate_ue(
                            UeId(index),
                            profile,
                            horizon_secs,
                            ue_seed(config.seed, index),
                        ));
                    }
                    Trace::merge(traces)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    Trace::merge(partial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::check_well_formed;

    fn tiny_config(seed: u64, threads: usize) -> WorldConfig {
        let mut c = WorldConfig::new(PopulationMix::new(12, 6, 4), 1.0, seed);
        c.threads = threads;
        c
    }

    #[test]
    fn empty_population_or_zero_days() {
        let c = WorldConfig::new(PopulationMix::new(0, 0, 0), 1.0, 1);
        assert!(generate_world(&c).is_empty());
        let c = WorldConfig::new(PopulationMix::new(5, 0, 0), 0.0, 1);
        assert!(generate_world(&c).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let a = generate_world(&tiny_config(99, 1));
        let b = generate_world(&tiny_config(99, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn world_is_well_formed_and_covers_population() {
        let c = tiny_config(7, 0);
        let t = generate_world(&c);
        assert!(check_well_formed(&t).is_empty());
        // Nearly every UE should emit something in a full day.
        let ues = t.ues();
        assert!(ues.len() >= 20, "only {} of 22 UEs active", ues.len());
        // Device assignment follows the mix layout.
        assert_eq!(t.device_of(UeId(0)), Some(DeviceType::Phone));
        for r in t.iter() {
            assert_eq!(r.device, c.device_of(r.ue.get()));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_world(&tiny_config(1, 2));
        let b = generate_world(&tiny_config(2, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn device_of_partitions() {
        let c = WorldConfig::new(PopulationMix::new(3, 2, 1), 1.0, 0);
        let devices: Vec<DeviceType> = (0..6).map(|i| c.device_of(i)).collect();
        assert_eq!(
            devices,
            vec![
                DeviceType::Phone,
                DeviceType::Phone,
                DeviceType::Phone,
                DeviceType::ConnectedCar,
                DeviceType::ConnectedCar,
                DeviceType::Tablet
            ]
        );
    }

    #[test]
    fn config_json_round_trip_reproduces_worlds() {
        let config = tiny_config(17, 2);
        let json = config.to_json().unwrap();
        let back = WorldConfig::from_json(&json).unwrap();
        assert_eq!(config, back);
        assert_eq!(generate_world(&config), generate_world(&back));
    }

    #[test]
    fn ue_seed_decorrelates() {
        let s: Vec<u64> = (0..100).map(|i| ue_seed(42, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
    }
}
