//! Calibration against the paper's Table 1.
//!
//! The world simulator's one *numeric* fidelity anchor is the published
//! event breakdown (Table 1). This module exposes the targets and the
//! comparison so any profile change can be checked in one call (the
//! repository's preset profiles hold every cell within about one
//! percentage point).

use cn_trace::{DeviceType, Trace};
use serde::{Deserialize, Serialize};

/// The paper's Table 1 shares per device type, indexed by
/// [`cn_trace::EventType::code`] (ATCH, DTCH, SRV_REQ, S1_CONN_REL, HO, TAU).
pub const TABLE1_TARGETS: [[f64; 6]; 3] = [
    // Phones
    [0.001, 0.002, 0.455, 0.475, 0.038, 0.029],
    // Connected cars
    [0.009, 0.009, 0.389, 0.452, 0.066, 0.074],
    // Tablets
    [0.012, 0.011, 0.439, 0.477, 0.021, 0.040],
];

/// Per-device calibration result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationResult {
    /// The device type.
    pub device: DeviceType,
    /// Measured shares, indexed by [`cn_trace::EventType::code`].
    pub measured: [f64; 6],
    /// `measured − target` per event type.
    pub diff: [f64; 6],
    /// Largest absolute difference.
    pub max_abs_diff: f64,
}

/// Compare a world trace's per-device event breakdown to Table 1.
///
/// Devices with no events report all-zero shares (max diff = the largest
/// target).
pub fn compare_to_table1(trace: &Trace) -> [CalibrationResult; 3] {
    let mut counts = [[0u64; 6]; 3];
    for r in trace.iter() {
        counts[r.device.code() as usize][r.event.code() as usize] += 1;
    }
    std::array::from_fn(|d| {
        let total: u64 = counts[d].iter().sum();
        let measured: [f64; 6] = std::array::from_fn(|e| {
            if total == 0 {
                0.0
            } else {
                counts[d][e] as f64 / total as f64
            }
        });
        let diff: [f64; 6] = std::array::from_fn(|e| measured[e] - TABLE1_TARGETS[d][e]);
        CalibrationResult {
            device: DeviceType::ALL[d],
            measured,
            diff,
            max_abs_diff: diff.iter().fold(0.0f64, |m, x| m.max(x.abs())),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_world, WorldConfig};
    use cn_trace::PopulationMix;

    #[test]
    fn targets_are_distributions() {
        for row in TABLE1_TARGETS {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 0.01, "target row sums to {sum}");
        }
    }

    #[test]
    fn preset_world_calibrates_within_two_points() {
        let trace = generate_world(&WorldConfig::new(
            PopulationMix::new(150, 60, 35),
            3.0,
            2024,
        ));
        for result in compare_to_table1(&trace) {
            assert!(
                result.max_abs_diff < 0.03,
                "{}: max diff {:.3} (measured {:?})",
                result.device,
                result.max_abs_diff,
                result.measured
            );
        }
    }

    #[test]
    fn empty_trace_reports_targets_as_diff() {
        let results = compare_to_table1(&Trace::new());
        for (d, r) in results.iter().enumerate() {
            assert_eq!(r.measured, [0.0; 6]);
            let expected_max = TABLE1_TARGETS[d].iter().fold(0.0f64, |m, &x| m.max(x));
            assert!((r.max_abs_diff - expected_max).abs() < 1e-12);
        }
    }
}
