//! Hour-of-day activity curves.
//!
//! Fig. 2 of the paper shows strong diurnal rhythms with device-specific
//! shape and magnitude: per-device-hour event volume drops from peak to
//! trough by 2.3×–86× for phones, 3.4×–1309× for connected cars, and
//! 1.5×–90× for tablets. These presets reproduce those shapes: phones ramp
//! through the day and peak in the evening; connected cars have two
//! commute peaks and an almost-dead night; tablets peak in the evening.

use cn_trace::{DeviceType, HourOfDay, Timestamp};
use serde::{Deserialize, Serialize};

/// A 24-entry multiplicative activity curve (1.0 = the profile's base
/// rate), with a separate weekend variant (days 5 and 6 of each week —
/// day 0 is a Monday by convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    multipliers: [f64; 24],
    weekend: [f64; 24],
}

impl DiurnalCurve {
    /// Build from explicit weekday multipliers (used for weekends too).
    /// Returns `None` if any multiplier is non-finite or negative.
    pub fn new(multipliers: [f64; 24]) -> Option<DiurnalCurve> {
        multipliers
            .iter()
            .all(|m| m.is_finite() && *m >= 0.0)
            .then_some(DiurnalCurve {
                multipliers,
                weekend: multipliers,
            })
    }

    /// Build with distinct weekday and weekend curves.
    pub fn with_weekend(multipliers: [f64; 24], weekend: [f64; 24]) -> Option<DiurnalCurve> {
        let ok = |m: &[f64; 24]| m.iter().all(|x| x.is_finite() && *x >= 0.0);
        (ok(&multipliers) && ok(&weekend)).then_some(DiurnalCurve {
            multipliers,
            weekend,
        })
    }

    /// A flat curve (no diurnal variation).
    pub fn flat() -> DiurnalCurve {
        DiurnalCurve {
            multipliers: [1.0; 24],
            weekend: [1.0; 24],
        }
    }

    /// The weekday multiplier in effect during the given hour.
    pub fn at(&self, hour: HourOfDay) -> f64 {
        self.multipliers[hour.index()]
    }

    /// The multiplier in effect at a point in time (weekend-aware; day 0
    /// is a Monday, so days ≡ 5, 6 (mod 7) are the weekend).
    pub fn at_time(&self, t: Timestamp) -> f64 {
        let table = if t.day() % 7 >= 5 {
            &self.weekend
        } else {
            &self.multipliers
        };
        table[t.hour_of_day().index()]
    }

    /// Peak-to-trough ratio of the weekday curve (∞ when the trough is 0).
    pub fn swing(&self) -> f64 {
        let max = self.multipliers.iter().copied().fold(f64::MIN, f64::max);
        let min = self.multipliers.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }

    /// Preset curve for a device type, calibrated to Fig. 2's swings, with
    /// a weekend variant (later mornings; cars lose the commute peaks;
    /// tablets gain daytime leisure).
    pub fn preset(device: DeviceType) -> DiurnalCurve {
        let (multipliers, weekend) = match device {
            // Phones: quiet 2–5 am, busy 9 am – 10 pm (swing ≈ 30×).
            DeviceType::Phone => (
                [
                    0.30, 0.15, 0.08, 0.05, 0.05, 0.08, 0.20, 0.45, 0.80, 1.10, 1.25, 1.30, //
                    1.35, 1.30, 1.25, 1.30, 1.35, 1.45, 1.50, 1.45, 1.30, 1.05, 0.75, 0.45,
                ],
                [
                    0.40, 0.22, 0.12, 0.07, 0.06, 0.07, 0.10, 0.20, 0.45, 0.80, 1.10, 1.25, //
                    1.30, 1.30, 1.25, 1.25, 1.30, 1.35, 1.40, 1.40, 1.35, 1.15, 0.90, 0.60,
                ],
            ),
            // Connected cars: commute peaks 7–9 am and 4–7 pm, nearly dead
            // at night (swing ≈ 400×); weekends flatten into a midday hump.
            DeviceType::ConnectedCar => (
                [
                    0.015, 0.008, 0.005, 0.005, 0.01, 0.06, 0.50, 1.60, 1.90, 1.10, 0.85,
                    0.90, //
                    1.00, 0.95, 0.95, 1.25, 1.80, 2.00, 1.70, 1.00, 0.55, 0.25, 0.10, 0.04,
                ],
                [
                    0.02, 0.01, 0.006, 0.005, 0.008, 0.02, 0.08, 0.25, 0.60, 0.95, 1.20,
                    1.30, //
                    1.30, 1.25, 1.20, 1.15, 1.10, 1.05, 0.95, 0.75, 0.50, 0.30, 0.15, 0.06,
                ],
            ),
            // Tablets: evening-heavy leisure use (swing ≈ 45×).
            DeviceType::Tablet => (
                [
                    0.25, 0.10, 0.05, 0.04, 0.04, 0.06, 0.12, 0.30, 0.55, 0.75, 0.90, 1.00, //
                    1.05, 1.00, 0.95, 1.00, 1.10, 1.30, 1.60, 1.80, 1.70, 1.35, 0.90, 0.50,
                ],
                [
                    0.35, 0.15, 0.08, 0.05, 0.05, 0.06, 0.10, 0.25, 0.60, 0.95, 1.20, 1.30, //
                    1.35, 1.30, 1.25, 1.25, 1.30, 1.45, 1.70, 1.85, 1.75, 1.45, 1.00, 0.60,
                ],
            ),
        };
        DiurnalCurve {
            multipliers,
            weekend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(DiurnalCurve::new([1.0; 24]).is_some());
        let mut bad = [1.0; 24];
        bad[5] = -0.1;
        assert!(DiurnalCurve::new(bad).is_none());
        bad[5] = f64::NAN;
        assert!(DiurnalCurve::new(bad).is_none());
    }

    #[test]
    fn presets_have_expected_swings() {
        let p = DiurnalCurve::preset(DeviceType::Phone).swing();
        assert!((10.0..100.0).contains(&p), "phone swing {p}");
        let c = DiurnalCurve::preset(DeviceType::ConnectedCar).swing();
        assert!((100.0..2000.0).contains(&c), "car swing {c}");
        let t = DiurnalCurve::preset(DeviceType::Tablet).swing();
        assert!((10.0..100.0).contains(&t), "tablet swing {t}");
    }

    #[test]
    fn cars_peak_at_commute_phones_in_evening() {
        let car = DiurnalCurve::preset(DeviceType::ConnectedCar);
        assert!(car.at(HourOfDay(8)) > car.at(HourOfDay(12)));
        assert!(car.at(HourOfDay(17)) > car.at(HourOfDay(12)));
        let phone = DiurnalCurve::preset(DeviceType::Phone);
        assert!(phone.at(HourOfDay(18)) > phone.at(HourOfDay(3)));
    }

    #[test]
    fn flat_is_flat() {
        let f = DiurnalCurve::flat();
        assert_eq!(f.swing(), 1.0);
        assert_eq!(f.at(HourOfDay(7)), 1.0);
    }

    #[test]
    fn weekends_differ_from_weekdays() {
        let car = DiurnalCurve::preset(DeviceType::ConnectedCar);
        let monday_8am = Timestamp::at_hour(0, 8);
        let saturday_8am = Timestamp::at_hour(5, 8);
        assert!(car.at_time(monday_8am) > 2.0 * car.at_time(saturday_8am));
        // Tablets gain weekend daytime use.
        let tab = DiurnalCurve::preset(DeviceType::Tablet);
        let monday_noon = Timestamp::at_hour(0, 12);
        let sunday_noon = Timestamp::at_hour(6, 12);
        assert!(tab.at_time(sunday_noon) > tab.at_time(monday_noon));
    }

    #[test]
    fn with_weekend_validates_both_tables() {
        let mut bad = [1.0; 24];
        bad[0] = f64::NAN;
        assert!(DiurnalCurve::with_weekend([1.0; 24], bad).is_none());
        assert!(DiurnalCurve::with_weekend([1.0; 24], [2.0; 24]).is_some());
    }
}
