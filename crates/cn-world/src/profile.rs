//! Behavioral parameter sets per device type.
//!
//! The presets are calibrated so that a simulated week reproduces the
//! *shape* of the paper's Table 1 event breakdown and Fig. 2 diversity:
//! phones and tablets are session-heavy with few handovers; connected cars
//! are mobility-heavy (2–4× the HO/TAU share) with strong commute rhythms;
//! per-UE activity is heavy-tailed so some UEs are orders of magnitude
//! busier than others.

use crate::diurnal::DiurnalCurve;
use cn_stats::dist::{Dist, LogNormal, Pareto};
use cn_trace::DeviceType;
use serde::{Deserialize, Serialize};

/// User-session behavior (drives `SRV_REQ`/`S1_CONN_REL`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionProfile {
    /// Session arrival rate (per hour) at diurnal multiplier 1.0 and
    /// activity multiplier 1.0.
    pub base_rate_per_hour: f64,
    /// Probability that the next session follows in the same clump
    /// (burstiness knob: clump sizes are geometric).
    pub burst_prob: f64,
    /// Gap between sessions within a clump, in seconds.
    pub burst_gap: LogNormal,
    /// Session-duration mixture: `(weight, component)`; weights are
    /// normalized at sampling time. The CONNECTED sojourn is this duration
    /// (the inactivity timer that precedes the release is folded in).
    pub durations: Vec<(f64, Dist)>,
}

/// Mobility behavior (drives `HO`/`TAU`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityProfile {
    /// Probability that a given session happens while the UE is in motion
    /// (only moving sessions produce handovers).
    pub moving_prob: f64,
    /// Cell dwell time while connected and moving, in seconds (each dwell
    /// expiry is a `HO`).
    pub cell_dwell: LogNormal,
    /// Probability that a handover also crosses a tracking-area boundary
    /// (producing a connected-mode `TAU` right after the `HO`);
    /// ≈ 1 / cells-per-tracking-area.
    pub tau_per_ho_prob: f64,
    /// Rate (per hour, at diurnal multiplier 1.0) of idle-mode
    /// tracking-area crossings, each producing an idle `TAU`.
    pub idle_crossing_rate_per_hour: f64,
    /// Periodic TAU timer (3GPP T3412), seconds of *continuous idleness*
    /// after which a periodic `TAU` fires. LTE's default is 54 min.
    pub periodic_tau_secs: f64,
    /// Delay between an idle `TAU` and the `S1_CONN_REL` that releases its
    /// signaling connection, in seconds.
    pub idle_tau_release_delay: LogNormal,
    /// Rate (per hour, at diurnal multiplier 1.0) of *trips*: long
    /// continuously-connected journeys (commutes, drives) that produce
    /// dense handover runs — the dominant source of HO burstiness.
    pub trip_rate_per_hour: f64,
    /// Trip duration, seconds.
    pub trip_duration: LogNormal,
}

/// Power-cycling behavior (drives `ATCH`/`DTCH`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Expected power-off events per day.
    pub cycles_per_day: f64,
    /// How long the UE stays off, in seconds.
    pub off_duration: LogNormal,
    /// Duration of the brief signaling connection that follows `ATCH`
    /// (registration hold), in seconds.
    pub attach_hold: LogNormal,
}

/// Complete behavioral profile of one device type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The device type this profile describes.
    pub device: DeviceType,
    /// Hour-of-day activity curve.
    pub diurnal: DiurnalCurve,
    /// Per-UE activity multiplier distribution (mean ≈ 1; heavy-tailed so
    /// UEs differ by orders of magnitude, per Fig. 2's min–max spreads).
    pub activity: LogNormal,
    /// Session behavior.
    pub session: SessionProfile,
    /// Mobility behavior.
    pub mobility: MobilityProfile,
    /// Power-cycling behavior.
    pub power: PowerProfile,
}

/// Log-normal with mean exactly 1 for a given σ (μ = −σ²/2).
fn unit_mean_lognormal(sigma: f64) -> LogNormal {
    LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid sigma")
}

fn ln(median: f64, sigma: f64) -> LogNormal {
    LogNormal::from_median(median, sigma).expect("valid lognormal")
}

impl DeviceProfile {
    /// Preset profile for one device type (see module docs for the
    /// calibration targets).
    pub fn preset(device: DeviceType) -> DeviceProfile {
        match device {
            DeviceType::Phone => DeviceProfile {
                device,
                diurnal: DiurnalCurve::preset(device),
                activity: unit_mean_lognormal(0.9),
                session: SessionProfile {
                    base_rate_per_hour: 6.0,
                    burst_prob: 0.35,
                    burst_gap: ln(20.0, 0.9),
                    durations: vec![
                        (0.55, Dist::LogNormal(ln(8.0, 1.0))),
                        (0.35, Dist::LogNormal(ln(45.0, 0.9))),
                        (0.10, Dist::Pareto(Pareto::new(1.5, 120.0).expect("valid"))),
                    ],
                },
                mobility: MobilityProfile {
                    moving_prob: 0.08,
                    cell_dwell: ln(80.0, 0.8),
                    tau_per_ho_prob: 0.18,
                    idle_crossing_rate_per_hour: 0.12,
                    periodic_tau_secs: 5_400.0,
                    idle_tau_release_delay: ln(2.0, 0.6),
                    trip_rate_per_hour: 0.035,
                    trip_duration: ln(900.0, 0.6),
                },
                power: PowerProfile {
                    cycles_per_day: 0.15,
                    off_duration: ln(3_600.0, 1.0),
                    attach_hold: ln(5.0, 0.5),
                },
            },
            DeviceType::ConnectedCar => DeviceProfile {
                device,
                diurnal: DiurnalCurve::preset(device),
                activity: unit_mean_lognormal(0.6),
                session: SessionProfile {
                    base_rate_per_hour: 4.5,
                    burst_prob: 0.45,
                    burst_gap: ln(15.0, 0.8),
                    durations: vec![
                        (0.70, Dist::LogNormal(ln(6.0, 0.8))),
                        (0.25, Dist::LogNormal(ln(60.0, 0.9))),
                        (0.05, Dist::Pareto(Pareto::new(1.4, 180.0).expect("valid"))),
                    ],
                },
                mobility: MobilityProfile {
                    moving_prob: 0.10,
                    cell_dwell: ln(90.0, 0.7),
                    tau_per_ho_prob: 0.25,
                    idle_crossing_rate_per_hour: 0.70,
                    periodic_tau_secs: 7_200.0,
                    idle_tau_release_delay: ln(2.0, 0.6),
                    trip_rate_per_hour: 0.08,
                    trip_duration: ln(1_200.0, 0.6),
                },
                power: PowerProfile {
                    cycles_per_day: 2.8,
                    off_duration: ln(4.0 * 3_600.0, 0.9),
                    attach_hold: ln(6.0, 0.5),
                },
            },
            DeviceType::Tablet => DeviceProfile {
                device,
                diurnal: DiurnalCurve::preset(device),
                activity: unit_mean_lognormal(1.1),
                session: SessionProfile {
                    base_rate_per_hour: 3.5,
                    burst_prob: 0.40,
                    burst_gap: ln(25.0, 0.9),
                    durations: vec![
                        (0.45, Dist::LogNormal(ln(10.0, 1.0))),
                        (0.40, Dist::LogNormal(ln(90.0, 0.9))),
                        (0.15, Dist::Pareto(Pareto::new(1.5, 200.0).expect("valid"))),
                    ],
                },
                mobility: MobilityProfile {
                    moving_prob: 0.03,
                    cell_dwell: ln(100.0, 0.8),
                    tau_per_ho_prob: 0.15,
                    idle_crossing_rate_per_hour: 0.18,
                    periodic_tau_secs: 7_200.0,
                    idle_tau_release_delay: ln(2.0, 0.6),
                    trip_rate_per_hour: 0.016,
                    trip_duration: ln(600.0, 0.6),
                },
                power: PowerProfile {
                    cycles_per_day: 2.4,
                    off_duration: ln(6.0 * 3_600.0, 1.0),
                    attach_hold: ln(5.0, 0.5),
                },
            },
        }
    }

    /// A massive-IoT sensor profile (§9's generalizability discussion):
    /// sparse, machine-timed reporting sessions, no mobility, very long
    /// idle periods dominated by the periodic TAU timer. Assigned to any
    /// [`DeviceType`] slot (the slot only labels the records).
    pub fn iot_sensor(slot: DeviceType) -> DeviceProfile {
        DeviceProfile {
            device: slot,
            diurnal: DiurnalCurve::flat(), // machines don't sleep
            activity: unit_mean_lognormal(0.3),
            session: SessionProfile {
                base_rate_per_hour: 0.5, // one report every ~2 h
                burst_prob: 0.05,
                burst_gap: ln(30.0, 0.5),
                durations: vec![
                    (0.9, Dist::LogNormal(ln(3.0, 0.4))),
                    (0.1, Dist::LogNormal(ln(15.0, 0.5))),
                ],
            },
            mobility: MobilityProfile {
                moving_prob: 0.0,
                cell_dwell: ln(600.0, 0.5),
                tau_per_ho_prob: 0.0,
                idle_crossing_rate_per_hour: 0.0,
                periodic_tau_secs: 3_600.0 * 6.0,
                idle_tau_release_delay: ln(1.0, 0.4),
                trip_rate_per_hour: 0.0,
                trip_duration: ln(60.0, 0.3),
            },
            power: PowerProfile {
                cycles_per_day: 0.02, // battery devices rarely restart
                off_duration: ln(1_800.0, 0.8),
                attach_hold: ln(4.0, 0.4),
            },
        }
    }

    /// A self-driving-car profile (§9): continuously connected while in
    /// service with dense HO runs, frequent telemetry when parked.
    pub fn self_driving_car(slot: DeviceType) -> DeviceProfile {
        DeviceProfile {
            device: slot,
            diurnal: DiurnalCurve::preset(DeviceType::ConnectedCar),
            activity: unit_mean_lognormal(0.4),
            session: SessionProfile {
                base_rate_per_hour: 12.0, // constant telemetry
                burst_prob: 0.6,
                burst_gap: ln(8.0, 0.5),
                durations: vec![
                    (0.8, Dist::LogNormal(ln(4.0, 0.5))),
                    (0.2, Dist::LogNormal(ln(30.0, 0.7))),
                ],
            },
            mobility: MobilityProfile {
                moving_prob: 0.3,
                cell_dwell: ln(45.0, 0.5), // fast, small cells
                tau_per_ho_prob: 0.3,
                idle_crossing_rate_per_hour: 1.5,
                periodic_tau_secs: 3_600.0,
                idle_tau_release_delay: ln(1.5, 0.5),
                trip_rate_per_hour: 0.3, // in service much of the day
                trip_duration: ln(1_800.0, 0.5),
            },
            power: PowerProfile {
                cycles_per_day: 1.0,
                off_duration: ln(2.0 * 3_600.0, 0.8),
                attach_hold: ln(6.0, 0.4),
            },
        }
    }

    /// Presets for all three device types, indexed by
    /// [`DeviceType::code`].
    pub fn all_presets() -> [DeviceProfile; 3] {
        [
            DeviceProfile::preset(DeviceType::Phone),
            DeviceProfile::preset(DeviceType::ConnectedCar),
            DeviceProfile::preset(DeviceType::Tablet),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_mean_activity() {
        let mut rng = StdRng::seed_from_u64(1);
        for device in DeviceType::ALL {
            let p = DeviceProfile::preset(device);
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| p.activity.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((mean - 1.0).abs() < 0.1, "{device}: mean {mean}");
        }
    }

    #[test]
    fn duration_weights_positive() {
        for device in DeviceType::ALL {
            let p = DeviceProfile::preset(device);
            assert!(!p.session.durations.is_empty());
            assert!(p.session.durations.iter().all(|(w, _)| *w > 0.0));
        }
    }

    #[test]
    fn cars_are_the_most_mobile() {
        let phone = DeviceProfile::preset(DeviceType::Phone);
        let car = DeviceProfile::preset(DeviceType::ConnectedCar);
        let tablet = DeviceProfile::preset(DeviceType::Tablet);
        assert!(car.mobility.moving_prob > phone.mobility.moving_prob);
        assert!(phone.mobility.moving_prob > tablet.mobility.moving_prob);
        assert!(
            car.mobility.idle_crossing_rate_per_hour > phone.mobility.idle_crossing_rate_per_hour
        );
    }

    #[test]
    fn alternative_profiles_have_distinct_signatures() {
        let iot = DeviceProfile::iot_sensor(DeviceType::Tablet);
        assert_eq!(iot.device, DeviceType::Tablet);
        assert_eq!(iot.mobility.moving_prob, 0.0);
        assert!(iot.session.base_rate_per_hour < 1.0);
        let sdc = DeviceProfile::self_driving_car(DeviceType::ConnectedCar);
        assert!(sdc.mobility.trip_rate_per_hour > 0.1);
        assert!(sdc.session.base_rate_per_hour > 10.0);
    }

    #[test]
    fn presets_indexable_by_device_code() {
        let all = DeviceProfile::all_presets();
        for device in DeviceType::ALL {
            assert_eq!(all[device.code() as usize].device, device);
        }
    }
}
