//! Mobility sampling: handovers, tracking-area crossings, periodic TAU.

use crate::profile::MobilityProfile;
use crate::session::piecewise_exp_gap;
use cn_trace::Timestamp;
use rand::Rng;

/// Decide whether a session starting now happens "in motion" (only moving
/// sessions produce handovers).
pub fn session_is_moving<R: Rng + ?Sized>(profile: &MobilityProfile, rng: &mut R) -> bool {
    rng.gen::<f64>() < profile.moving_prob
}

/// Cell dwell time (seconds) until the next handover while connected and
/// moving.
pub fn next_cell_dwell<R: Rng + ?Sized>(profile: &MobilityProfile, rng: &mut R) -> f64 {
    profile.cell_dwell.sample(rng).max(0.5)
}

/// Whether a handover also crosses a tracking-area boundary (producing a
/// connected-mode TAU).
pub fn ho_crosses_ta<R: Rng + ?Sized>(profile: &MobilityProfile, rng: &mut R) -> bool {
    rng.gen::<f64>() < profile.tau_per_ho_prob
}

/// Waiting time (seconds) until the next idle-mode tracking-area crossing,
/// modulated by the diurnal curve (people and cars move when they are
/// active). `None` when the rate is effectively zero.
pub fn next_idle_crossing<R: Rng + ?Sized>(
    profile: &MobilityProfile,
    now_secs: f64,
    rate_multiplier: impl Fn(Timestamp) -> f64,
    rng: &mut R,
) -> Option<f64> {
    piecewise_exp_gap(
        now_secs,
        |t| profile.idle_crossing_rate_per_hour * rate_multiplier(t),
        rng,
    )
}

/// Delay (seconds) between an idle TAU and its releasing `S1_CONN_REL`.
pub fn idle_tau_release_delay<R: Rng + ?Sized>(profile: &MobilityProfile, rng: &mut R) -> f64 {
    profile.idle_tau_release_delay.sample(rng).max(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use cn_trace::DeviceType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moving_fraction_tracks_profile() {
        let p = DeviceProfile::preset(DeviceType::ConnectedCar);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let moving = (0..n)
            .filter(|_| session_is_moving(&p.mobility, &mut rng))
            .count();
        let frac = moving as f64 / n as f64;
        assert!((frac - p.mobility.moving_prob).abs() < 0.02, "{frac}");
    }

    #[test]
    fn dwell_times_positive() {
        let p = DeviceProfile::preset(DeviceType::Phone);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..1_000 {
            assert!(next_cell_dwell(&p.mobility, &mut rng) >= 0.5);
        }
    }

    #[test]
    fn cars_cross_tas_more_than_tablets() {
        let car = DeviceProfile::preset(DeviceType::ConnectedCar);
        let tab = DeviceProfile::preset(DeviceType::Tablet);
        let mut rng = StdRng::seed_from_u64(13);
        let mean_gap = |p: &MobilityProfile, rng: &mut StdRng| {
            let n = 2_000;
            (0..n)
                .filter_map(|_| next_idle_crossing(p, 12.0 * 3_600.0, |_| 1.0, rng))
                .sum::<f64>()
                / n as f64
        };
        let car_gap = mean_gap(&car.mobility, &mut rng);
        let tab_gap = mean_gap(&tab.mobility, &mut rng);
        assert!(car_gap < tab_gap, "car {car_gap} vs tablet {tab_gap}");
    }

    #[test]
    fn release_delay_short() {
        let p = DeviceProfile::preset(DeviceType::Phone);
        let mut rng = StdRng::seed_from_u64(14);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| idle_tau_release_delay(&p.mobility, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(mean < 10.0, "mean {mean}");
    }
}
