//! Per-UE discrete-event behavioral simulation.
//!
//! One UE is simulated as an alternating sequence of idle periods and
//! sessions, with mobility and power processes superimposed:
//!
//! * at the top of the main loop the UE is powered-on and ECM-IDLE;
//! * the next thing to happen is the earliest of (a) the pending session
//!   start, (b) an idle-mode TAU (tracking-area crossing or periodic-timer
//!   expiry — whichever comes first), or (c) a power-off;
//! * an idle TAU is emitted as the atomic pair `TAU` → `S1_CONN_REL`
//!   (Fig. 5's `TAU_S_IDLE` → `S1_REL_S_2` behavior); a session start that
//!   would fall inside the pair is deferred past the release;
//! * a session emits `SRV_REQ`, a stream of `HO` (and occasional connected
//!   `TAU`) while moving, and the closing `S1_CONN_REL`; a power-off during
//!   the session truncates it with `DTCH`;
//! * after `DTCH` the UE sleeps for the off-duration and re-enters with
//!   `ATCH`, a short registration hold, and a release.
//!
//! The emitted stream is conformant to the two-level machine by
//! construction; timestamps are strictly increasing per UE (sub-millisecond
//! collisions are bumped by 1 ms).

use crate::mobility;
use crate::profile::DeviceProfile;
use crate::session;
use cn_trace::{EventType, Timestamp, Trace, TraceRecord, UeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulate one UE over `[0, horizon_secs)` and return its event trace.
///
/// The per-UE activity multiplier is drawn from the profile's activity
/// distribution using `seed`, so a fixed `(profile, horizon, seed)` triple
/// is fully reproducible.
pub fn simulate_ue(ue: UeId, profile: &DeviceProfile, horizon_secs: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let activity = profile.activity.sample(&mut rng).clamp(0.05, 50.0);
    let mut sim = UeSim {
        ue,
        profile,
        activity,
        horizon_secs,
        records: Vec::new(),
        last_ms: None,
    };
    sim.run(&mut rng);
    Trace::from_records(sim.records)
}

struct UeSim<'a> {
    ue: UeId,
    profile: &'a DeviceProfile,
    activity: f64,
    horizon_secs: f64,
    records: Vec<TraceRecord>,
    last_ms: Option<u64>,
}

impl UeSim<'_> {
    /// Emit an event at `t_secs`, bumping to keep per-UE times strictly
    /// increasing. Events at/after the horizon are dropped.
    fn emit(&mut self, t_secs: f64, event: EventType) {
        if t_secs >= self.horizon_secs {
            return;
        }
        let mut ms = (t_secs * 1_000.0).round() as u64;
        if let Some(last) = self.last_ms {
            ms = ms.max(last + 1);
        }
        if ms >= (self.horizon_secs * 1_000.0) as u64 {
            return;
        }
        self.last_ms = Some(ms);
        self.records.push(TraceRecord::new(
            Timestamp::from_millis(ms),
            self.ue,
            self.profile.device,
            event,
        ));
    }

    /// Diurnal (weekend-aware) × per-UE-activity rate multiplier for
    /// sessions.
    fn session_mult(&self) -> impl Fn(Timestamp) -> f64 + '_ {
        move |t| self.profile.diurnal.at_time(t) * self.activity
    }

    /// Diurnal multiplier for mobility (movement follows the activity
    /// rhythm but not the per-UE session appetite).
    fn mobility_mult(&self) -> impl Fn(Timestamp) -> f64 + '_ {
        move |t| self.profile.diurnal.at_time(t)
    }

    /// Waiting time to the next power-off: log-normal with the profile's
    /// mean interval (people cycle devices irregularly, not memorylessly —
    /// and an exponential here would make the REGISTERED sojourn genuinely
    /// Poisson, which real registration behavior is not).
    fn power_gap(&self, rng: &mut StdRng) -> f64 {
        let mean = 86_400.0 / self.profile.power.cycles_per_day.max(1e-9);
        let sigma = 1.3f64;
        let mu = mean.ln() - sigma * sigma / 2.0;
        cn_stats::dist::LogNormal::new(mu, sigma)
            .expect("valid lognormal")
            .sample(rng)
            .max(60.0)
    }

    fn run(&mut self, rng: &mut StdRng) {
        let mut now = 0.0f64;
        // Desynchronize periodic TAU timers across UEs.
        let mut idle_since = now - rng.gen::<f64>() * self.profile.mobility.periodic_tau_secs;
        let mut next_power_off = now + self.power_gap(rng);
        let mut pending_session = self.next_session_time(now, rng).unwrap_or(f64::INFINITY);
        let mut pending_trip = self.next_trip_time(now, rng).unwrap_or(f64::INFINITY);

        while now < self.horizon_secs {
            // Next idle TAU: crossing or periodic expiry, whichever first.
            let crossing = mobility::next_idle_crossing(
                &self.profile.mobility,
                now,
                self.mobility_mult(),
                rng,
            )
            .map_or(f64::INFINITY, |g| now + g);
            let periodic = idle_since + self.profile.mobility.periodic_tau_secs;
            let next_tau = crossing.min(periodic.max(now));

            let next = pending_session
                .min(next_tau)
                .min(next_power_off)
                .min(pending_trip);
            if next >= self.horizon_secs {
                break;
            }

            if next == next_power_off {
                // Power off from idle, sleep, re-attach.
                now = self.power_cycle(next, rng);
                idle_since = now;
                next_power_off = now + self.power_gap(rng);
                pending_session = self.next_session_time(now, rng).unwrap_or(f64::INFINITY);
                pending_trip = self.next_trip_time(now, rng).unwrap_or(f64::INFINITY);
            } else if next == pending_trip {
                // A trip: a long connected period with a dense HO run.
                let (end, powered_off) = self.run_session(pending_trip, next_power_off, rng, true);
                now = end;
                idle_since = now;
                if powered_off {
                    now = self.finish_power_cycle(end, rng);
                    idle_since = now;
                    next_power_off = now + self.power_gap(rng);
                }
                pending_trip = self.next_trip_time(now, rng).unwrap_or(f64::INFINITY);
                if pending_session <= now {
                    pending_session = self.next_session_time(now, rng).unwrap_or(f64::INFINITY);
                }
            } else if next == next_tau {
                // Idle TAU: atomic TAU → S1_CONN_REL pair.
                let release = next + mobility::idle_tau_release_delay(&self.profile.mobility, rng);
                if next_power_off > next && next_power_off <= release {
                    // Power-off interrupts before the release.
                    self.emit(next, EventType::Tau);
                    now = self.power_cycle(next_power_off, rng);
                    idle_since = now;
                    next_power_off = now + self.power_gap(rng);
                    pending_session = self.next_session_time(now, rng).unwrap_or(f64::INFINITY);
                    pending_trip = self.next_trip_time(now, rng).unwrap_or(f64::INFINITY);
                } else {
                    self.emit(next, EventType::Tau);
                    self.emit(release, EventType::S1ConnRelease);
                    now = release;
                    idle_since = now;
                    if pending_session <= release {
                        // The deferred service request follows promptly.
                        pending_session = release + 0.5 + rng.gen::<f64>() * 2.0;
                    }
                }
            } else {
                // Session.
                let (end, powered_off) =
                    self.run_session(pending_session, next_power_off, rng, false);
                now = end;
                idle_since = now;
                if powered_off {
                    now = self.finish_power_cycle(end, rng);
                    idle_since = now;
                    next_power_off = now + self.power_gap(rng);
                }
                pending_session = self.next_session_time(now, rng).unwrap_or(f64::INFINITY);
                if pending_trip <= now {
                    pending_trip = self.next_trip_time(now, rng).unwrap_or(f64::INFINITY);
                }
            }
        }
    }

    /// Absolute time of the next session start after `now`.
    fn next_session_time(&self, now: f64, rng: &mut StdRng) -> Option<f64> {
        session::next_session_gap(&self.profile.session, now, self.session_mult(), rng)
            .map(|g| now + g)
    }

    /// Absolute time of the next trip start after `now` (diurnal-modulated;
    /// trips follow the movement rhythm, not the per-UE session appetite).
    fn next_trip_time(&self, now: f64, rng: &mut StdRng) -> Option<f64> {
        session::piecewise_exp_gap(
            now,
            |t| self.profile.mobility.trip_rate_per_hour * self.profile.diurnal.at_time(t),
            rng,
        )
        .map(|g| now + g)
    }

    /// Run one session starting at `start`. Returns `(end_time,
    /// powered_off)`; when `powered_off` the session was truncated by
    /// `DTCH` at `end_time` and the caller must complete the power cycle.
    fn run_session(
        &mut self,
        start: f64,
        power_off: f64,
        rng: &mut StdRng,
        trip: bool,
    ) -> (f64, bool) {
        self.emit(start, EventType::ServiceRequest);
        let duration = if trip {
            self.profile.mobility.trip_duration.sample(rng).max(30.0)
        } else {
            session::sample_duration(&self.profile.session, rng)
        };
        let end = start + duration;
        let moving = trip || mobility::session_is_moving(&self.profile.mobility, rng);
        let hard_end = end.min(power_off);

        if moving {
            let mut t = start + mobility::next_cell_dwell(&self.profile.mobility, rng);
            while t < hard_end {
                self.emit(t, EventType::Handover);
                // The TA-crossing TAU must stay inside the session: a TAU
                // sorted after the closing release would land in IDLE and
                // make the next SRV_REQ illegal.
                if t + 0.2 < hard_end && mobility::ho_crosses_ta(&self.profile.mobility, rng) {
                    self.emit(t + 0.2, EventType::Tau);
                }
                t += mobility::next_cell_dwell(&self.profile.mobility, rng);
            }
        }

        if power_off < end {
            self.emit(power_off, EventType::Detach);
            (power_off, true)
        } else {
            self.emit(end, EventType::S1ConnRelease);
            (end, false)
        }
    }

    /// Power off at `off_time` from idle: `DTCH`, sleep, `ATCH`, short
    /// registration hold, release. Returns the time the UE is idle again.
    fn power_cycle(&mut self, off_time: f64, rng: &mut StdRng) -> f64 {
        self.emit(off_time, EventType::Detach);
        self.finish_power_cycle(off_time, rng)
    }

    /// After a `DTCH` at `off_time`: sleep, re-attach, hold, release.
    fn finish_power_cycle(&mut self, off_time: f64, rng: &mut StdRng) -> f64 {
        let off_dur = self.profile.power.off_duration.sample(rng).max(10.0);
        let on_time = off_time + off_dur;
        self.emit(on_time, EventType::Attach);
        let hold = self.profile.power.attach_hold.sample(rng).max(0.5);
        self.emit(on_time + hold, EventType::S1ConnRelease);
        on_time + hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_statemachine::replay_ue;
    use cn_trace::DeviceType;

    fn sim(device: DeviceType, hours: f64, seed: u64) -> Trace {
        let profile = DeviceProfile::preset(device);
        simulate_ue(UeId(0), &profile, hours * 3_600.0, seed)
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = sim(DeviceType::Phone, 24.0, 42);
        let b = sim(DeviceType::Phone, 24.0, 42);
        assert_eq!(a, b);
        let c = sim(DeviceType::Phone, 24.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn produces_events_within_horizon() {
        let t = sim(DeviceType::Phone, 24.0, 1);
        assert!(!t.is_empty(), "a day of phone activity can't be empty");
        assert!(t.end().unwrap().as_millis() < 24 * 3_600 * 1_000);
    }

    #[test]
    fn per_ue_times_strictly_increase() {
        let t = sim(DeviceType::ConnectedCar, 48.0, 7);
        let recs = t.records();
        for w in recs.windows(2) {
            assert!(w[0].t < w[1].t, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn streams_are_conformant_to_two_level_machine() {
        for device in DeviceType::ALL {
            for seed in 0..20 {
                let t = sim(device, 48.0, seed);
                let out = replay_ue(t.records());
                assert!(
                    out.is_conformant(),
                    "{device} seed {seed}: {:?}",
                    out.violations.first()
                );
            }
        }
    }

    #[test]
    fn event_mix_is_plausible() {
        // Aggregate several UEs; SRV_REQ and S1_CONN_REL should dominate
        // and be nearly paired; HO should exceed zero; cars should have a
        // larger HO share than tablets.
        let share = |device: DeviceType| {
            let mut counts = [0usize; 6];
            let mut total = 0usize;
            for seed in 0..30 {
                let t = sim(device, 72.0, 1_000 + seed);
                for r in t.iter() {
                    counts[r.event.code() as usize] += 1;
                    total += 1;
                }
            }
            let ho = counts[EventType::Handover.code() as usize] as f64 / total as f64;
            let srv = counts[EventType::ServiceRequest.code() as usize] as f64 / total as f64;
            let rel = counts[EventType::S1ConnRelease.code() as usize] as f64 / total as f64;
            (srv, rel, ho)
        };
        let (p_srv, p_rel, p_ho) = share(DeviceType::Phone);
        assert!(p_srv > 0.35 && p_srv < 0.55, "phone SRV share {p_srv}");
        assert!(p_rel >= p_srv - 0.02, "releases {p_rel} < requests {p_srv}");
        assert!(p_ho > 0.005, "phone HO share {p_ho}");
        let (_, _, car_ho) = share(DeviceType::ConnectedCar);
        let (_, _, tab_ho) = share(DeviceType::Tablet);
        assert!(car_ho > tab_ho, "car {car_ho} vs tablet {tab_ho}");
    }

    #[test]
    fn diurnal_rhythm_visible() {
        // Cars at 3 am should be far quieter than at 8 am.
        let profile = DeviceProfile::preset(DeviceType::ConnectedCar);
        let mut night = 0usize;
        let mut rush = 0usize;
        for seed in 0..60 {
            let t = simulate_ue(UeId(0), &profile, 7.0 * 86_400.0, 5_000 + seed);
            for r in t.iter() {
                match r.t.hour_of_day().get() {
                    2..=3 => night += 1,
                    7..=8 => rush += 1,
                    _ => {}
                }
            }
        }
        assert!(
            rush as f64 > 5.0 * night.max(1) as f64,
            "rush {rush} vs night {night}"
        );
    }

    #[test]
    fn zero_horizon_is_empty() {
        let t = sim(DeviceType::Phone, 0.0, 9);
        assert!(t.is_empty());
    }
}
