//! Mechanistic ground-truth world simulator.
//!
//! The paper instantiates and validates its traffic model against a
//! proprietary carrier trace (37,325 UEs over one week, ~197M events). That
//! data cannot be published, so this crate plays the role of "reality" for
//! the whole pipeline: it synthesizes a carrier-style control-plane trace
//! from *behavioral* primitives — user sessions, mobility, power cycling —
//! rather than from the statistical model under test, so that fitting the
//! model to this world is a genuine exercise.
//!
//! Behavioral ingredients (see `DESIGN.md` §3 for the substitution
//! argument):
//!
//! * **Sessions** ([`session`]): clumpy arrivals (bursts of short gaps
//!   followed by long pauses), log-normal-mixture durations with a Pareto
//!   tail, an inactivity timer that converts session end into
//!   `S1_CONN_REL`. None of these are exponential, matching the paper's
//!   finding that per-UE traffic defeats Poisson/Pareto/Weibull/Tcplib fits.
//! * **Mobility** ([`mobility`]): cell dwell times while connected produce
//!   `HO`; tracking-area crossings and a periodic timer produce `TAU` in
//!   both ECM states; an idle-mode `TAU` is always followed by the
//!   signaling `S1_CONN_REL` of Fig. 5's `S1_REL_S_2` behavior.
//! * **Rhythms** ([`diurnal`]): hour-of-day rate curves per device type
//!   with the peak-to-trough swings of Fig. 2, plus heavy-tailed per-UE
//!   activity levels for cross-UE diversity.
//! * **Power** ([`profile::PowerProfile`]): rare `DTCH`/`ATCH` cycles,
//!   biased to night hours.
//!
//! Every generated per-UE stream is conformant to the paper's two-level
//! state machine by construction (verified property-style in the tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod diurnal;
pub mod mobility;
pub mod profile;
pub mod session;
pub mod ue;
pub mod world;

pub use calibrate::{compare_to_table1, CalibrationResult, TABLE1_TARGETS};
pub use diurnal::DiurnalCurve;
pub use profile::{DeviceProfile, MobilityProfile, PowerProfile, SessionProfile};
pub use ue::simulate_ue;
pub use world::{generate_world, WorldConfig};
