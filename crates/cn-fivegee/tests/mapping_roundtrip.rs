//! Round-trip tests for the LTE → 5G SA pipeline (Table 2 + §6).
//!
//! Two invariants tie the mapping, the renderer, and the 5G SA state
//! machine together:
//!
//! * **count preservation** — converting a TAU-free LTE trace to SA
//!   records is a per-UE bijection: every UE keeps exactly its events, in
//!   order, with timestamps intact, and `to_4g ∘ from_4g` is the identity;
//! * **machine acceptance** — a trace generated from an SA-adapted model
//!   never contains an event the SA machine ([`Sa5gState`]) rejects, for
//!   any UE, starting from `DEREGISTERED`.

use std::collections::HashMap;

use cn_fivegee::mapping::Event5G;
use cn_fivegee::render::to_sa_records;
use cn_fivegee::scale::{adapt_model, ScalingProfile};
use cn_statemachine::fiveg::Sa5gState;
use cn_statemachine::TlState;
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;

/// A random *legal* LTE two-level walk with no TAU events, across several
/// UEs — the SA-eligible subset of LTE traffic.
fn tau_free_walks() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec((0u32..3, 0usize..16, 1u64..50_000), 0..150).prop_map(|steps| {
        let mut state: HashMap<u32, (TlState, u64)> = HashMap::new();
        let mut out = Vec::new();
        for (ue, pick, gap) in steps {
            let (s, t) = state.entry(ue).or_insert((TlState::Deregistered, 0));
            let legal: Vec<EventType> = EventType::ALL
                .into_iter()
                .filter(|&e| e != EventType::Tau && s.apply(e).is_some())
                .collect();
            if legal.is_empty() {
                continue;
            }
            let e = legal[pick % legal.len()];
            *s = s.apply(e).expect("chosen legal");
            *t += gap;
            out.push(TraceRecord::new(
                Timestamp::from_millis(*t),
                UeId(ue),
                DeviceType::Phone,
                e,
            ));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mapping + rendering a TAU-free LTE trace preserves each UE's event
    /// count, order, timestamps, and (via `to_4g`) the events themselves.
    #[test]
    fn sa_rendering_preserves_per_ue_events(records in tau_free_walks()) {
        let trace = Trace::from_records(records);
        let sa = to_sa_records(&trace).expect("TAU-free traces always convert");
        prop_assert_eq!(sa.len(), trace.len());

        let mut lte_counts: HashMap<UeId, usize> = HashMap::new();
        for r in trace.iter() {
            *lte_counts.entry(r.ue).or_default() += 1;
        }
        let mut sa_counts: HashMap<UeId, usize> = HashMap::new();
        for r in &sa {
            *sa_counts.entry(r.ue).or_default() += 1;
        }
        prop_assert_eq!(&sa_counts, &lte_counts);

        // Pointwise: the renderer is order-preserving and the Table 2
        // mapping inverts exactly.
        for (lte, sa_rec) in trace.iter().zip(&sa) {
            prop_assert_eq!(sa_rec.t, lte.t);
            prop_assert_eq!(sa_rec.ue, lte.ue);
            prop_assert_eq!(sa_rec.event.to_4g(), lte.event);
        }
    }

    /// Every TAU-free legal LTE walk maps to a walk the 5G SA machine
    /// accepts: the SA machine is a faithful quotient of the two-level
    /// machine on the TAU-free sublanguage.
    #[test]
    fn sa_machine_accepts_mapped_legal_walks(records in tau_free_walks()) {
        let trace = Trace::from_records(records);
        let mut states: HashMap<UeId, Sa5gState> = HashMap::new();
        for r in trace.iter() {
            let s = states.entry(r.ue).or_insert(Sa5gState::Deregistered);
            let next = s.apply(r.event);
            prop_assert!(
                next.is_some(),
                "SA machine rejected {:?} in {:?} for {:?}",
                r.event, s, r.ue
            );
            *s = next.unwrap();
        }
    }
}

/// End-to-end: fit a model on simulated ground truth, adapt it to SA
/// (dropping TAU branches), generate — and require that the 5G machine
/// accepts every generated event for every UE. This is the "never emits an
/// event the 5G SA machine rejects" guarantee of §6.
#[test]
fn generated_sa_traces_are_accepted_by_the_sa_machine() {
    use cn_fit::{fit, FitConfig, Method};
    use cn_gen::{generate, GenConfig};
    use cn_trace::PopulationMix;
    use cn_world::{generate_world, WorldConfig};

    let world = generate_world(&WorldConfig::new(PopulationMix::new(24, 10, 6), 1.0, 3));
    let sa = adapt_model(
        &fit(&world, &FitConfig::new(Method::Ours)),
        &ScalingProfile::SA,
    );
    let trace = generate(
        &sa,
        &GenConfig::new(
            PopulationMix::new(30, 12, 8),
            Timestamp::at_hour(0, 10),
            4.0,
            77,
        ),
    );
    assert!(!trace.is_empty(), "SA generation produced an empty trace");

    // No TAU anywhere (the renderer enforces this too), and the mapped
    // stream walks the SA machine legally per UE. A UE's first event of the
    // window need not be a registration (the first-event model can start a
    // UE mid-session), so the initial state is inferred from it.
    let records = to_sa_records(&trace).expect("SA model must not emit TAU");
    assert_eq!(records.len(), trace.len());
    let mut states: HashMap<UeId, Sa5gState> = HashMap::new();
    for r in trace.iter() {
        match states.get_mut(&r.ue) {
            None => {
                let s = Sa5gState::after_event(r.event)
                    .unwrap_or_else(|| panic!("first event {:?} has no SA state", r.event));
                states.insert(r.ue, s);
            }
            Some(s) => {
                let next = s.apply(r.event).unwrap_or_else(|| {
                    panic!(
                        "SA machine rejected {:?} in {:?} for {:?} at {}",
                        r.event, s, r.ue, r.t
                    )
                });
                *s = next;
            }
        }
    }
    // The conversion kept every UE's event count.
    let mut lte_counts: HashMap<UeId, usize> = HashMap::new();
    for r in trace.iter() {
        *lte_counts.entry(r.ue).or_default() += 1;
    }
    let mut sa_counts: HashMap<UeId, usize> = HashMap::new();
    for r in &records {
        *sa_counts.entry(r.ue).or_default() += 1;
    }
    assert_eq!(sa_counts, lte_counts);
}

#[test]
fn event5g_mapping_is_total_except_tau() {
    for e in EventType::ALL {
        match Event5G::from_4g(e) {
            Some(g) => assert_eq!(g.to_4g(), e),
            None => assert_eq!(e, EventType::Tau, "only TAU has no SA counterpart"),
        }
    }
}
