//! Rendering traces in the 5G SA vocabulary.
//!
//! The generator works in the 4G event vocabulary throughout (5G SA is a
//! pure relabeling per Table 2). This module performs that relabeling at
//! the output boundary: converting records, rejecting `TAU` (which cannot
//! exist in an SA trace), and writing the CSV consumers of a 5G core
//! simulator expect.

use crate::mapping::Event5G;
use cn_trace::{DeviceType, Timestamp, Trace, UeId};
use serde::{Deserialize, Serialize};
use std::io::Write;

/// One 5G SA control-plane event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record5G {
    /// Event timestamp.
    pub t: Timestamp,
    /// Originating UE.
    pub ue: UeId,
    /// Device type.
    pub device: DeviceType,
    /// The 5G event.
    pub event: Event5G,
}

/// Why a 4G trace could not be rendered as 5G SA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TauInSaTrace {
    /// Index of the offending record.
    pub index: usize,
    /// The UE that emitted it.
    pub ue: UeId,
}

impl std::fmt::Display for TauInSaTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record #{} ({}) is a TAU — not representable in a 5G SA trace",
            self.index, self.ue
        )
    }
}

impl std::error::Error for TauInSaTrace {}

/// Convert a 4G-vocabulary trace (as produced from an SA-adapted model)
/// into 5G SA records. Fails on the first `TAU`, which indicates the trace
/// was not generated from an SA model.
pub fn to_sa_records(trace: &Trace) -> Result<Vec<Record5G>, TauInSaTrace> {
    trace
        .iter()
        .enumerate()
        .map(|(index, r)| match Event5G::from_4g(r.event) {
            Some(event) => Ok(Record5G {
                t: r.t,
                ue: r.ue,
                device: r.device,
                event,
            }),
            None => Err(TauInSaTrace { index, ue: r.ue }),
        })
        .collect()
}

/// Write SA records as CSV (`t_ms,ue,device,event` with 5G mnemonics).
pub fn write_sa_csv<W: Write>(records: &[Record5G], mut w: W) -> std::io::Result<()> {
    writeln!(w, "t_ms,ue,device,event")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{}",
            r.t.as_millis(),
            r.ue.get(),
            r.device.abbrev(),
            r.event.mnemonic()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{EventType, TraceRecord};

    fn rec(t: u64, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(0), DeviceType::Phone, e)
    }

    #[test]
    fn clean_sa_trace_converts() {
        let t = Trace::from_records(vec![
            rec(0, EventType::Attach),
            rec(10, EventType::Handover),
            rec(20, EventType::S1ConnRelease),
            rec(30, EventType::ServiceRequest),
        ]);
        let records = to_sa_records(&t).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].event, Event5G::Register);
        assert_eq!(records[2].event, Event5G::AnRelease);
        let mut csv = Vec::new();
        write_sa_csv(&records, &mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert!(text.contains("REGISTER"));
        assert!(text.contains("AN_REL"));
        assert!(!text.contains("TAU"));
    }

    #[test]
    fn tau_is_rejected_with_position() {
        let t = Trace::from_records(vec![rec(0, EventType::Attach), rec(5, EventType::Tau)]);
        let err = to_sa_records(&t).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("TAU"));
    }

    #[test]
    fn generated_sa_traces_render() {
        use crate::scale::{adapt_model, ScalingProfile};
        use cn_fit::{fit, FitConfig, Method};
        use cn_gen::{generate, GenConfig};
        use cn_trace::PopulationMix;
        use cn_world::{generate_world, WorldConfig};
        let world = generate_world(&WorldConfig::new(PopulationMix::new(20, 10, 5), 1.0, 3));
        let sa = adapt_model(
            &fit(&world, &FitConfig::new(Method::Ours)),
            &ScalingProfile::SA,
        );
        let trace = generate(
            &sa,
            &GenConfig::new(
                PopulationMix::new(20, 10, 5),
                Timestamp::at_hour(0, 12),
                3.0,
                8,
            ),
        );
        let records = to_sa_records(&trace).expect("SA model emits no TAU");
        assert_eq!(records.len(), trace.len());
    }
}
