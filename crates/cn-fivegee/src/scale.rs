//! Deriving 5G model parameters by scaling the fitted 4G model (§6).
//!
//! With no large-scale 5G trace available, the paper scales the 4G model:
//! if a UE incurs `k×` more HO events on 5G, HO-triggered transitions are
//! upweighted by `k` (then renormalized against their sibling branches)
//! and their sojourn/inter-arrival laws shrunk by `1/k`. For 5G SA, TAU
//! does not exist: every TAU-triggered branch — and, transitively, every
//! branch leaving a TAU-entered state — is removed, reducing the machine
//! to Fig. 6.

use crate::mapping::Event5G;
use cn_fit::{Branch, ModelSet, TransitionLike};
use cn_statemachine::two_level::{ConnSub, IdleSub};
use cn_statemachine::TlState;
use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// 5G deployment mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FiveGMode {
    /// Non-standalone: 5G RAN on the LTE core; keeps LTE's machine/events.
    Nsa,
    /// Standalone: 5G core; Table 2 vocabulary, no TAU (Fig. 6 machine).
    Sa,
}

impl FiveGMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FiveGMode::Nsa => "5G NSA",
            FiveGMode::Sa => "5G SA",
        }
    }
}

impl std::fmt::Display for FiveGMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Event-frequency scaling factors for a 5G adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingProfile {
    /// Deployment mode (SA additionally removes TAU).
    pub mode: FiveGMode,
    /// HO frequency multiplier.
    pub ho_factor: f64,
}

impl ScalingProfile {
    /// The paper's NSA profile: HO ×4.6 (from the mmWave measurement study
    /// the paper cites as \[32\]).
    pub const NSA: ScalingProfile = ScalingProfile {
        mode: FiveGMode::Nsa,
        ho_factor: 4.6,
    };

    /// The paper's SA profile: HO ×3.0 (the authors' controlled
    /// walking/driving experiment, §8.2).
    pub const SA: ScalingProfile = ScalingProfile {
        mode: FiveGMode::Sa,
        ho_factor: 3.0,
    };
}

/// Whether a flattened two-level state is TAU-entered (removed under SA).
fn is_tau_state(s: TlState) -> bool {
    matches!(
        s,
        TlState::Connected(ConnSub::TauSConn)
            | TlState::Idle(IdleSub::TauSIdle)
            | TlState::Idle(IdleSub::S1RelS2)
    )
}

/// Scale/transform one branch set according to the profile.
fn adapt_branch<T: TransitionLike<State = S>, S: Copy>(
    b: &Branch<T>,
    profile: &ScalingProfile,
    tau_state: impl Fn(S) -> bool,
) -> Option<Branch<T>> {
    let event = b.transition.trigger();
    if profile.mode == FiveGMode::Sa {
        // SA has no TAU: drop TAU branches and branches touching
        // TAU-entered states (S1_REL_S_2 exists only to serve idle TAUs).
        if event == EventType::Tau
            || tau_state(b.transition.from_state())
            || tau_state(b.transition.to_state())
        {
            return None;
        }
    }
    if event == EventType::Handover {
        Some(Branch {
            transition: b.transition,
            prob: b.prob * profile.ho_factor,
            sojourn: b.sojourn.scale_values(1.0 / profile.ho_factor),
        })
    } else {
        Some(b.clone())
    }
}

/// Adapt a fitted 4G model set into a 5G model set (§6).
///
/// The returned set keeps the 4G event vocabulary (5G renaming is a pure
/// relabeling, [`Event5G::from_4g`]); for SA, `TAU` simply never occurs.
pub fn adapt_model(set: &ModelSet, profile: &ScalingProfile) -> ModelSet {
    let mut out = set.clone();
    for dm in &mut out.devices {
        for hm in &mut dm.hours {
            for c in &mut hm.clusters {
                // Scale the per-visit *arming* probabilities first (they
                // need the original branch mix): a state visit that produced
                // a second-level event with probability `a = 1 − p_exit`
                // does so `k×` as often when its HO-triggered share is
                // boosted by `k` (and not at all via branches SA removes).
                c.bottom_exit = c
                    .bottom_exit
                    .iter()
                    .filter(|(s, _)| profile.mode != FiveGMode::Sa || !is_tau_state(*s))
                    .map(|&(s, p_exit)| {
                        let armed = 1.0 - p_exit;
                        let weight: f64 = c
                            .bottom
                            .outgoing(s)
                            .iter()
                            .map(|b| {
                                let ev = b.transition.trigger();
                                if profile.mode == FiveGMode::Sa
                                    && (ev == EventType::Tau
                                        || is_tau_state(b.transition.to_state()))
                                {
                                    0.0
                                } else if ev == EventType::Handover {
                                    b.prob * profile.ho_factor
                                } else {
                                    b.prob
                                }
                            })
                            .sum();
                        (s, 1.0 - (armed * weight).min(1.0))
                    })
                    .collect();
                c.top = c.top.map_branches(|b| adapt_branch(b, profile, |_| false));
                c.bottom = c
                    .bottom
                    .map_branches(|b| adapt_branch(b, profile, is_tau_state));
                if profile.mode == FiveGMode::Sa {
                    c.tau_interarrival = None;
                    // Remove TAU from first-event mixes and renormalize.
                    let kept: Vec<(EventType, f64)> = c
                        .first_event
                        .events
                        .iter()
                        .filter(|(e, _)| Event5G::from_4g(*e).is_some())
                        .copied()
                        .collect();
                    let total: f64 = kept.iter().map(|(_, p)| p).sum();
                    if total > 0.0 {
                        c.first_event.events =
                            kept.into_iter().map(|(e, p)| (e, p / total)).collect();
                    } else {
                        c.first_event = cn_fit::FirstEventModel::empty();
                    }
                }
                if let Some(d) = &c.ho_interarrival {
                    c.ho_interarrival = Some(d.scale_values(1.0 / profile.ho_factor));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_fit::{fit, FitConfig, Method};
    use cn_statemachine::BottomTransition;
    use cn_trace::{DeviceType, PopulationMix};
    use cn_world::{generate_world, WorldConfig};

    fn fitted() -> ModelSet {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(40, 25, 10), 2.0, 13));
        fit(&trace, &FitConfig::new(Method::Ours))
    }

    #[test]
    fn sa_removes_all_tau() {
        let set = fitted();
        let sa = adapt_model(&set, &ScalingProfile::SA);
        for dm in &sa.devices {
            for hm in &dm.hours {
                for c in &hm.clusters {
                    for t in BottomTransition::ALL {
                        if t.event() == EventType::Tau || is_tau_state(t.from()) {
                            assert_eq!(c.bottom.prob(t), 0.0, "{t} survived SA");
                        }
                    }
                    assert!(c.tau_interarrival.is_none());
                    assert!(c
                        .first_event
                        .events
                        .iter()
                        .all(|(e, _)| *e != EventType::Tau));
                }
            }
        }
    }

    #[test]
    fn nsa_keeps_tau_but_boosts_ho() {
        let set = fitted();
        let nsa = adapt_model(&set, &ScalingProfile::NSA);
        let mut ho_boosted = false;
        let mut tau_survives = false;
        for (dm4, dm5) in set.devices.iter().zip(&nsa.devices) {
            for (h4, h5) in dm4.hours.iter().zip(&dm5.hours) {
                for (c4, c5) in h4.clusters.iter().zip(&h5.clusters) {
                    for t in BottomTransition::ALL {
                        let p4 = c4.bottom.prob(t);
                        let p5 = c5.bottom.prob(t);
                        if t.event() == EventType::Tau && p4 > 0.0 {
                            tau_survives |= p5 > 0.0;
                        }
                        if t.event() == EventType::Handover && p4 > 0.0 && p4 < 1.0 {
                            ho_boosted |= p5 > p4;
                        }
                    }
                }
            }
        }
        assert!(tau_survives, "NSA must keep TAU");
        assert!(ho_boosted, "NSA must upweight HO branches");
    }

    #[test]
    fn ho_sojourns_shrink() {
        let set = fitted();
        let nsa = adapt_model(&set, &ScalingProfile::NSA);
        let mut checked = false;
        for (dm4, dm5) in set.devices.iter().zip(&nsa.devices) {
            for (h4, h5) in dm4.hours.iter().zip(&dm5.hours) {
                for (c4, c5) in h4.clusters.iter().zip(&h5.clusters) {
                    for t in BottomTransition::ALL {
                        if t.event() != EventType::Handover {
                            continue;
                        }
                        if let (Some(d4), Some(d5)) = (c4.bottom.sojourn(t), c5.bottom.sojourn(t)) {
                            assert!(
                                (d5.mean() - d4.mean() / 4.6).abs() / d4.mean() < 1e-9,
                                "{t}: {} vs {}",
                                d5.mean(),
                                d4.mean() / 4.6
                            );
                            checked = true;
                        }
                    }
                }
            }
        }
        assert!(checked, "no HO sojourn laws found");
    }

    #[test]
    fn probabilities_stay_normalized() {
        let set = fitted();
        for profile in [ScalingProfile::NSA, ScalingProfile::SA] {
            let adapted = adapt_model(&set, &profile);
            for dm in &adapted.devices {
                for hm in &dm.hours {
                    for c in &hm.clusters {
                        for state in c.bottom.states() {
                            let total: f64 = c.bottom.outgoing(state).iter().map(|b| b.prob).sum();
                            assert!((total - 1.0).abs() < 1e-9, "{profile:?} {state:?}: {total}");
                        }
                        for state in c.top.states() {
                            let total: f64 = c.top.outgoing(state).iter().map(|b| b.prob).sum();
                            assert!((total - 1.0).abs() < 1e-9);
                        }
                        let fe_total: f64 = c.first_event.events.iter().map(|(_, p)| p).sum();
                        assert!(
                            c.first_event.is_empty() || (fe_total - 1.0).abs() < 1e-9,
                            "first-event probs {fe_total}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sa_generated_traces_obey_fig6() {
        use cn_gen::{generate, GenConfig};
        use cn_statemachine::fiveg::Sa5gState;
        use cn_trace::Timestamp;
        let set = fitted();
        let sa = adapt_model(&set, &ScalingProfile::SA);
        let config = GenConfig::new(
            PopulationMix::new(20, 10, 5),
            Timestamp::at_hour(0, 10),
            2.0,
            17,
        );
        let trace = generate(&sa, &config);
        assert!(!trace.is_empty());
        // No TAU at all, and every per-UE stream walks the Fig. 6 machine.
        for (ue, events) in trace.per_ue().iter() {
            let mut state = match events[0].event {
                EventType::Attach => Sa5gState::Deregistered,
                EventType::S1ConnRelease | EventType::Handover => {
                    Sa5gState::Connected(cn_statemachine::fiveg::ConnSub5g::SrvReqS)
                }
                _ => Sa5gState::Idle,
            };
            for r in events {
                assert_ne!(r.event, EventType::Tau, "{ue}: TAU in SA trace");
                state = state
                    .apply(r.event)
                    .unwrap_or_else(|| panic!("{ue}: {} illegal in {state}", r.event));
            }
        }
        let _ = DeviceType::ALL; // silence unused import lint paths
    }
}
