//! The 4G ↔ 5G event mapping (Table 2).

use cn_trace::EventType;
use serde::{Deserialize, Serialize};

/// A primary 5G (SA) control-plane event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Event5G {
    /// `REGISTER` (Registration) — 4G `ATCH`.
    Register,
    /// `DEREGISTER` (Deregistration) — 4G `DTCH`.
    Deregister,
    /// `SRV_REQ` (Service Request) — same name in 4G.
    ServiceRequest,
    /// `AN_REL` (AN Release) — 4G `S1_CONN_REL`.
    AnRelease,
    /// `HO` (Handover) — same name in 4G.
    Handover,
}

impl Event5G {
    /// All five 5G event types, in Table 2 order.
    pub const ALL: [Event5G; 5] = [
        Event5G::Register,
        Event5G::Deregister,
        Event5G::ServiceRequest,
        Event5G::AnRelease,
        Event5G::Handover,
    ];

    /// The paper's 5G mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Event5G::Register => "REGISTER",
            Event5G::Deregister => "DEREGISTER",
            Event5G::ServiceRequest => "SRV_REQ",
            Event5G::AnRelease => "AN_REL",
            Event5G::Handover => "HO",
        }
    }

    /// Map a 4G event to its 5G counterpart; `TAU` has none (Table 2's "−").
    pub fn from_4g(event: EventType) -> Option<Event5G> {
        match event {
            EventType::Attach => Some(Event5G::Register),
            EventType::Detach => Some(Event5G::Deregister),
            EventType::ServiceRequest => Some(Event5G::ServiceRequest),
            EventType::S1ConnRelease => Some(Event5G::AnRelease),
            EventType::Handover => Some(Event5G::Handover),
            EventType::Tau => None,
        }
    }

    /// Map back to the 4G vocabulary (always defined — every 5G event has a
    /// 4G counterpart).
    pub fn to_4g(self) -> EventType {
        match self {
            Event5G::Register => EventType::Attach,
            Event5G::Deregister => EventType::Detach,
            Event5G::ServiceRequest => EventType::ServiceRequest,
            Event5G::AnRelease => EventType::S1ConnRelease,
            Event5G::Handover => EventType::Handover,
        }
    }
}

impl std::fmt::Display for Event5G {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Table 2 rows: `(4G event, 5G counterpart or None)`.
pub const TABLE2: [(EventType, Option<Event5G>); 6] = [
    (EventType::Attach, Some(Event5G::Register)),
    (EventType::Detach, Some(Event5G::Deregister)),
    (EventType::ServiceRequest, Some(Event5G::ServiceRequest)),
    (EventType::S1ConnRelease, Some(Event5G::AnRelease)),
    (EventType::Handover, Some(Event5G::Handover)),
    (EventType::Tau, None),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_one_to_one_except_tau() {
        for e in EventType::ALL {
            match Event5G::from_4g(e) {
                Some(g) => assert_eq!(g.to_4g(), e),
                None => assert_eq!(e, EventType::Tau),
            }
        }
    }

    #[test]
    fn table2_is_consistent_with_from_4g() {
        for (e4, e5) in TABLE2 {
            assert_eq!(Event5G::from_4g(e4), e5);
        }
        assert_eq!(TABLE2.len(), 6);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Event5G::AnRelease.to_string(), "AN_REL");
        assert_eq!(Event5G::Register.to_string(), "REGISTER");
    }
}
