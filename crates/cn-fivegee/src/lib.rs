//! 5G adaptation of the LTE traffic model (§6 of the paper).
//!
//! Two deployment modes are modeled (§8.2):
//!
//! * **5G NSA** (non-standalone) runs on LTE's core, shares LTE's event
//!   vocabulary and the unmodified two-level machine; only event
//!   *frequencies* change (HO most of all — mmWave cells are small).
//! * **5G SA** (standalone) renames the events per Table 2
//!   ([`mapping`]), has **no TAU**, and uses the reduced machine of Fig. 6.
//!
//! Because no large-scale 5G trace exists, the paper derives 5G model
//! parameters by *scaling* the fitted 4G model: HO ×4.6 for NSA (from the
//! measurement study \[32\]) and ×3.0 for SA (the authors' own controlled
//! walking/driving experiment). [`scale`] applies those factors to a fitted
//! [`cn_fit::ModelSet`] — upweighting HO-triggered branches and shrinking
//! HO sojourn laws — and, for SA, removes every TAU-related state and
//! transition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mapping;
pub mod render;
pub mod scale;

pub use mapping::{Event5G, TABLE2};
pub use render::{to_sa_records, write_sa_csv, Record5G};
pub use scale::{adapt_model, FiveGMode, ScalingProfile};
