//! Overload control under synthesized signaling storms — the scenario
//! engine driving the admission controller end to end.
//!
//! `cn-scenario` injects storm bursts with a deliberate RNG discipline:
//! burst `i` of a UE reuses the first `i` draws of burst `i+1`'s stream,
//! so a storm of intensity `k` is a *prefix multiset* of one of intensity
//! `k' > k`. Combined with the admission controller's proven property
//! that offering a superset of load never reduces total shed, the shed
//! count must rise monotonically along a `bursts_per_ue` sweep — and the
//! priority ordering (low shed hardest, critical protected) must hold at
//! every intensity.

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::GenConfig;
use cn_mcn::overload::{apply, apply_observed, AdmissionPolicy, Priority};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, Phase, PhaseKind, ScenarioSpec, StormKind, TimeWindow, UeSubset,
};
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};

fn fitted() -> ModelSet {
    let trace = generate_world(&WorldConfig::new(PopulationMix::new(20, 8, 4), 2.0, 3));
    fit(&trace, &FitConfig::new(Method::Ours))
}

fn config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(20, 8, 4),
        Timestamp::at_hour(0, 9),
        2.0,
        0x0005_7021,
    )
}

/// A short, violent paging storm over the whole population: every burst
/// lands inside a 2-minute window, so intensity translates directly into
/// instantaneous queue pressure.
fn storm(bursts_per_ue: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "mcn-storm".into(),
        seed: 0x5701,
        phases: vec![Phase {
            name: "paging".into(),
            window: TimeWindow::new(1800.0, 120.0),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(0, 32),
                kind: StormKind::Paging,
                bursts_per_ue,
            },
        }],
    }
}

fn storm_trace(models: &ModelSet, bursts_per_ue: u32) -> Trace {
    let (trace, stats) = apply_scenario(
        &storm(bursts_per_ue),
        models,
        &config(),
        &Registry::disabled(),
    )
    .expect("storm scenario");
    // Paging bursts inject a SRV_REQ + S1_CONN_REL pair each.
    assert_eq!(stats.injected, u64::from(bursts_per_ue) * 32 * 2);
    trace
}

/// A policy tight enough that the storm window saturates it but the
/// steady state mostly clears.
fn policy() -> AdmissionPolicy {
    AdmissionPolicy {
        rate_per_sec: 0.5,
        burst: 20.0,
        high_reserve: 0.3,
        critical_reserve: 0.1,
    }
}

#[test]
fn shed_rises_monotonically_with_storm_intensity() {
    let models = fitted();
    let policy = policy();
    let mut last_shed = 0u64;
    let mut last_injected_shed = [0u64; 3];
    for bursts in [1u32, 3, 6, 10] {
        let trace = storm_trace(&models, bursts);
        let (report, admitted) = apply(&trace, &policy);
        assert_eq!(
            report.total_admitted() + report.total_shed(),
            trace.len() as u64
        );
        assert_eq!(report.total_admitted(), admitted.len() as u64);
        // Monotone: a more intense storm (a multiset superset of the
        // weaker one, by the prefix-multiset injection discipline) never
        // sheds less in total.
        assert!(
            report.total_shed() >= last_shed,
            "bursts={bursts}: shed fell from {last_shed} to {}",
            report.total_shed()
        );
        // Per-priority shed counts are monotone too (the storm adds only
        // High-priority paging traffic, which squeezes every class).
        for (i, (now, before)) in report
            .shed
            .iter()
            .zip(last_injected_shed.iter())
            .enumerate()
        {
            assert!(
                now >= before,
                "bursts={bursts}: class {i} shed fell from {before} to {now}"
            );
        }
        last_shed = report.total_shed();
        last_injected_shed = report.shed;
    }
    assert!(last_shed > 0, "the heaviest storm must overload the bucket");
}

/// A two-phase recovery avalanche: a paging storm (High priority) that
/// drains the bucket, running straight into a TAU flood (Low priority)
/// that arrives while it is depleted — both classes contend inside one
/// congested region, where the priority reserves are actually exercised.
/// (Shedding is temporally local, so the ordering is only observable
/// where the classes compete for the same bucket.)
fn avalanche(bursts_per_ue: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "mcn-avalanche".into(),
        seed: 0x5702,
        phases: vec![
            Phase {
                name: "paging".into(),
                window: TimeWindow::new(1740.0, 120.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 32),
                    kind: StormKind::Paging,
                    bursts_per_ue,
                },
            },
            Phase {
                name: "tau-flood".into(),
                window: TimeWindow::new(1860.0, 60.0),
                kind: PhaseKind::SignalingStorm {
                    ues: UeSubset::new(0, 32),
                    kind: StormKind::TauFlood,
                    bursts_per_ue,
                },
            },
        ],
    }
}

/// Events per priority class within `[lo_ms, hi_ms)`.
fn class_counts(trace: &Trace, lo_ms: u64, hi_ms: u64) -> [u64; 3] {
    let mut counts = [0u64; 3];
    for r in trace.iter() {
        let t = r.t.as_millis();
        if lo_ms <= t && t < hi_ms {
            counts[cn_mcn::overload::priority_of(r.event) as usize] += 1;
        }
    }
    counts
}

#[test]
fn priority_ordering_holds_at_every_intensity() {
    let models = fitted();
    let config = config();
    let policy = policy();
    for bursts in [3u32, 6, 10] {
        let (trace, _) =
            apply_scenario(&avalanche(bursts), &models, &config, &Registry::disabled())
                .expect("avalanche scenario");
        let (report, admitted) = apply(&trace, &policy);
        // Registration integrity is global: never shed, at any intensity.
        assert_eq!(
            report.shed[Priority::Critical as usize],
            0,
            "bursts={bursts}: registration traffic must never be shed by this policy"
        );
        // Shed fractions within the congested region [1740 s, 1920 s):
        // the admitted trace is a subsequence of the input, so per-class
        // window counts subtract cleanly.
        let lo = config.start.as_millis() + 1_740_000;
        let hi = config.start.as_millis() + 1_920_000;
        let offered = class_counts(&trace, lo, hi);
        let kept = class_counts(&admitted, lo, hi);
        let frac = |p: Priority| {
            let i = p as usize;
            (offered[i] - kept[i]) as f64 / offered[i].max(1) as f64
        };
        assert!(
            offered[Priority::Low as usize] > 0 && offered[Priority::High as usize] > 0,
            "bursts={bursts}: both classes must contend in the region"
        );
        let (low, high, critical) = (
            frac(Priority::Low),
            frac(Priority::High),
            frac(Priority::Critical),
        );
        assert!(
            low >= high && high >= critical,
            "bursts={bursts}: shed fractions out of order (low={low}, high={high}, critical={critical})"
        );
        assert!(
            low > 0.0,
            "bursts={bursts}: the avalanche must overload the bucket"
        );
    }
}

#[test]
fn observed_storm_run_exports_shed_counters() {
    let models = fitted();
    let registry = Registry::new();
    let trace = storm_trace(&models, 8);
    let (report, _) = apply_observed(&trace, &policy(), &registry);
    assert!(report.total_shed() > 0, "storm must overload the bucket");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_total("cn_mcn_overload_shed_total"),
        Some(report.total_shed())
    );
    assert_eq!(
        snap.counter_total("cn_mcn_overload_admitted_total"),
        Some(report.total_admitted())
    );
}
