//! Property-based tests for the overload-control admission policy.
//!
//! The token-bucket controller makes four promises that must hold for
//! *every* trace and policy, not just the storm shapes of the unit tests:
//! the admitted trace is a subsequence of the input, order is preserved,
//! a shed `Critical` event is never followed (within the same instant,
//! where no tokens can refill) by an admitted lower-priority event, and
//! offering strictly more load never reduces the total shed count.

use cn_mcn::overload::{apply, priority_of, AdmissionPolicy, Priority};
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;

/// A random trace: bursty gaps (many zero-millisecond ties to stress the
/// no-refill path) over all six event types and a few UEs.
fn arb_records() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec((0u64..800, 0u8..6, 0u32..4), 0..200).prop_map(|triples| {
        let mut t = 0u64;
        triples
            .into_iter()
            .map(|(gap, code, ue)| {
                // Map small gaps to 0 so same-instant runs are common.
                t += gap.saturating_sub(400);
                TraceRecord::new(
                    Timestamp::from_millis(t),
                    UeId(ue),
                    DeviceType::Phone,
                    EventType::from_code(code).unwrap(),
                )
            })
            .collect()
    })
}

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    (1u32..200, 1u32..100, 0u32..=5, 0u32..=5).prop_map(|(rate, burst, high, critical)| {
        AdmissionPolicy {
            rate_per_sec: rate as f64 / 4.0,
            burst: burst as f64,
            high_reserve: high as f64 / 10.0,
            critical_reserve: critical as f64 / 10.0,
        }
    })
}

/// Greedy subsequence match of `admitted` against `input`; returns one
/// admission flag per input position, or `None` if `admitted` is not a
/// subsequence (which is itself a property violation).
fn admission_flags(input: &Trace, admitted: &Trace) -> Option<Vec<bool>> {
    let mut flags = vec![false; input.len()];
    let mut ai = admitted.iter().peekable();
    for (i, rec) in input.iter().enumerate() {
        if ai.peek() == Some(&rec) {
            flags[i] = true;
            ai.next();
        }
    }
    if ai.next().is_none() {
        Some(flags)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The admitted trace is a subsequence of the input: same records, same
    /// relative order, nothing fabricated.
    #[test]
    fn admitted_is_an_ordered_subsequence(records in arb_records(), policy in arb_policy()) {
        let input = Trace::from_records(records);
        let (report, admitted) = apply(&input, &policy);
        prop_assert!(
            admission_flags(&input, &admitted).is_some(),
            "admitted trace is not a subsequence of the input"
        );
        prop_assert_eq!(admitted.len() as u64, report.total_admitted());
        prop_assert_eq!(
            (input.len() - admitted.len()) as u64,
            report.total_shed()
        );
    }

    /// Per-class accounting is complete: every input event is counted
    /// exactly once, in the class of its own priority.
    #[test]
    fn report_partitions_the_input(records in arb_records(), policy in arb_policy()) {
        let input = Trace::from_records(records);
        let (report, _) = apply(&input, &policy);
        for (i, p) in [Priority::Critical, Priority::High, Priority::Low].into_iter().enumerate() {
            let class_total = input.iter().filter(|r| priority_of(r.event) == p).count() as u64;
            prop_assert_eq!(report.admitted[i] + report.shed[i], class_total);
        }
    }

    /// Within one instant (equal timestamps, so no token refill can happen)
    /// a shed `Critical` event is never followed by an admitted event of a
    /// lower priority class: critical traffic has the lowest floor, so once
    /// it is refused, everything below is refused too.
    #[test]
    fn critical_never_shed_while_lower_admitted_in_same_instant(
        records in arb_records(),
        policy in arb_policy(),
    ) {
        let input = Trace::from_records(records);
        let (_, admitted) = apply(&input, &policy);
        let flags = admission_flags(&input, &admitted).expect("subsequence");
        let recs: Vec<&TraceRecord> = input.iter().collect();
        for i in 0..recs.len() {
            if flags[i] || priority_of(recs[i].event) != Priority::Critical {
                continue;
            }
            for (j, rec) in recs.iter().enumerate().skip(i + 1) {
                if rec.t != recs[i].t {
                    break;
                }
                prop_assert!(
                    !(flags[j] && priority_of(rec.event) > Priority::Critical),
                    "critical shed at index {} but lower-priority {:?} admitted at {} in the \
                     same instant",
                    i, rec.event, j
                );
            }
        }
    }

    /// Offered load is monotone: adding events to a trace never decreases
    /// the total shed count — extra demand cannot create admission capacity.
    #[test]
    fn shed_counts_monotone_in_offered_load(
        base in arb_records(),
        extra in arb_records(),
        policy in arb_policy(),
    ) {
        let a = Trace::from_records(base.clone());
        let mut combined = base;
        combined.extend(extra);
        let b = Trace::from_records(combined);
        let (report_a, _) = apply(&a, &policy);
        let (report_b, _) = apply(&b, &policy);
        prop_assert!(
            report_b.total_shed() >= report_a.total_shed(),
            "shed went down under heavier load: {} -> {}",
            report_a.total_shed(),
            report_b.total_shed()
        );
    }
}
