//! Order-independence of the message-level queueing simulation.
//!
//! [`cn_mcn::messages::expand`] serializes each procedure's signaling
//! flow sequentially (event time + 1 ms per step), so the expansions of
//! *overlapping* procedures interleave out of time order. The simulator
//! used to take `t0` from whatever message came first in stream order
//! and run its backlog logic under a non-decreasing-arrival assumption —
//! silently wrong waits and utilization. After the sort-merge fix the
//! report must be a pure function of the message *multiset*: any
//! permutation of the expanded stream yields the exact same report.

use cn_mcn::{expand, MessageRecord, MessageServiceProfile, QueueReport, QueueSim, ServiceProfile};
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn event(idx: usize) -> EventType {
    EventType::ALL[idx % EventType::ALL.len()]
}

/// Deterministic Fisher–Yates shuffle.
fn shuffled(mut records: Vec<MessageRecord>, seed: u64) -> Vec<MessageRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..records.len()).rev() {
        let j = rng.gen::<u64>() as usize % (i + 1);
        records.swap(i, j);
    }
    records
}

fn assert_reports_equal(a: &QueueReport, b: &QueueReport, what: &str) {
    assert_eq!(a.served, b.served, "{what}: served");
    assert_eq!(a.peak_backlog, b.peak_backlog, "{what}: peak backlog");
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms, "{what}: mean");
    assert_eq!(a.p50_latency_ms, b.p50_latency_ms, "{what}: p50");
    assert_eq!(a.p99_latency_ms, b.p99_latency_ms, "{what}: p99");
    assert_eq!(a.max_latency_ms, b.max_latency_ms, "{what}: max");
    assert_eq!(a.utilization, b.utilization, "{what}: utilization");
}

proptest! {
    /// Shuffling the expanded message stream never changes the report.
    #[test]
    fn report_is_invariant_under_message_permutation(
        // Events packed into a 50 ms span over few UEs: procedure flows
        // (up to 19 messages, 1 ms apart) are guaranteed to overlap, so
        // `expand` output is genuinely out of time order.
        raw in prop::collection::vec((0u64..50, 0u32..6, 0usize..6), 1..40),
        shuffle_seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        let trace = Trace::from_records(
            raw.iter()
                .map(|&(t, ue, e)| {
                    TraceRecord::new(
                        Timestamp::from_millis(t),
                        UeId(ue),
                        DeviceType::Phone,
                        event(e),
                    )
                })
                .collect(),
        );
        let messages: Vec<MessageRecord> = expand(&trace).collect();
        // Sanity: the interleaving this suite exists for must be present
        // in at least some cases; a single event can't produce it.
        let out_of_order = messages.windows(2).any(|w| w[1].t < w[0].t);
        if trace.len() > 1 {
            // Not asserted per-case (tiny traces can happen to be
            // ordered), but exercised: the shuffle below always is.
            let _ = out_of_order;
        }

        let sim = QueueSim::new(ServiceProfile::default_mme(), workers);
        let profile = MessageServiceProfile::default_epc();
        let baseline = sim.run_messages(messages.clone(), &profile).expect("non-empty");

        let permuted = shuffled(messages, shuffle_seed);
        let report = sim.run_messages(permuted, &profile).expect("non-empty");
        assert_reports_equal(&baseline, &report, "shuffled vs expand-order");
    }
}

/// The concrete failure the fix addresses: two overlapping attaches where
/// the *second* UE's flow starts earlier in stream order than the tail of
/// the first — pre-fix, t0 and the backlog clock came from stream order
/// and overstated waits.
#[test]
fn overlapping_attaches_are_order_independent() {
    let trace = Trace::from_records(vec![
        TraceRecord::new(
            Timestamp::from_millis(0),
            UeId(0),
            DeviceType::Phone,
            EventType::Attach,
        ),
        TraceRecord::new(
            Timestamp::from_millis(4),
            UeId(1),
            DeviceType::Phone,
            EventType::Attach,
        ),
    ]);
    let messages: Vec<MessageRecord> = expand(&trace).collect();
    assert!(
        messages.windows(2).any(|w| w[1].t < w[0].t),
        "expansions of overlapping attaches must interleave out of order"
    );
    let sim = QueueSim::new(ServiceProfile::default_mme(), 2);
    let profile = MessageServiceProfile::default_epc();
    let forward = sim
        .run_messages(messages.clone(), &profile)
        .expect("non-empty");
    let mut reversed = messages;
    reversed.reverse();
    let backward = sim.run_messages(reversed, &profile).expect("non-empty");
    assert_reports_equal(&forward, &backward, "reversed vs expand-order");
}
