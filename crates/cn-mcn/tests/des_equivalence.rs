//! M/D/c sanity: on a single-NF, one-transaction-per-event,
//! deterministic-service configuration, the event-calendar DES *is* the
//! analytic multi-worker FIFO of [`QueueSim`] — same trace, same
//! latencies, same utilization. Any drift between the two models on this
//! common subset is a bug in one of them.

use cn_mcn::{
    deterministic_service, DesConfig, DesSim, NetworkFunction, NfConfig, QueueSim, ServiceProfile,
    TransactionMatrix,
};
use cn_obs::Registry;
use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
use proptest::prelude::*;

/// A DES world equivalent to `QueueSim::new(uniform(service_us), servers)`:
/// one MME pool, every event one MME transaction, service deterministic.
fn single_nf(servers: usize, service_us: f64) -> DesConfig {
    DesConfig {
        seed: 0,
        nfs: vec![NfConfig {
            nf: NetworkFunction::Mme,
            servers,
            service: deterministic_service(service_us),
            autoscale: None,
        }],
        matrix: TransactionMatrix {
            transactions: [[1, 0, 0, 0, 0]; 6],
        },
        admission: None,
    }
}

fn event(idx: usize) -> EventType {
    EventType::ALL[idx % EventType::ALL.len()]
}

proptest! {
    /// Same trace through both models: percentiles agree to rounding and
    /// utilization exactly (identical busy time over the same horizon).
    #[test]
    fn des_matches_analytic_queue_on_common_subset(
        raw in prop::collection::vec((0u64..2_000, 0u32..16, 0usize..6), 1..120),
        servers in 1usize..5,
        service_us in 100.0f64..20_000.0,
    ) {
        let trace = Trace::from_records(
            raw.iter()
                .map(|&(t, ue, e)| {
                    TraceRecord::new(
                        Timestamp::from_millis(t),
                        UeId(ue),
                        DeviceType::Phone,
                        event(e),
                    )
                })
                .collect(),
        );
        let analytic = QueueSim::new(ServiceProfile::uniform(service_us), servers)
            .run(&trace)
            .expect("non-empty");
        let des = DesSim::run_trace(single_nf(servers, service_us), &trace, &Registry::disabled())
            .expect("valid config");

        prop_assert_eq!(des.completed, analytic.served);
        prop_assert!((des.mean_latency_ms - analytic.mean_latency_ms).abs() < 1e-9);
        prop_assert!((des.p50_latency_ms - analytic.p50_latency_ms).abs() < 1e-9);
        prop_assert!((des.p99_latency_ms - analytic.p99_latency_ms).abs() < 1e-9);
        prop_assert!((des.max_latency_ms - analytic.max_latency_ms).abs() < 1e-9);
        prop_assert_eq!(des.per_nf.len(), 1);
        prop_assert!((des.per_nf[0].utilization - analytic.utilization).abs() < 1e-12);
    }
}

/// Saturation corner pinned exactly: back-to-back arrivals on one server
/// keep it busy 100% of the horizon in both models.
#[test]
fn saturated_single_server_agrees_at_utilization_one() {
    let trace = Trace::from_records(
        (0..50)
            .map(|_| {
                TraceRecord::new(
                    Timestamp::from_millis(0),
                    UeId(0),
                    DeviceType::Phone,
                    EventType::Tau,
                )
            })
            .collect(),
    );
    let analytic = QueueSim::new(ServiceProfile::uniform(1_000.0), 1)
        .run(&trace)
        .expect("non-empty");
    let des = DesSim::run_trace(single_nf(1, 1_000.0), &trace, &Registry::disabled())
        .expect("valid config");
    assert_eq!(analytic.utilization, 1.0);
    assert_eq!(des.per_nf[0].utilization, 1.0);
    assert_eq!(des.max_latency_ms, analytic.max_latency_ms);
}
