//! Monotone degradation of the DES under the storm sweep.
//!
//! `cn-scenario` injects storm bursts with the prefix-multiset RNG
//! discipline (PR 7): a storm of intensity `k` is a multiset subset of
//! one of intensity `k' > k`, record for record. The DES draws each
//! job's service times from its own RNG keyed on `(seed, ue, t, event)`,
//! so the shared records carry *identical* service times across the
//! sweep — higher intensity strictly adds jobs to a fixed-pool FIFO
//! system (Kiefer–Wolfowitz monotonicity) and strictly adds demand to
//! the admission bucket. Hence, along the sweep:
//!
//! * with fixed pools and no admission, p99 and max latency never fall;
//! * with the admission controller on, the shed count and shed rate
//!   never fall.
//!
//! Autoscaling is deliberately *off* here: scaling up under heavier load
//! legitimately reduces latency, which is the point of the policy, not a
//! violation of the model.

use std::sync::OnceLock;

use cn_fit::{fit, FitConfig, Method, ModelSet};
use cn_gen::GenConfig;
use cn_mcn::{
    AdmissionPolicy, DesConfig, DesReport, DesSim, NetworkFunction, NfConfig, TransactionMatrix,
};
use cn_obs::Registry;
use cn_scenario::{
    apply_scenario, Phase, PhaseKind, ScenarioSpec, StormKind, TimeWindow, UeSubset,
};
use cn_stats::{Dist, LogNormal};
use cn_trace::{PopulationMix, Timestamp, Trace};
use cn_world::{generate_world, WorldConfig};
use proptest::prelude::*;

fn models() -> &'static ModelSet {
    static MODELS: OnceLock<ModelSet> = OnceLock::new();
    MODELS.get_or_init(|| {
        let trace = generate_world(&WorldConfig::new(PopulationMix::new(20, 8, 4), 2.0, 3));
        fit(&trace, &FitConfig::new(Method::Ours))
    })
}

fn config() -> GenConfig {
    GenConfig::new(
        PopulationMix::new(20, 8, 4),
        Timestamp::at_hour(0, 9),
        2.0,
        0x0005_7021,
    )
}

/// The PR 7 storm compressed into a 2-second window over the whole
/// population: even one burst per UE overcommits the tight pools below
/// (~160 MME transactions of 20 ms each against 2 s of one server), so
/// the latency tail lives *inside* the window at every intensity — the
/// regime where p99 over all completions is a clean monotonicity probe
/// (a mild storm whose jobs finish below the baseline tail would dilute
/// the percentile instead).
fn storm(seed: u64, bursts_per_ue: u32) -> ScenarioSpec {
    ScenarioSpec {
        name: "des-storm".into(),
        seed,
        phases: vec![Phase {
            name: "paging".into(),
            window: TimeWindow::new(1800.0, 2.0),
            kind: PhaseKind::SignalingStorm {
                ues: UeSubset::new(0, 32),
                kind: StormKind::Paging,
                bursts_per_ue,
            },
        }],
    }
}

fn storm_trace(seed: u64, bursts_per_ue: u32) -> Trace {
    let (trace, stats) = apply_scenario(
        &storm(seed, bursts_per_ue),
        models(),
        &config(),
        &Registry::disabled(),
    )
    .expect("storm scenario");
    assert_eq!(stats.injected, u64::from(bursts_per_ue) * 32 * 2);
    trace
}

/// Tight fixed pools: the storm window must congest, so the tail of the
/// latency distribution lives inside it.
fn tight_pools(seed: u64, admission: Option<AdmissionPolicy>) -> DesConfig {
    let lognormal = |median_us: f64| {
        Dist::LogNormal(LogNormal::from_median(median_us, 0.4).expect("valid law"))
    };
    let pool = |nf, service_us| NfConfig {
        nf,
        servers: 1,
        service: lognormal(service_us),
        autoscale: None,
    };
    DesConfig {
        seed,
        nfs: vec![
            pool(NetworkFunction::Mme, 20_000.0),
            pool(NetworkFunction::Hss, 25_000.0),
            pool(NetworkFunction::Pcrf, 22_000.0),
            pool(NetworkFunction::Sgw, 15_000.0),
            pool(NetworkFunction::Pgw, 15_000.0),
        ],
        matrix: TransactionMatrix::default_epc(),
        admission,
    }
}

fn run(des_seed: u64, trace: &Trace, admission: Option<AdmissionPolicy>) -> DesReport {
    let mut sim = DesSim::new(tight_pools(des_seed, admission)).expect("valid config");
    for rec in trace.iter() {
        sim.offer(rec).expect("sorted trace");
    }
    sim.finish()
}

/// The storm_overload.rs bucket, tight enough to saturate in-window.
fn policy() -> AdmissionPolicy {
    AdmissionPolicy {
        rate_per_sec: 0.5,
        burst: 20.0,
        high_reserve: 0.3,
        critical_reserve: 0.1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Along the intensity sweep, p99/max latency (fixed pools, no
    /// admission) and shed count/rate (admission on) never fall.
    #[test]
    fn degradation_is_monotone_in_storm_intensity(
        scenario_seed in prop_oneof![Just(0x5701u64), Just(0xBEEF), Just(0x17)],
        des_seed in prop_oneof![Just(1u64), Just(0xDE5)],
    ) {
        let mut last_p99 = 0.0f64;
        let mut last_max = 0.0f64;
        let mut last_shed = 0u64;
        let mut last_shed_rate = 0.0f64;
        for bursts in [1u32, 3, 6, 10] {
            let trace = storm_trace(scenario_seed, bursts);

            let open = run(des_seed, &trace, None);
            prop_assert_eq!(open.completed, trace.len() as u64);
            prop_assert!(
                open.p99_latency_ms >= last_p99,
                "bursts={}: p99 fell from {} to {}",
                bursts, last_p99, open.p99_latency_ms
            );
            prop_assert!(
                open.max_latency_ms >= last_max,
                "bursts={}: max fell from {} to {}",
                bursts, last_max, open.max_latency_ms
            );
            last_p99 = open.p99_latency_ms;
            last_max = open.max_latency_ms;

            let guarded = run(des_seed, &trace, Some(policy()));
            prop_assert!(
                guarded.total_shed() >= last_shed,
                "bursts={}: shed fell from {} to {}",
                bursts, last_shed, guarded.total_shed()
            );
            prop_assert!(
                guarded.shed_rate >= last_shed_rate - 1e-12,
                "bursts={}: shed rate fell from {} to {}",
                bursts, last_shed_rate, guarded.shed_rate
            );
            last_shed = guarded.total_shed();
            last_shed_rate = guarded.shed_rate;
        }
        prop_assert!(last_p99 > 0.0);
        prop_assert!(last_shed > 0, "the heaviest storm must overload the bucket");
    }
}
