//! Overload control: priority shedding under signaling storms.
//!
//! Real MMEs shed load when the signaling queue saturates (3GPP TS 23.401
//! NAS-level congestion control): low-priority procedures are rejected so
//! attaches and service requests survive. This module implements a token-
//! bucket admission controller with per-event priorities and reports what
//! a given policy would shed under a trace — one of the design questions
//! a realistic control-plane generator exists to answer (§3.1).

use cn_obs::Registry;
use cn_trace::{EventType, Trace};
use serde::{Deserialize, Serialize};

/// Admission priority classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Never shed (registration integrity): `ATCH`, `DTCH`.
    Critical,
    /// Shed last (user-visible connectivity): `SRV_REQ`, `S1_CONN_REL`.
    High,
    /// Shed first (mobility housekeeping): `HO`, `TAU`.
    Low,
}

impl Priority {
    /// All three classes, highest first (the [`ShedReport`] array order).
    pub const ALL: [Priority; 3] = [Priority::Critical, Priority::High, Priority::Low];

    /// Lowercase label for metrics (`{priority="critical"}`).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::High => "high",
            Priority::Low => "low",
        }
    }
}

/// Default 3GPP-style priority assignment.
pub fn priority_of(event: EventType) -> Priority {
    match event {
        EventType::Attach | EventType::Detach => Priority::Critical,
        EventType::ServiceRequest | EventType::S1ConnRelease => Priority::High,
        EventType::Handover | EventType::Tau => Priority::Low,
    }
}

/// A token-bucket admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Sustained admission rate, events per second.
    pub rate_per_sec: f64,
    /// Burst capacity, events.
    pub burst: f64,
    /// Fraction of the bucket reserved for [`Priority::High`] and above
    /// (low-priority events are shed once the bucket falls below this).
    pub high_reserve: f64,
    /// Fraction reserved for [`Priority::Critical`] only.
    pub critical_reserve: f64,
}

impl AdmissionPolicy {
    /// A policy sized for an expected load: admit `expected_eps` with 2×
    /// headroom, reserving 30% of the bucket for high-priority and 10% for
    /// critical procedures.
    pub fn sized_for(expected_eps: f64) -> AdmissionPolicy {
        AdmissionPolicy {
            rate_per_sec: (expected_eps * 2.0).max(1.0),
            burst: (expected_eps * 4.0).max(8.0),
            high_reserve: 0.3,
            critical_reserve: 0.1,
        }
    }
}

/// What the controller did with a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedReport {
    /// Admitted events per priority class (Critical, High, Low).
    pub admitted: [u64; 3],
    /// Shed events per priority class.
    pub shed: [u64; 3],
}

impl ShedReport {
    /// Total admitted events.
    pub fn total_admitted(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total shed events.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Shed fraction of one priority class.
    pub fn shed_fraction(&self, p: Priority) -> f64 {
        let i = p as usize;
        let total = self.admitted[i] + self.shed[i];
        if total == 0 {
            0.0
        } else {
            self.shed[i] as f64 / total as f64
        }
    }
}

/// Run the admission controller over a trace; returns the report and the
/// admitted sub-trace.
pub fn apply(trace: &Trace, policy: &AdmissionPolicy) -> (ShedReport, Trace) {
    let mut report = ShedReport::default();
    let mut admitted = Vec::new();
    let mut tokens = policy.burst;
    let mut last_us: Option<u64> = None;

    for rec in trace.iter() {
        let now_us = rec.t.as_millis() * 1_000;
        if let Some(prev) = last_us {
            tokens = (tokens + (now_us.saturating_sub(prev)) as f64 / 1e6 * policy.rate_per_sec)
                .min(policy.burst);
        }
        last_us = Some(now_us);

        let priority = priority_of(rec.event);
        let floor = match priority {
            Priority::Critical => 0.0,
            Priority::High => policy.burst * policy.critical_reserve,
            Priority::Low => policy.burst * (policy.critical_reserve + policy.high_reserve),
        };
        let idx = priority as usize;
        if tokens >= floor + 1.0 {
            tokens -= 1.0;
            report.admitted[idx] += 1;
            admitted.push(*rec);
        } else {
            report.shed[idx] += 1;
        }
    }
    (report, Trace::from_records(admitted))
}

/// As [`apply`], folding the outcome into `registry`: counters
/// `cn_mcn_overload_admitted_total{priority=...}` and
/// `cn_mcn_overload_shed_total{priority=...}` accumulate across calls,
/// so a monitoring pipeline sees shed totals by class over a whole run
/// of storms, not just the last [`ShedReport`].
pub fn apply_observed(
    trace: &Trace,
    policy: &AdmissionPolicy,
    registry: &Registry,
) -> (ShedReport, Trace) {
    let (report, admitted) = apply(trace, policy);
    for p in Priority::ALL {
        let labels: &[(&str, &str)] = &[("priority", p.label())];
        registry
            .counter_with("cn_mcn_overload_admitted_total", labels)
            .add(report.admitted[p as usize]);
        registry
            .counter_with("cn_mcn_overload_shed_total", labels)
            .add(report.shed[p as usize]);
    }
    (report, admitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, Timestamp, TraceRecord, UeId};

    fn rec(t_ms: u64, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t_ms), UeId(0), DeviceType::Phone, e)
    }

    #[test]
    fn priorities_follow_3gpp_intent() {
        assert_eq!(priority_of(EventType::Attach), Priority::Critical);
        assert_eq!(priority_of(EventType::ServiceRequest), Priority::High);
        assert_eq!(priority_of(EventType::Tau), Priority::Low);
        assert!(Priority::Critical < Priority::Low);
    }

    #[test]
    fn unloaded_controller_admits_everything() {
        let trace = Trace::from_records(
            (0..50)
                .map(|i| rec(i * 1_000, EventType::ServiceRequest))
                .collect(),
        );
        let policy = AdmissionPolicy::sized_for(10.0);
        let (report, admitted) = apply(&trace, &policy);
        assert_eq!(report.total_shed(), 0);
        assert_eq!(admitted.len(), 50);
    }

    #[test]
    fn storm_sheds_low_priority_first() {
        // A burst of mixed traffic far above the admission rate.
        let mut records = Vec::new();
        for i in 0..300u64 {
            let e = match i % 3 {
                0 => EventType::Handover,
                1 => EventType::ServiceRequest,
                _ => EventType::Attach,
            };
            records.push(rec(i, e)); // 1 ms apart: a storm
        }
        let trace = Trace::from_records(records);
        let policy = AdmissionPolicy {
            rate_per_sec: 50.0,
            burst: 40.0,
            high_reserve: 0.3,
            critical_reserve: 0.1,
        };
        let (report, _) = apply(&trace, &policy);
        assert!(report.total_shed() > 0, "storm must overload the bucket");
        let low = report.shed_fraction(Priority::Low);
        let high = report.shed_fraction(Priority::High);
        let critical = report.shed_fraction(Priority::Critical);
        // The policy guarantees an *ordering*, not absolute survival: a
        // storm larger than bucket + replenishment must shed even some
        // critical traffic, but strictly less than the lower classes.
        assert!(low > high, "low {low} vs high {high}");
        assert!(high > critical, "high {high} vs critical {critical}");
        // Low-priority housekeeping is shed almost entirely.
        assert!(low > 0.9, "low shed {low}");
    }

    #[test]
    fn observed_apply_mirrors_the_report_by_priority() {
        use cn_obs::Registry;
        let mut records = Vec::new();
        for i in 0..300u64 {
            let e = match i % 3 {
                0 => EventType::Handover,
                1 => EventType::ServiceRequest,
                _ => EventType::Attach,
            };
            records.push(rec(i, e));
        }
        let trace = Trace::from_records(records);
        let policy = AdmissionPolicy {
            rate_per_sec: 50.0,
            burst: 40.0,
            high_reserve: 0.3,
            critical_reserve: 0.1,
        };
        let registry = Registry::new();
        let (report, admitted) = apply_observed(&trace, &policy, &registry);
        // Observation must not perturb the decision.
        assert_eq!(report, apply(&trace, &policy).0);
        let snap = registry.snapshot();
        for p in Priority::ALL {
            let labels: &[(&str, &str)] = &[("priority", p.label())];
            let counter = |name: &str| match snap.get(name, labels).map(|m| &m.value) {
                Some(cn_obs::MetricValue::Counter { value }) => *value,
                other => panic!("{name}{{{}}}: {other:?}", p.label()),
            };
            assert_eq!(
                counter("cn_mcn_overload_admitted_total"),
                report.admitted[p as usize]
            );
            assert_eq!(
                counter("cn_mcn_overload_shed_total"),
                report.shed[p as usize]
            );
        }
        assert_eq!(
            snap.counter_total("cn_mcn_overload_admitted_total"),
            Some(admitted.len() as u64)
        );
        assert_eq!(
            snap.counter_total("cn_mcn_overload_shed_total"),
            Some(report.total_shed())
        );
        // Counters accumulate across storms.
        apply_observed(&trace, &policy, &registry);
        assert_eq!(
            registry
                .snapshot()
                .counter_total("cn_mcn_overload_shed_total"),
            Some(2 * report.total_shed())
        );
    }

    #[test]
    fn tokens_replenish_between_bursts() {
        // Two bursts separated by a quiet second: the second burst admits
        // as well as the first.
        let mut records: Vec<TraceRecord> =
            (0..20).map(|i| rec(i, EventType::ServiceRequest)).collect();
        records.extend((0..20).map(|i| rec(2_000 + i, EventType::ServiceRequest)));
        let trace = Trace::from_records(records);
        let policy = AdmissionPolicy {
            rate_per_sec: 20.0,
            burst: 25.0,
            high_reserve: 0.0,
            critical_reserve: 0.0,
        };
        let (report, _) = apply(&trace, &policy);
        assert_eq!(report.total_shed(), 0, "{report:?}");
    }
}
