//! A multi-worker FIFO queueing model for control-plane processing.
//!
//! Events arrive at their trace timestamps and are served FIFO by `c`
//! identical workers with per-event-type deterministic service times (an
//! M(t)/D/c-style model where the arrival process is whatever the trace
//! says — that is the point of realistic trace generation). Reports
//! latency percentiles, worker utilization, and backlog.

use cn_obs::{Counter, Histogram, Registry};
use cn_stats::summary::percentile_sorted;
use cn_trace::{EventType, Trace};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A service profile carrying a hostile value.
///
/// Profiles arrive from configuration files ([`serde`]), and a NaN or
/// negative entry would otherwise be silently saturated to 0 µs by the
/// `as u64` rounding in the simulator — a zero-cost event class is a
/// quiet way to ruin a capacity study. Mirrors the typed-rejection
/// stance of `cn_scenario::SpecError`: validate up front, never clamp.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// An entry is NaN or infinite.
    NonFinite {
        /// Which profile table the entry lives in.
        table: &'static str,
        /// Index into the profile's `service_us` array.
        index: usize,
        /// The offending value, stringified (NaN/inf survive formatting).
        value: String,
    },
    /// An entry is negative.
    Negative {
        /// Which profile table the entry lives in.
        table: &'static str,
        /// Index into the profile's `service_us` array.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NonFinite {
                table,
                index,
                value,
            } => {
                write!(f, "{table}.service_us[{index}] is not finite: {value}")
            }
            ProfileError::Negative {
                table,
                index,
                value,
            } => {
                write!(f, "{table}.service_us[{index}] is negative: {value}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Shared validation for the fixed-size service tables.
fn validate_service_us(table: &'static str, service_us: &[f64]) -> Result<(), ProfileError> {
    for (index, &value) in service_us.iter().enumerate() {
        if !value.is_finite() {
            return Err(ProfileError::NonFinite {
                table,
                index,
                value: format!("{value}"),
            });
        }
        if value < 0.0 {
            return Err(ProfileError::Negative {
                table,
                index,
                value,
            });
        }
    }
    Ok(())
}

/// Per-event-type service times, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Service time per event type, µs, indexed by [`EventType::code`].
    pub service_us: [f64; 6],
}

impl ServiceProfile {
    /// A plausible default: attach/detach are heavyweight (HSS, session
    /// setup), service request / release moderate, HO/TAU lighter.
    pub fn default_mme() -> ServiceProfile {
        ServiceProfile {
            // ATCH, DTCH, SRV_REQ, S1_CONN_REL, HO, TAU
            service_us: [2_000.0, 800.0, 400.0, 250.0, 300.0, 200.0],
        }
    }

    /// Uniform service time for all event types.
    pub fn uniform(us: f64) -> ServiceProfile {
        ServiceProfile {
            service_us: [us; 6],
        }
    }

    /// Service time of one event, µs.
    pub fn of(&self, event: EventType) -> f64 {
        self.service_us[event.code() as usize]
    }

    /// Reject NaN, infinite, or negative service times with a typed
    /// error. Call this on any profile that crossed a serialization
    /// boundary before handing it to a simulator.
    pub fn validate(&self) -> Result<(), ProfileError> {
        validate_service_us("ServiceProfile", &self.service_us)
    }
}

/// Queueing simulation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueReport {
    /// Events served.
    pub served: u64,
    /// Mean sojourn (wait + service) per event, ms.
    pub mean_latency_ms: f64,
    /// Median sojourn, ms.
    pub p50_latency_ms: f64,
    /// 99th-percentile sojourn, ms.
    pub p99_latency_ms: f64,
    /// Maximum sojourn, ms.
    pub max_latency_ms: f64,
    /// Fraction of total worker time spent busy.
    pub utilization: f64,
    /// Largest queue length observed at an arrival instant.
    pub peak_backlog: usize,
}

/// Live telemetry of a queueing run (no-op handles unless
/// [`QueueSim::observed`] wired a registry in). The [`QueueReport`]
/// already carries exact percentiles of one run; these histograms are
/// the *cross-run accumulating* view a monitoring pipeline reads.
#[derive(Debug, Clone, Default)]
struct QueueObs {
    /// `cn_mcn_queue_latency_us` — per-event sojourn (wait + service).
    latency_us: Histogram,
    /// `cn_mcn_queue_depth` — backlog observed at each arrival instant.
    depth: Histogram,
    /// `cn_mcn_queue_served_total`.
    served: Counter,
    /// `cn_mcn_queue_msg_latency_us` — message-level twin.
    msg_latency_us: Histogram,
    /// `cn_mcn_queue_msg_depth`.
    msg_depth: Histogram,
    /// `cn_mcn_queue_msg_served_total`.
    msg_served: Counter,
}

impl QueueObs {
    fn register(registry: &Registry) -> QueueObs {
        QueueObs {
            latency_us: registry.histogram("cn_mcn_queue_latency_us"),
            depth: registry.histogram("cn_mcn_queue_depth"),
            served: registry.counter("cn_mcn_queue_served_total"),
            msg_latency_us: registry.histogram("cn_mcn_queue_msg_latency_us"),
            msg_depth: registry.histogram("cn_mcn_queue_msg_depth"),
            msg_served: registry.counter("cn_mcn_queue_msg_served_total"),
        }
    }
}

/// The queueing simulator.
#[derive(Debug, Clone)]
pub struct QueueSim {
    profile: ServiceProfile,
    workers: usize,
    obs: QueueObs,
}

impl QueueSim {
    /// Create with a service profile and `workers ≥ 1` parallel servers.
    pub fn new(profile: ServiceProfile, workers: usize) -> QueueSim {
        QueueSim {
            profile,
            workers: workers.max(1),
            obs: QueueObs::default(),
        }
    }

    /// Record depth/latency telemetry into `registry` on every
    /// subsequent [`QueueSim::run`] / [`QueueSim::run_messages`]:
    /// histograms `cn_mcn_queue_latency_us` / `cn_mcn_queue_depth` (and
    /// their `_msg_` twins), counters `cn_mcn_queue_served_total` /
    /// `cn_mcn_queue_msg_served_total`.
    pub fn observed(mut self, registry: &Registry) -> QueueSim {
        self.obs = QueueObs::register(registry);
        self
    }

    /// Run the trace through the queue. Returns `None` for an empty trace.
    pub fn run(&self, trace: &Trace) -> Option<QueueReport> {
        if trace.is_empty() {
            return None;
        }
        // Cold: one span per simulated trace, not per event.
        let _run = cn_obs::trace::global_span("cn_mcn_queue_run");
        debug_assert!(self.profile.validate().is_ok(), "unvalidated profile");
        // Min-heap of worker-free times (µs).
        let mut free: BinaryHeap<Reverse<u64>> = (0..self.workers).map(|_| Reverse(0u64)).collect();
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(trace.len());
        // Accumulate the *rounded* service times the schedule actually
        // uses: accumulating the raw f64 while completions round would
        // let reported utilization disagree with the schedule and
        // exceed 1.0 under saturation.
        let mut busy_us: u64 = 0;
        let mut peak_backlog = 0usize;
        // Completion times of in-flight/queued events, to measure backlog.
        let mut completions: BinaryHeap<Reverse<u64>> = BinaryHeap::new();

        let t0_us = trace.start()?.as_millis() * 1_000;
        for rec in trace.iter() {
            let arrival_us = rec.t.as_millis() * 1_000;
            // Backlog = events not yet finished at this arrival.
            while completions
                .peek()
                .is_some_and(|Reverse(c)| *c <= arrival_us)
            {
                completions.pop();
            }
            peak_backlog = peak_backlog.max(completions.len());
            self.obs.depth.record(completions.len() as u64);

            let Reverse(worker_free) = free.pop().expect("workers > 0");
            let start_us = worker_free.max(arrival_us);
            let service_us = self.profile.of(rec.event).round() as u64;
            let done_us = start_us + service_us;
            free.push(Reverse(done_us));
            completions.push(Reverse(done_us));
            busy_us += service_us;
            self.obs.latency_us.record(done_us - arrival_us);
            latencies_ms.push((done_us - arrival_us) as f64 / 1_000.0);
        }
        self.obs.served.add(trace.len() as u64);

        let horizon_us = free
            .iter()
            .map(|Reverse(t)| *t)
            .max()
            .unwrap_or(t0_us)
            .saturating_sub(t0_us)
            .max(1);
        let mut sorted = latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Some(QueueReport {
            served: trace.len() as u64,
            mean_latency_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64,
            p50_latency_ms: percentile_sorted(&sorted, 0.50),
            p99_latency_ms: percentile_sorted(&sorted, 0.99),
            max_latency_ms: *sorted.last().expect("non-empty"),
            utilization: utilization(busy_us, horizon_us, self.workers),
            peak_backlog,
        })
    }
}

/// Busy fraction of `workers` servers over `horizon_us`, from the rounded
/// busy time the schedule actually used. The schedule packs each worker's
/// service into the horizon, so the ratio cannot exceed 1.0; assert that
/// invariant and clamp away float noise.
fn utilization(busy_us: u64, horizon_us: u64, workers: usize) -> f64 {
    let ratio = busy_us as f64 / (horizon_us as f64 * workers as f64);
    debug_assert!(
        ratio <= 1.0 + 1e-9,
        "utilization {ratio} > 1.0 (busy {busy_us} µs over {workers} × {horizon_us} µs)"
    );
    ratio.min(1.0)
}

/// Per-interface service times for message-level simulation, µs.
///
/// Diameter transactions (S6a/Gx) are typically slower than GTP-C and
/// S1AP processing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageServiceProfile {
    /// Service time per interface, µs, in [`crate::messages::Interface::ALL`]
    /// order (S1, S6a, S11, S5, Gx).
    pub service_us: [f64; 5],
}

impl MessageServiceProfile {
    /// A plausible default.
    pub fn default_epc() -> MessageServiceProfile {
        MessageServiceProfile {
            service_us: [80.0, 400.0, 120.0, 120.0, 350.0],
        }
    }

    /// Reject NaN, infinite, or negative service times with a typed
    /// error (see [`ServiceProfile::validate`]).
    pub fn validate(&self) -> Result<(), ProfileError> {
        validate_service_us("MessageServiceProfile", &self.service_us)
    }
}

impl QueueSim {
    /// Run a *message-level* queueing simulation: each 3GPP signaling
    /// message of the expanded trace is served individually with
    /// per-interface service times (compare with [`QueueSim::run`], which
    /// treats a whole procedure as one unit of work).
    ///
    /// The input is sort-merged by arrival time before simulation:
    /// [`crate::messages::expand`] serializes each procedure's flow
    /// sequentially, so the expansions of *overlapping* procedures
    /// interleave out of time order — a FIFO simulated in stream order
    /// would take `t0` from whatever message happened to come first and
    /// mis-measure backlog and waits. Messages at equal timestamps keep
    /// their stream order (stable sort).
    pub fn run_messages<I>(
        &self,
        messages: I,
        profile: &MessageServiceProfile,
    ) -> Option<QueueReport>
    where
        I: IntoIterator<Item = crate::messages::MessageRecord>,
    {
        // Cold: one span per simulated message stream.
        let _run = cn_obs::trace::global_span("cn_mcn_queue_run_messages");
        debug_assert!(profile.validate().is_ok(), "unvalidated profile");
        let mut arrivals: Vec<crate::messages::MessageRecord> = messages.into_iter().collect();
        // Canonical total order: ties at the same microsecond are served
        // in (ue, interface, name) order, so the report is a function of
        // the message *multiset*, not of producer interleaving.
        arrivals.sort_by_key(|rec| {
            let iface = crate::messages::Interface::ALL
                .iter()
                .position(|&i| i == rec.message.interface)
                .expect("known interface");
            (rec.t, rec.ue, iface, rec.message.name)
        });
        let mut free: BinaryHeap<Reverse<u64>> = (0..self.workers).map(|_| Reverse(0u64)).collect();
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut busy_us: u64 = 0;
        let mut peak_backlog = 0usize;
        let mut completions: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut t0_us: Option<u64> = None;

        for rec in arrivals {
            let arrival_us = rec.t.as_millis() * 1_000;
            t0_us.get_or_insert(arrival_us);
            while completions
                .peek()
                .is_some_and(|Reverse(c)| *c <= arrival_us)
            {
                completions.pop();
            }
            peak_backlog = peak_backlog.max(completions.len());
            self.obs.msg_depth.record(completions.len() as u64);

            let Reverse(worker_free) = free.pop().expect("workers > 0");
            let start_us = worker_free.max(arrival_us);
            let iface_idx = crate::messages::Interface::ALL
                .iter()
                .position(|&i| i == rec.message.interface)
                .expect("known interface");
            let service_us = profile.service_us[iface_idx].round() as u64;
            let done_us = start_us + service_us;
            free.push(Reverse(done_us));
            completions.push(Reverse(done_us));
            busy_us += service_us;
            self.obs.msg_latency_us.record(done_us - arrival_us);
            self.obs.msg_served.inc();
            latencies_ms.push((done_us - arrival_us) as f64 / 1_000.0);
        }
        if latencies_ms.is_empty() {
            return None;
        }
        let t0_us = t0_us.expect("non-empty");
        let horizon_us = free
            .iter()
            .map(|Reverse(t)| *t)
            .max()
            .unwrap_or(t0_us)
            .saturating_sub(t0_us)
            .max(1);
        let mut sorted = latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Some(QueueReport {
            served: latencies_ms.len() as u64,
            mean_latency_ms: latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64,
            p50_latency_ms: percentile_sorted(&sorted, 0.50),
            p99_latency_ms: percentile_sorted(&sorted, 0.99),
            max_latency_ms: *sorted.last().expect("non-empty"),
            utilization: utilization(busy_us, horizon_us, self.workers),
            peak_backlog,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, Timestamp, TraceRecord, UeId};

    fn rec(t_ms: u64, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t_ms), UeId(0), DeviceType::Phone, e)
    }

    #[test]
    fn empty_trace_is_none() {
        let sim = QueueSim::new(ServiceProfile::uniform(100.0), 1);
        assert!(sim.run(&Trace::new()).is_none());
    }

    #[test]
    fn unloaded_queue_has_pure_service_latency() {
        // Events 1 s apart, 1 ms service: no queueing at all.
        let trace = Trace::from_records((0..10).map(|i| rec(i * 1_000, EventType::Tau)).collect());
        let report = QueueSim::new(ServiceProfile::uniform(1_000.0), 1)
            .run(&trace)
            .unwrap();
        assert_eq!(report.served, 10);
        assert!(
            (report.mean_latency_ms - 1.0).abs() < 1e-9,
            "{}",
            report.mean_latency_ms
        );
        assert_eq!(report.peak_backlog, 0);
        assert!(report.utilization < 0.01);
    }

    #[test]
    fn overloaded_queue_builds_latency() {
        // 100 simultaneous events, 10 ms service each, 1 worker: the last
        // one waits ~990 ms.
        let trace = Trace::from_records((0..100).map(|_| rec(0, EventType::Tau)).collect());
        let report = QueueSim::new(ServiceProfile::uniform(10_000.0), 1)
            .run(&trace)
            .unwrap();
        assert!(
            (report.max_latency_ms - 1_000.0).abs() < 1.0,
            "{}",
            report.max_latency_ms
        );
        assert!(report.peak_backlog > 50);
        assert!(report.utilization > 0.99);
    }

    #[test]
    fn more_workers_cut_latency() {
        let trace = Trace::from_records((0..100).map(|_| rec(0, EventType::Tau)).collect());
        let one = QueueSim::new(ServiceProfile::uniform(10_000.0), 1)
            .run(&trace)
            .unwrap();
        let four = QueueSim::new(ServiceProfile::uniform(10_000.0), 4)
            .run(&trace)
            .unwrap();
        assert!(four.max_latency_ms < one.max_latency_ms / 3.0);
    }

    #[test]
    fn message_level_simulation_counts_every_message() {
        use crate::messages;
        let trace = Trace::from_records(vec![
            rec(0, EventType::Attach),
            rec(60_000, EventType::ServiceRequest),
        ]);
        let sim = QueueSim::new(ServiceProfile::default_mme(), 2);
        let report = sim
            .run_messages(
                messages::expand(&trace),
                &MessageServiceProfile::default_epc(),
            )
            .unwrap();
        assert_eq!(report.served, 19 + 5);
        assert!(report.mean_latency_ms > 0.0);
        // Empty stream → None.
        assert!(sim
            .run_messages(std::iter::empty(), &MessageServiceProfile::default_epc())
            .is_none());
    }

    #[test]
    fn observed_run_fills_the_registry() {
        use cn_obs::Registry;
        let registry = Registry::new();
        let trace = Trace::from_records((0..50).map(|_| rec(0, EventType::Tau)).collect());
        let sim = QueueSim::new(ServiceProfile::uniform(10_000.0), 1).observed(&registry);
        let report = sim.run(&trace).unwrap();
        let snap = registry.snapshot();
        // Counter matches the report; histogram saw every sojourn.
        assert_eq!(
            snap.counter("cn_mcn_queue_served_total"),
            Some(report.served)
        );
        let latency = snap.histogram("cn_mcn_queue_latency_us").unwrap();
        assert_eq!(latency.count, report.served);
        // The log2 bound brackets the exact max from the report, and the
        // interpolated estimate is at least bucket-accurate against the
        // report's exact p99 (within one power-of-two bucket either way).
        let bound_us = latency.quantile_upper_bound(1.0).unwrap();
        assert!(bound_us as f64 / 1_000.0 >= report.max_latency_ms);
        let p99_est_ms = latency.quantile_est(0.99).unwrap() / 1_000.0;
        assert!(
            p99_est_ms >= report.p99_latency_ms / 2.0 && p99_est_ms <= report.p99_latency_ms * 2.0,
            "estimated p99 {p99_est_ms} ms vs exact {} ms",
            report.p99_latency_ms
        );
        // Depth histogram observed the same arrivals, peaking at the
        // report's backlog.
        let depth = snap.histogram("cn_mcn_queue_depth").unwrap();
        assert_eq!(depth.count, report.served);
        assert!(depth.quantile_upper_bound(1.0).unwrap() >= report.peak_backlog as u64);
        // A second run accumulates instead of resetting.
        sim.run(&trace).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("cn_mcn_queue_served_total"),
            Some(2 * report.served)
        );
        // Message-level metrics stay empty until run_messages is used.
        assert_eq!(snap.counter("cn_mcn_queue_msg_served_total"), Some(0));
    }

    #[test]
    fn observed_message_run_uses_the_msg_series() {
        use crate::messages;
        use cn_obs::Registry;
        let registry = Registry::new();
        let trace = Trace::from_records(vec![rec(0, EventType::Attach)]);
        let sim = QueueSim::new(ServiceProfile::default_mme(), 2).observed(&registry);
        let report = sim
            .run_messages(
                messages::expand(&trace),
                &MessageServiceProfile::default_epc(),
            )
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("cn_mcn_queue_msg_served_total"),
            Some(report.served)
        );
        assert_eq!(
            snap.histogram("cn_mcn_queue_msg_latency_us").unwrap().count,
            report.served
        );
        assert_eq!(snap.counter("cn_mcn_queue_served_total"), Some(0));
    }

    #[test]
    fn heavier_events_cost_more() {
        let profile = ServiceProfile::default_mme();
        assert!(profile.of(EventType::Attach) > profile.of(EventType::Tau));
    }

    /// Regression (busy-time accounting): with a fractional service time
    /// the old code accumulated the unrounded f64 while the schedule used
    /// `service.round()`, reporting utilization 1.04 here. The saturated
    /// single-worker schedule has zero idle time, so utilization must be
    /// exactly 1.0 — and never above it.
    #[test]
    fn saturated_utilization_is_exactly_one() {
        let trace = Trace::from_records((0..100).map(|_| rec(0, EventType::Tau)).collect());
        let report = QueueSim::new(ServiceProfile::uniform(10.4), 1)
            .run(&trace)
            .unwrap();
        assert!(
            report.utilization <= 1.0,
            "utilization {} exceeds 1.0",
            report.utilization
        );
        assert!(
            (report.utilization - 1.0).abs() < 1e-12,
            "zero-idle schedule must report full utilization, got {}",
            report.utilization
        );
    }

    /// Regression (profile validation): NaN / infinite / negative entries
    /// must be rejected with a typed error instead of silently becoming
    /// 0 µs through `as u64` saturation.
    #[test]
    fn hostile_profiles_are_rejected_with_typed_errors() {
        let mut p = ServiceProfile::default_mme();
        assert!(p.validate().is_ok());
        p.service_us[2] = f64::NAN;
        assert!(matches!(
            p.validate(),
            Err(ProfileError::NonFinite { index: 2, .. })
        ));
        p.service_us[2] = f64::INFINITY;
        assert!(matches!(
            p.validate(),
            Err(ProfileError::NonFinite { index: 2, .. })
        ));
        p.service_us[2] = -250.0;
        assert!(matches!(
            p.validate(),
            Err(ProfileError::Negative { index: 2, .. })
        ));

        let mut m = MessageServiceProfile::default_epc();
        assert!(m.validate().is_ok());
        m.service_us[4] = -1.0;
        let err = m.validate().unwrap_err();
        assert!(matches!(err, ProfileError::Negative { index: 4, .. }));
        assert!(err.to_string().contains("MessageServiceProfile"));

        // The hostile values arrive through deserialization in practice.
        let json = r#"{"service_us":[80.0,-400.0,120.0,120.0,350.0]}"#;
        let parsed: MessageServiceProfile = serde_json::from_str(json).unwrap();
        assert!(matches!(
            parsed.validate(),
            Err(ProfileError::Negative { index: 1, .. })
        ));
    }

    /// Regression (sorted-arrival assumption): the old code took `t0`
    /// from the *first* message of the stream and simulated in stream
    /// order, so an out-of-order stream (here: the later message first)
    /// reported a wrong origin, phantom waits, and utilization 1.0. The
    /// sort-merge fix makes the report a function of the message multiset.
    #[test]
    fn out_of_order_messages_are_sort_merged() {
        use crate::messages::{Interface, Message, MessageRecord};
        use cn_trace::{Timestamp, UeId};
        let msg = |t_ms: u64| MessageRecord {
            t: Timestamp::from_millis(t_ms),
            ue: UeId(0),
            message: Message {
                name: "Service Request",
                interface: Interface::S1,
            },
        };
        let sim = QueueSim::new(ServiceProfile::default_mme(), 1);
        let profile = MessageServiceProfile {
            service_us: [1_000.0; 5],
        };
        // Later message first: 5 ms, then 0 ms. Both are unloaded (1 ms
        // service, 5 ms apart), so every latency is pure service time.
        let report = sim.run_messages([msg(5), msg(0)], &profile).unwrap();
        assert_eq!(report.served, 2);
        assert!(
            (report.mean_latency_ms - 1.0).abs() < 1e-9,
            "out-of-order stream produced phantom waits: mean {} ms",
            report.mean_latency_ms
        );
        // Horizon runs from the true t0=0 to the last completion at 6 ms:
        // 2 ms busy over 6 ms.
        assert!(
            (report.utilization - 2.0 / 6.0).abs() < 1e-9,
            "wrong t0 skewed utilization: {}",
            report.utilization
        );
        assert_eq!(report.peak_backlog, 0);
        // Same multiset, sorted: identical report.
        let sorted = sim.run_messages([msg(0), msg(5)], &profile).unwrap();
        assert_eq!(report, sorted);
    }

    /// Interleaved expansions of overlapping procedures (the shape
    /// `messages::expand` actually emits for a dense trace) must produce
    /// the same report as any other ordering of the same messages.
    #[test]
    fn overlapping_expansions_match_presorted_input() {
        use crate::messages;
        let trace = Trace::from_records(vec![
            rec(0, EventType::Attach),
            rec(1, EventType::Attach),
            rec(2, EventType::ServiceRequest),
        ]);
        let sim = QueueSim::new(ServiceProfile::default_mme(), 2);
        let profile = MessageServiceProfile::default_epc();
        let stream: Vec<messages::MessageRecord> = messages::expand(&trace).collect();
        let mut presorted = stream.clone();
        presorted.sort_by_key(|r| r.t);
        let a = sim.run_messages(stream, &profile).unwrap();
        let b = sim.run_messages(presorted, &profile).unwrap();
        assert_eq!(a, b);
        assert!(a.utilization <= 1.0);
    }
}
