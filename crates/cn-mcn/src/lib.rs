//! A miniature mobile-core control plane (MME-style event processor).
//!
//! The paper's stated purpose for the traffic generator is to *drive* a
//! mobile core network under realistic control-plane load (§3.1): evaluate
//! MCN designs, size deployments, and tune monitoring. This crate provides
//! that downstream consumer:
//!
//! * [`mme::Mme`] keeps a per-UE EMM/ECM state table and processes a
//!   labeled event stream exactly the way a signaling function would —
//!   which is why event-owner labeling (design goal 2) matters: an
//!   unlabeled aggregate stream could not drive per-UE state;
//! * [`queueing::QueueSim`] layers a multi-worker FIFO queueing model with
//!   per-event-type service times on top, reporting latency percentiles,
//!   utilization, and peak backlog under a given trace;
//! * [`nf`] fans each event out into per-network-function transactions
//!   (MME/HSS/PCRF/SGW/PGW) following the 3GPP procedure flows, in the
//!   spirit of the Dababneh et al. capacity model the paper cites;
//! * [`messages`] expands each event into its full TS 23.401 signaling
//!   message flow (NAS/S1AP/S6a/S11/S5/Gx) — an attach is 19 messages —
//!   for message-granularity MCN simulation;
//! * [`overload`] implements NAS-style congestion control (token-bucket
//!   admission with per-procedure priorities) so shedding policies can be
//!   evaluated against realistic signaling storms;
//! * [`des`] ties all of the above together into a multi-NF discrete-event
//!   simulator: per-NF server pools with service-time *distributions* from
//!   the `cn-stats` zoo, dependency-ordered transaction chains derived from
//!   the [`nf::TransactionMatrix`], queue-depth-driven autoscaling, and the
//!   admission controller running inside the event loop — the closed-loop
//!   capacity model `mcn_check` pins in `BENCH_mcn.json`.
//!
//! The simulators expose live telemetry through `cn-obs`:
//! [`QueueSim::observed`] records depth/latency histograms,
//! [`overload::apply_observed`] accumulates shed counts by priority, and
//! [`nf::nf_load_observed`] keeps per-NF transaction counters — all under
//! the `cn_mcn_*` metric namespace (DESIGN.md §7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod des;
pub mod messages;
pub mod mme;
pub mod nf;
pub mod overload;
pub mod queueing;

pub use des::{
    dependency_chain, deterministic_service, AutoscalePolicy, DesConfig, DesError, DesReport,
    DesSim, NfConfig, NfDesReport,
};
pub use messages::{expand, interface_load, procedure, Interface, Message, MessageRecord};
pub use mme::{Mme, MmeReport};
pub use nf::{nf_load, nf_load_observed, NetworkFunction, NfLoad, TransactionMatrix};
pub use overload::{apply_observed, AdmissionPolicy, Priority, ShedReport};
pub use queueing::{MessageServiceProfile, ProfileError, QueueReport, QueueSim, ServiceProfile};
