//! Per-UE state tracking, as a signaling function would perform it.

use cn_statemachine::TlState;
use cn_trace::{EventType, Trace, TraceRecord, UeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters produced by processing a trace through the MME.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmeReport {
    /// Events processed in total.
    pub processed: u64,
    /// Events per type, indexed by [`EventType::code`].
    pub by_type: [u64; 6],
    /// Distinct UEs seen.
    pub ues: u64,
    /// Events that were illegal for the UE's tracked state (the MME
    /// recovers by resynchronizing the state, mirroring real NAS recovery).
    pub protocol_errors: u64,
    /// UEs currently in ECM-CONNECTED at end of trace.
    pub connected_at_end: u64,
    /// Peak number of simultaneously ECM-CONNECTED UEs.
    pub peak_connected: u64,
}

/// An MME-style control-plane processor with a per-UE state table.
///
/// ```
/// use cn_mcn::Mme;
/// use cn_trace::{DeviceType, EventType, Timestamp, Trace, TraceRecord, UeId};
/// let rec = |t, e| TraceRecord::new(Timestamp::from_secs(t), UeId(0), DeviceType::Phone, e);
/// let trace = Trace::from_records(vec![
///     rec(0, EventType::Attach),
///     rec(10, EventType::S1ConnRelease),
/// ]);
/// let report = Mme::new().run(&trace);
/// assert_eq!(report.protocol_errors, 0);
/// assert_eq!(report.peak_connected, 1);
/// assert_eq!(report.connected_at_end, 0);
/// ```
#[derive(Debug, Default)]
pub struct Mme {
    table: HashMap<UeId, TlState>,
    connected: u64,
    report: MmeReport,
}

impl Mme {
    /// A fresh MME with an empty state table.
    pub fn new() -> Mme {
        Mme::default()
    }

    /// Number of UEs currently tracked.
    pub fn tracked_ues(&self) -> usize {
        self.table.len()
    }

    /// Process one labeled event.
    pub fn process(&mut self, rec: &TraceRecord) {
        self.report.processed += 1;
        self.report.by_type[rec.event.code() as usize] += 1;

        let mut newly_seen = false;
        let state = self.table.entry(rec.ue).or_insert_with(|| {
            newly_seen = true;
            initial_guess(rec.event)
        });
        if newly_seen {
            self.report.ues += 1;
            // A UE first seen mid-connection joins the connected census —
            // otherwise its release would underflow the counter.
            if matches!(state, TlState::Connected(_)) {
                self.connected += 1;
                self.report.peak_connected = self.report.peak_connected.max(self.connected);
            }
        }
        let was_connected = matches!(state, TlState::Connected(_));
        let next = match state.apply(rec.event) {
            Some(next) => next,
            None => {
                self.report.protocol_errors += 1;
                // NAS-style recovery: resynchronize to the state implied by
                // the event itself.
                TlState::after_event(rec.event, !was_connected)
            }
        };
        let is_connected = matches!(next, TlState::Connected(_));
        match (was_connected, is_connected) {
            (false, true) => {
                self.connected += 1;
                self.report.peak_connected = self.report.peak_connected.max(self.connected);
            }
            (true, false) => self.connected -= 1,
            _ => {}
        }
        *state = next;
    }

    /// Process a whole trace and return the final report.
    pub fn run(mut self, trace: &Trace) -> MmeReport {
        for rec in trace.iter() {
            self.process(rec);
        }
        self.report.connected_at_end = self.connected;
        self.report
    }
}

/// State to assume for a UE first seen with event `e` (pre-event state).
fn initial_guess(e: EventType) -> TlState {
    use cn_statemachine::two_level::{ConnSub, IdleSub};
    match e {
        EventType::Attach => TlState::Deregistered,
        EventType::S1ConnRelease | EventType::Handover => TlState::Connected(ConnSub::SrvReqS),
        _ => TlState::Idle(IdleSub::S1RelS1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, Timestamp};

    fn rec(t: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(ue), DeviceType::Phone, e)
    }

    #[test]
    fn tracks_connected_population() {
        use EventType::*;
        let trace = Trace::from_records(vec![
            rec(0, 0, Attach),
            rec(10, 1, Attach),
            rec(20, 0, S1ConnRelease),
            rec(30, 2, ServiceRequest),
            rec(40, 1, S1ConnRelease),
            rec(50, 2, S1ConnRelease),
        ]);
        let report = Mme::new().run(&trace);
        assert_eq!(report.processed, 6);
        assert_eq!(report.ues, 3);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.peak_connected, 2);
        assert_eq!(report.connected_at_end, 0);
    }

    #[test]
    fn recovers_from_protocol_errors() {
        use EventType::*;
        // HO for a UE the MME believes is idle.
        let trace = Trace::from_records(vec![
            rec(0, 0, ServiceRequest),
            rec(10, 0, S1ConnRelease),
            rec(20, 0, Handover), // illegal in IDLE
            rec(30, 0, S1ConnRelease),
        ]);
        let report = Mme::new().run(&trace);
        assert_eq!(report.protocol_errors, 1);
        assert_eq!(report.processed, 4);
    }

    #[test]
    fn mid_connection_first_sight_does_not_underflow() {
        use EventType::*;
        // A UE first seen with a release (mid-connection): the census must
        // count it as connected on entry, or the release underflows.
        let trace = Trace::from_records(vec![
            rec(0, 0, S1ConnRelease),
            rec(10, 0, ServiceRequest),
            rec(20, 0, S1ConnRelease),
        ]);
        let report = Mme::new().run(&trace);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.peak_connected, 1);
        assert_eq!(report.connected_at_end, 0);
    }

    #[test]
    fn by_type_counts() {
        use EventType::*;
        let trace = Trace::from_records(vec![
            rec(0, 0, ServiceRequest),
            rec(10, 0, Tau),
            rec(20, 0, Tau),
        ]);
        let report = Mme::new().run(&trace);
        assert_eq!(report.by_type[EventType::Tau.code() as usize], 2);
        assert_eq!(report.by_type[EventType::ServiceRequest.code() as usize], 1);
    }
}
