//! Per-network-function transaction fan-out.
//!
//! A control-plane event does not touch only the MME: an attach involves
//! the HSS (authentication, subscription), the SGW/PGW (session setup) and
//! the PCRF (policy); a handover touches the SGW (path switch); and so on.
//! Modeling the per-NF transaction load this way follows Dababneh et al.
//! (the paper's reference \[24\]), which models total control-plane volume per LTE NF
//! from per-subscriber transaction counts — the paper's generator is the
//! realistic *arrival process* such capacity models lacked.

use cn_obs::Registry;
use cn_trace::{EventType, Trace};
use serde::{Deserialize, Serialize};

/// The five EPC network functions of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetworkFunction {
    /// Mobility Management Entity — the signaling anchor.
    Mme,
    /// Home Subscriber Server — authentication and subscription data.
    Hss,
    /// Policy and Charging Rules Function.
    Pcrf,
    /// Serving Gateway (control interface).
    Sgw,
    /// PDN Gateway (control interface).
    Pgw,
}

impl NetworkFunction {
    /// All five NFs.
    pub const ALL: [NetworkFunction; 5] = [
        NetworkFunction::Mme,
        NetworkFunction::Hss,
        NetworkFunction::Pcrf,
        NetworkFunction::Sgw,
        NetworkFunction::Pgw,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkFunction::Mme => "MME",
            NetworkFunction::Hss => "HSS",
            NetworkFunction::Pcrf => "PCRF",
            NetworkFunction::Sgw => "SGW",
            NetworkFunction::Pgw => "PGW",
        }
    }
}

impl std::fmt::Display for NetworkFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Transactions each control-plane event causes at each NF.
///
/// Rows follow the 3GPP procedure flows at message-pair granularity: e.g.
/// an attach is MME-heavy (NAS + S1AP), authenticates at the HSS, creates a
/// session at SGW→PGW, and pulls policy from the PCRF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionMatrix {
    /// `transactions[event][nf]`, indexed by [`EventType::code`] and the
    /// position in [`NetworkFunction::ALL`].
    pub transactions: [[u32; 5]; 6],
}

impl TransactionMatrix {
    /// A default matrix following the standard LTE procedure flows.
    pub fn default_epc() -> TransactionMatrix {
        // Columns: MME, HSS, PCRF, SGW, PGW
        TransactionMatrix {
            transactions: [
                [6, 2, 1, 2, 2], // ATCH: auth + update-location + create-session + policy
                [3, 1, 1, 1, 1], // DTCH: detach + purge + delete-session
                [3, 0, 0, 1, 0], // SRV_REQ: NAS service request + modify-bearer at SGW
                [2, 0, 0, 1, 0], // S1_CONN_REL: UE-context release + release-access-bearer
                [2, 0, 0, 1, 0], // HO: path-switch at MME and SGW
                [2, 0, 0, 0, 0], // TAU: tracking-area update accept/complete
            ],
        }
    }

    /// Transactions at `nf` caused by one `event`.
    pub fn of(&self, event: EventType, nf: NetworkFunction) -> u32 {
        let nf_idx = NetworkFunction::ALL
            .iter()
            .position(|&n| n == nf)
            .expect("known NF");
        self.transactions[event.code() as usize][nf_idx]
    }
}

/// Per-NF transaction load of a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NfLoad {
    /// Total transactions per NF, in [`NetworkFunction::ALL`] order.
    pub totals: [u64; 5],
    /// Trace span in seconds (0 for an empty trace).
    pub span_secs: f64,
}

impl NfLoad {
    /// Total transactions at one NF.
    pub fn total(&self, nf: NetworkFunction) -> u64 {
        let idx = NetworkFunction::ALL
            .iter()
            .position(|&n| n == nf)
            .expect("known NF");
        self.totals[idx]
    }

    /// Mean transactions/second at one NF.
    pub fn rate(&self, nf: NetworkFunction) -> f64 {
        if self.span_secs <= 0.0 {
            0.0
        } else {
            self.total(nf) as f64 / self.span_secs
        }
    }
}

/// Compute the per-NF transaction load a trace imposes.
pub fn nf_load(trace: &Trace, matrix: &TransactionMatrix) -> NfLoad {
    let mut totals = [0u64; 5];
    for r in trace.iter() {
        let row = &matrix.transactions[r.event.code() as usize];
        for (total, &tx) in totals.iter_mut().zip(row) {
            *total += u64::from(tx);
        }
    }
    let span_secs = match (trace.start(), trace.end()) {
        (Some(s), Some(e)) => e.since(s) as f64 / 1_000.0,
        _ => 0.0,
    };
    NfLoad { totals, span_secs }
}

/// As [`nf_load`], accumulating each NF's transaction total into the
/// counter `cn_mcn_nf_transactions_total{nf=...}` — the Dababneh-style
/// per-NF load series a capacity dashboard tracks across traces.
pub fn nf_load_observed(trace: &Trace, matrix: &TransactionMatrix, registry: &Registry) -> NfLoad {
    let load = nf_load(trace, matrix);
    for (nf, &total) in NetworkFunction::ALL.iter().zip(&load.totals) {
        registry
            .counter_with("cn_mcn_nf_transactions_total", &[("nf", nf.name())])
            .add(total);
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, Timestamp, TraceRecord, UeId};

    fn rec(t: u64, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t), UeId(0), DeviceType::Phone, e)
    }

    #[test]
    fn attach_is_the_heaviest_procedure() {
        let m = TransactionMatrix::default_epc();
        let total =
            |e: EventType| -> u32 { NetworkFunction::ALL.iter().map(|&nf| m.of(e, nf)).sum() };
        for e in EventType::ALL {
            assert!(total(EventType::Attach) >= total(e), "{e}");
        }
        // MME participates in everything.
        for e in EventType::ALL {
            assert!(m.of(e, NetworkFunction::Mme) > 0, "{e} skips the MME");
        }
        // HO never touches the HSS.
        assert_eq!(m.of(EventType::Handover, NetworkFunction::Hss), 0);
    }

    #[test]
    fn load_accumulates_and_rates() {
        let trace = Trace::from_records(vec![
            rec(0, EventType::Attach),
            rec(5_000, EventType::ServiceRequest),
            rec(10_000, EventType::S1ConnRelease),
        ]);
        let load = nf_load(&trace, &TransactionMatrix::default_epc());
        assert_eq!(load.total(NetworkFunction::Mme), 6 + 3 + 2);
        assert_eq!(load.total(NetworkFunction::Hss), 2);
        assert_eq!(load.total(NetworkFunction::Sgw), 2 + 1 + 1);
        assert!((load.span_secs - 10.0).abs() < 1e-9);
        assert!((load.rate(NetworkFunction::Mme) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn observed_load_counts_per_nf() {
        use cn_obs::Registry;
        let registry = Registry::new();
        let trace = Trace::from_records(vec![
            rec(0, EventType::Attach),
            rec(5_000, EventType::ServiceRequest),
        ]);
        let load = nf_load_observed(&trace, &TransactionMatrix::default_epc(), &registry);
        let snap = registry.snapshot();
        for nf in NetworkFunction::ALL {
            let got = match snap
                .get("cn_mcn_nf_transactions_total", &[("nf", nf.name())])
                .map(|m| &m.value)
            {
                Some(cn_obs::MetricValue::Counter { value }) => *value,
                other => panic!("{nf}: {other:?}"),
            };
            assert_eq!(got, load.total(nf), "{nf}");
        }
        assert_eq!(
            snap.counter_total("cn_mcn_nf_transactions_total"),
            Some(load.totals.iter().sum())
        );
    }

    #[test]
    fn empty_trace_has_zero_load() {
        let load = nf_load(&Trace::new(), &TransactionMatrix::default_epc());
        assert_eq!(load.totals, [0; 5]);
        assert_eq!(load.rate(NetworkFunction::Pgw), 0.0);
    }
}
