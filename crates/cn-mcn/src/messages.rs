//! 3GPP procedure message flows behind each control-plane event.
//!
//! A Table 1 "event" is really a whole signaling procedure: an attach is
//! ~19 messages across five interfaces (NAS authentication and security
//! against the HSS, session establishment through SGW/PGW, policy from the
//! PCRF). This module encodes the simplified standard flows (TS 23.401
//! call flows at message granularity), expands event traces into message
//! traces, and derives per-NF load directly from the flows — giving MCN
//! simulations a finer-grained drive signal than event counts.

use crate::nf::{NetworkFunction, TransactionMatrix};
use cn_trace::{EventType, Timestamp, Trace, UeId};
use serde::{Deserialize, Serialize};

/// Control-plane interfaces of the EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// NAS / S1AP — UE/eNB ↔ MME.
    S1,
    /// S6a — MME ↔ HSS (Diameter).
    S6a,
    /// S11 — MME ↔ SGW (GTP-C).
    S11,
    /// S5/S8 — SGW ↔ PGW (GTP-C).
    S5,
    /// Gx — PGW ↔ PCRF (Diameter).
    Gx,
}

impl Interface {
    /// All five interfaces.
    pub const ALL: [Interface; 5] = [
        Interface::S1,
        Interface::S6a,
        Interface::S11,
        Interface::S5,
        Interface::Gx,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Interface::S1 => "S1(NAS/S1AP)",
            Interface::S6a => "S6a",
            Interface::S11 => "S11",
            Interface::S5 => "S5/S8",
            Interface::Gx => "Gx",
        }
    }

    /// The two network functions terminating the interface
    /// (the UE/eNB side of S1 is not an NF).
    pub fn endpoints(self) -> (Option<NetworkFunction>, Option<NetworkFunction>) {
        match self {
            Interface::S1 => (None, Some(NetworkFunction::Mme)),
            Interface::S6a => (Some(NetworkFunction::Mme), Some(NetworkFunction::Hss)),
            Interface::S11 => (Some(NetworkFunction::Mme), Some(NetworkFunction::Sgw)),
            Interface::S5 => (Some(NetworkFunction::Sgw), Some(NetworkFunction::Pgw)),
            Interface::Gx => (Some(NetworkFunction::Pgw), Some(NetworkFunction::Pcrf)),
        }
    }
}

/// One signaling message within a procedure.
///
/// (`Serialize`-only: the names are static 3GPP strings, not data to
/// round-trip.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Message {
    /// The 3GPP message name.
    pub name: &'static str,
    /// The interface it travels on.
    pub interface: Interface,
}

const fn m(name: &'static str, interface: Interface) -> Message {
    Message { name, interface }
}

use Interface::*;

/// The attach procedure (TS 23.401 §5.3.2, simplified).
pub const ATTACH_FLOW: [Message; 19] = [
    m("Attach Request", S1),
    m("Authentication-Information-Request", S6a),
    m("Authentication-Information-Answer", S6a),
    m("Authentication Request", S1),
    m("Authentication Response", S1),
    m("Security Mode Command", S1),
    m("Security Mode Complete", S1),
    m("Update-Location-Request", S6a),
    m("Update-Location-Answer", S6a),
    m("Create Session Request", S11),
    m("Create Session Request", S5),
    m("CCR-Initial", Gx),
    m("CCA-Initial", Gx),
    m("Create Session Response", S5),
    m("Create Session Response", S11),
    m("Attach Accept", S1),
    m("Attach Complete", S1),
    m("Modify Bearer Request", S11),
    m("Modify Bearer Response", S11),
];

/// The UE-initiated detach procedure (TS 23.401 §5.3.8, simplified; the
/// switched-off UE is purged from the HSS).
pub const DETACH_FLOW: [Message; 10] = [
    m("Detach Request", S1),
    m("Delete Session Request", S11),
    m("Delete Session Request", S5),
    m("CCR-Termination", Gx),
    m("CCA-Termination", Gx),
    m("Delete Session Response", S5),
    m("Delete Session Response", S11),
    m("Detach Accept", S1),
    m("Purge-UE-Request", S6a),
    m("Purge-UE-Answer", S6a),
];

/// The service request procedure (TS 23.401 §5.3.4.1).
pub const SERVICE_REQUEST_FLOW: [Message; 5] = [
    m("Service Request", S1),
    m("Initial Context Setup Request", S1),
    m("Initial Context Setup Response", S1),
    m("Modify Bearer Request", S11),
    m("Modify Bearer Response", S11),
];

/// The S1 release procedure (TS 23.401 §5.3.5).
pub const S1_RELEASE_FLOW: [Message; 5] = [
    m("UE Context Release Request", S1),
    m("Release Access Bearers Request", S11),
    m("Release Access Bearers Response", S11),
    m("UE Context Release Command", S1),
    m("UE Context Release Complete", S1),
];

/// X2 handover with S1 path switch (TS 23.401 §5.5.1.1).
pub const HANDOVER_FLOW: [Message; 4] = [
    m("Path Switch Request", S1),
    m("Modify Bearer Request", S11),
    m("Modify Bearer Response", S11),
    m("Path Switch Request Acknowledge", S1),
];

/// The tracking-area update procedure without SGW change (TS 23.401
/// §5.3.3.1, simplified).
pub const TAU_FLOW: [Message; 3] = [
    m("Tracking Area Update Request", S1),
    m("Tracking Area Update Accept", S1),
    m("Tracking Area Update Complete", S1),
];

/// The message flow of one control-plane event.
pub fn procedure(event: EventType) -> &'static [Message] {
    match event {
        EventType::Attach => &ATTACH_FLOW,
        EventType::Detach => &DETACH_FLOW,
        EventType::ServiceRequest => &SERVICE_REQUEST_FLOW,
        EventType::S1ConnRelease => &S1_RELEASE_FLOW,
        EventType::Handover => &HANDOVER_FLOW,
        EventType::Tau => &TAU_FLOW,
    }
}

/// A signaling message instance in an expanded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MessageRecord {
    /// Message time: the event timestamp plus 1 ms per flow step
    /// (a synthetic serialization of the procedure; real inter-message
    /// delays depend on deployment RTTs).
    pub t: Timestamp,
    /// The UE whose procedure this message belongs to.
    pub ue: UeId,
    /// The message.
    pub message: Message,
}

/// Expand an event trace into its signaling messages, lazily.
pub fn expand(trace: &Trace) -> impl Iterator<Item = MessageRecord> + '_ {
    trace.iter().flat_map(|r| {
        procedure(r.event)
            .iter()
            .enumerate()
            .map(move |(i, &message)| MessageRecord {
                t: r.t.saturating_add(i as u64),
                ue: r.ue,
                message,
            })
    })
}

/// Total messages per interface for a trace.
pub fn interface_load(trace: &Trace) -> [u64; 5] {
    // Count per event type once, then multiply — traces are large,
    // procedures are static.
    let mut per_event = [[0u64; 5]; 6];
    for e in EventType::ALL {
        for msg in procedure(e) {
            let idx = Interface::ALL
                .iter()
                .position(|&i| i == msg.interface)
                .expect("known");
            per_event[e.code() as usize][idx] += 1;
        }
    }
    let mut event_counts = [0u64; 6];
    for r in trace.iter() {
        event_counts[r.event.code() as usize] += 1;
    }
    let mut totals = [0u64; 5];
    for e in 0..6 {
        for i in 0..5 {
            totals[i] += event_counts[e] * per_event[e][i];
        }
    }
    totals
}

/// Derive a [`TransactionMatrix`] from the message flows: an NF's
/// transactions for an event are the messages on interfaces it terminates.
/// Finer-grained than [`TransactionMatrix::default_epc`] (which counts
/// procedure legs), but consistent with it in shape.
pub fn derived_matrix() -> TransactionMatrix {
    let mut transactions = [[0u32; 5]; 6];
    for e in EventType::ALL {
        for msg in procedure(e) {
            let (a, b) = msg.interface.endpoints();
            for nf in [a, b].into_iter().flatten() {
                let idx = NetworkFunction::ALL
                    .iter()
                    .position(|&n| n == nf)
                    .expect("known");
                transactions[e.code() as usize][idx] += 1;
            }
        }
    }
    TransactionMatrix { transactions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, TraceRecord};

    #[test]
    fn attach_is_by_far_the_heaviest_flow() {
        for e in EventType::ALL {
            assert!(
                ATTACH_FLOW.len() >= procedure(e).len(),
                "{e} flow longer than attach"
            );
        }
        assert_eq!(procedure(EventType::Attach).len(), 19);
        assert_eq!(procedure(EventType::Tau).len(), 3);
    }

    #[test]
    fn flows_use_expected_interfaces() {
        // HO and TAU never touch HSS/PCRF interfaces.
        for e in [EventType::Handover, EventType::Tau] {
            for msg in procedure(e) {
                assert!(
                    !matches!(msg.interface, Interface::S6a | Interface::Gx),
                    "{e}: {} on {}",
                    msg.name,
                    msg.interface.name()
                );
            }
        }
        // Attach touches every interface.
        let used: std::collections::HashSet<Interface> =
            ATTACH_FLOW.iter().map(|m| m.interface).collect();
        assert_eq!(used.len(), 5);
    }

    #[test]
    fn expansion_counts_and_orders() {
        let trace = Trace::from_records(vec![
            TraceRecord::new(
                Timestamp::from_millis(1_000),
                UeId(1),
                DeviceType::Phone,
                EventType::ServiceRequest,
            ),
            TraceRecord::new(
                Timestamp::from_millis(2_000),
                UeId(1),
                DeviceType::Phone,
                EventType::Tau,
            ),
        ]);
        let msgs: Vec<MessageRecord> = expand(&trace).collect();
        assert_eq!(msgs.len(), 5 + 3);
        assert_eq!(msgs[0].message.name, "Service Request");
        assert_eq!(msgs[0].t.as_millis(), 1_000);
        assert_eq!(msgs[4].t.as_millis(), 1_004);
        assert_eq!(msgs[5].message.name, "Tracking Area Update Request");
    }

    #[test]
    fn interface_load_matches_expansion() {
        let trace = Trace::from_records(vec![TraceRecord::new(
            Timestamp::from_millis(0),
            UeId(0),
            DeviceType::Phone,
            EventType::Attach,
        )]);
        let load = interface_load(&trace);
        let total: u64 = load.iter().sum();
        assert_eq!(total, ATTACH_FLOW.len() as u64);
        // S1 carries the NAS bulk of an attach.
        assert_eq!(load[0], 7);
        assert_eq!(load[1], 4); // S6a
    }

    #[test]
    fn derived_matrix_is_consistent_with_the_coarse_one() {
        let derived = derived_matrix();
        let coarse = TransactionMatrix::default_epc();
        // Qualitative agreement: attach heaviest at every NF it touches,
        // HO/TAU never reach the HSS, MME present everywhere.
        for e in EventType::ALL {
            assert!(derived.of(e, NetworkFunction::Mme) > 0, "{e}");
            let zero_coarse = coarse.of(e, NetworkFunction::Hss) == 0;
            let zero_derived = derived.of(e, NetworkFunction::Hss) == 0;
            assert_eq!(zero_coarse, zero_derived, "{e}: HSS presence disagrees");
        }
        assert!(
            derived.of(EventType::Attach, NetworkFunction::Mme)
                > derived.of(EventType::ServiceRequest, NetworkFunction::Mme)
        );
    }
}
