//! Multi-NF discrete-event core-network simulator.
//!
//! [`crate::queueing::QueueSim`] answers "what if the whole core were one
//! FIFO box" — useful for analytic sanity, but a real EPC is five network
//! functions with their own pools, their own service-time laws, and
//! procedures that *chain* across them: an attach authenticates at the
//! HSS before it can create a session at the SGW/PGW, and pulls policy
//! from the PCRF before the MME can accept. This module is the
//! event-calendar discrete-event simulator (DES) the paper's §3.1 use
//! case actually calls for, in the spirit of the simmer 5G-scenario DES
//! and the Dababneh et al. per-NF transaction model:
//!
//! * each [`NetworkFunction`] is a pool of `c` identical servers fed by
//!   one FIFO queue, with per-transaction service times drawn from a
//!   [`Dist`] of the `cn-stats` zoo (log-normal by default, any family
//!   by configuration) — not fixed constants;
//! * each admitted procedure fans out into a **dependency chain** of
//!   per-NF stages derived from the [`TransactionMatrix`]
//!   ([`dependency_chain`]): attach runs MME → HSS auth → MME → SGW/PGW
//!   session → PCRF policy → MME accept, and stage *k+1* cannot start
//!   before stage *k* completes;
//! * per-NF **autoscaling** ([`AutoscalePolicy`]) runs inside the loop:
//!   a periodic control tick compares queue depth against a
//!   per-server watermark and brings servers online after a
//!   provisioning delay — the *scaling lag* (breach-to-online time) is
//!   measured and reported, because it is exactly the number a capacity
//!   planner wants from a storm experiment;
//! * the existing [`AdmissionPolicy`] token bucket (NAS congestion
//!   control) guards the front door: shed procedures never enter the
//!   calendar, and shed counts are reported per [`Priority`] class.
//!
//! ## Determinism
//!
//! Every service time is a pure function of `(config.seed, ue, arrival
//! time, event type)`: each job derives its own RNG at admission and
//! draws all of its stage services up front. Two consequences: reruns at
//! a fixed seed are bit-identical (the closed-loop gate `mcn_check` pins
//! this), and injecting extra records into a trace never changes the
//! service times of the records already there — the property the
//! monotone-degradation suite leans on, mirroring `cn-scenario`'s
//! prefix-multiset injection discipline.
//!
//! ## Feeding the simulator
//!
//! [`DesSim`] is push-based: [`DesSim::offer`] admits one record (input
//! must be sorted by time; out-of-order input is a typed
//! [`DesError::UnsortedInput`], never a silently wrong backlog), and
//! [`DesSim::finish`] drains the calendar and builds the [`DesReport`].
//! Any source plumbs in — a batch [`Trace`] ([`DesSim::run_trace`]), a
//! `ScenarioStream`, or a live TCP connection decoded by `cn-live`.
//! Telemetry flows through the `cn_mcn_des_*` metric family when a
//! registry is attached with [`DesSim::observed`].

use crate::nf::{NetworkFunction, TransactionMatrix};
use crate::overload::{priority_of, AdmissionPolicy, Priority};
use cn_obs::{Counter, Gauge, Histogram, Registry};
use cn_stats::summary::percentile_sorted;
use cn_stats::{Dist, LogNormal};
use cn_trace::{EventType, Trace, TraceRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-NF pool configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfConfig {
    /// Which network function this pool is.
    pub nf: NetworkFunction,
    /// Initial (and, without autoscaling, fixed) server count.
    pub servers: usize,
    /// Per-transaction service-time distribution. Samples are
    /// interpreted as **microseconds** and rounded to the calendar grid;
    /// negative draws (impossible for the stock families) clamp to 0.
    pub service: Dist,
    /// Optional autoscaling policy; `None` pins the pool size.
    pub autoscale: Option<AutoscalePolicy>,
}

/// Queue-depth-driven horizontal autoscaling for one NF pool.
///
/// A control tick fires every `eval_every_ms`. When the queue holds more
/// than `high_depth_per_server` jobs per online-or-provisioning server,
/// one server is ordered; it comes online `provision_ms` later. When the
/// queue drops below `low_depth_per_server` per server and a server is
/// idle, one is retired immediately (draining costs nothing in-model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Lower bound on pool size (also the floor for scale-down).
    pub min_servers: usize,
    /// Upper bound on pool size.
    pub max_servers: usize,
    /// Scale up when `queue_depth > high_depth_per_server × servers`.
    pub high_depth_per_server: f64,
    /// Scale down when `queue_depth < low_depth_per_server × servers`.
    pub low_depth_per_server: f64,
    /// Control-loop period, ms.
    pub eval_every_ms: u64,
    /// Delay between ordering a server and it taking work, ms.
    pub provision_ms: u64,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesConfig {
    /// Seed for the per-job service-time streams.
    pub seed: u64,
    /// One pool per NF. Every NF the `matrix` references (non-zero
    /// transaction count for any event) must be present exactly once.
    pub nfs: Vec<NfConfig>,
    /// Per-event transaction fan-out across NFs.
    pub matrix: TransactionMatrix,
    /// Optional NAS-style admission control at the front door.
    pub admission: Option<AdmissionPolicy>,
}

/// A rejected [`DesConfig`] or input stream, with the reason typed.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// An NF appears more than once in `nfs`.
    DuplicateNf(NetworkFunction),
    /// The matrix routes transactions to an NF with no configured pool.
    MissingNf(NetworkFunction),
    /// A pool has zero servers.
    ZeroServers(NetworkFunction),
    /// An autoscaling policy is inconsistent (bounds, watermarks, or a
    /// zero evaluation period).
    BadAutoscale {
        /// The offending NF.
        nf: NetworkFunction,
        /// Human-readable reason.
        reason: String,
    },
    /// The admission policy carries a non-finite or non-positive field.
    BadAdmission {
        /// Offending field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// [`DesSim::offer`] saw an arrival earlier than its predecessor.
    UnsortedInput {
        /// Timestamp of the previous arrival, ms.
        prev_ms: u64,
        /// Timestamp of the offending arrival, ms.
        got_ms: u64,
    },
}

impl std::fmt::Display for DesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesError::DuplicateNf(nf) => write!(f, "duplicate pool for {nf}"),
            DesError::MissingNf(nf) => {
                write!(
                    f,
                    "matrix routes transactions to {nf} but no pool is configured"
                )
            }
            DesError::ZeroServers(nf) => write!(f, "{nf} pool has zero servers"),
            DesError::BadAutoscale { nf, reason } => {
                write!(f, "{nf} autoscale policy invalid: {reason}")
            }
            DesError::BadAdmission { field, value } => {
                write!(f, "admission policy field {field} invalid: {value}")
            }
            DesError::UnsortedInput { prev_ms, got_ms } => write!(
                f,
                "unsorted input: arrival at {got_ms} ms after one at {prev_ms} ms"
            ),
        }
    }
}

impl std::error::Error for DesError {}

impl DesConfig {
    /// A plausible EPC shape: MME-heavy pools, Diameter (HSS/PCRF)
    /// slower than GTP-C (SGW/PGW), log-normal service laws with medians
    /// in the [`crate::queueing::ServiceProfile::default_mme`] range,
    /// and an autoscaling MME. No admission control — add one with
    /// [`DesConfig::with_admission`].
    pub fn default_epc(seed: u64) -> DesConfig {
        let lognormal = |median_us: f64, sigma: f64| {
            Dist::LogNormal(LogNormal::from_median(median_us, sigma).expect("valid law"))
        };
        let pool = |nf, servers, service| NfConfig {
            nf,
            servers,
            service,
            autoscale: None,
        };
        DesConfig {
            seed,
            nfs: vec![
                NfConfig {
                    nf: NetworkFunction::Mme,
                    servers: 4,
                    service: lognormal(350.0, 0.4),
                    autoscale: Some(AutoscalePolicy {
                        min_servers: 4,
                        max_servers: 16,
                        high_depth_per_server: 8.0,
                        low_depth_per_server: 2.0,
                        eval_every_ms: 1_000,
                        provision_ms: 5_000,
                    }),
                },
                pool(NetworkFunction::Hss, 2, lognormal(450.0, 0.4)),
                pool(NetworkFunction::Pcrf, 2, lognormal(400.0, 0.4)),
                pool(NetworkFunction::Sgw, 2, lognormal(250.0, 0.35)),
                pool(NetworkFunction::Pgw, 2, lognormal(250.0, 0.35)),
            ],
            matrix: TransactionMatrix::default_epc(),
            admission: None,
        }
    }

    /// Same configuration with an admission policy at the front door.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> DesConfig {
        self.admission = Some(policy);
        self
    }

    /// Typed validation: pool uniqueness and coverage of the matrix,
    /// non-empty pools, consistent autoscale bounds/watermarks, and a
    /// finite positive admission policy.
    pub fn validate(&self) -> Result<(), DesError> {
        let mut seen = [false; 5];
        for nf_cfg in &self.nfs {
            let idx = nf_index(nf_cfg.nf);
            if seen[idx] {
                return Err(DesError::DuplicateNf(nf_cfg.nf));
            }
            seen[idx] = true;
            if nf_cfg.servers == 0 {
                return Err(DesError::ZeroServers(nf_cfg.nf));
            }
            if let Some(p) = &nf_cfg.autoscale {
                let bad = |reason: &str| DesError::BadAutoscale {
                    nf: nf_cfg.nf,
                    reason: reason.into(),
                };
                if p.min_servers == 0 {
                    return Err(bad("min_servers is zero"));
                }
                if p.min_servers > p.max_servers {
                    return Err(bad("min_servers > max_servers"));
                }
                if !(nf_cfg.servers >= p.min_servers && nf_cfg.servers <= p.max_servers) {
                    return Err(bad("initial servers outside [min, max]"));
                }
                if !p.high_depth_per_server.is_finite() || p.high_depth_per_server <= 0.0 {
                    return Err(bad("high_depth_per_server not finite positive"));
                }
                if !p.low_depth_per_server.is_finite() || p.low_depth_per_server < 0.0 {
                    return Err(bad("low_depth_per_server not finite non-negative"));
                }
                if p.low_depth_per_server >= p.high_depth_per_server {
                    return Err(bad("low watermark not below high watermark"));
                }
                if p.eval_every_ms == 0 {
                    return Err(bad("eval_every_ms is zero"));
                }
            }
        }
        for event in EventType::ALL {
            let row = &self.matrix.transactions[event.code() as usize];
            for (idx, &tx) in row.iter().enumerate() {
                if tx > 0 && !seen[idx] {
                    return Err(DesError::MissingNf(NetworkFunction::ALL[idx]));
                }
            }
        }
        if let Some(p) = &self.admission {
            let check = |field: &'static str, value: f64, min: f64| {
                if !value.is_finite() || value < min {
                    Err(DesError::BadAdmission { field, value })
                } else {
                    Ok(())
                }
            };
            check("rate_per_sec", p.rate_per_sec, 0.0)?;
            check("burst", p.burst, 1.0)?;
            check("high_reserve", p.high_reserve, 0.0)?;
            check("critical_reserve", p.critical_reserve, 0.0)?;
        }
        Ok(())
    }
}

fn nf_index(nf: NetworkFunction) -> usize {
    NetworkFunction::ALL
        .iter()
        .position(|&n| n == nf)
        .expect("known NF")
}

/// Canonical NF visit order per procedure, following the TS 23.401
/// call flows (the same ordering [`crate::messages`] encodes at message
/// granularity).
fn visit_order(event: EventType) -> &'static [NetworkFunction] {
    use NetworkFunction::*;
    match event {
        // NAS + auth at HSS, security back at MME, session SGW→PGW,
        // policy at PCRF, accept/complete at MME.
        EventType::Attach => &[Mme, Hss, Mme, Sgw, Pgw, Pcrf, Mme],
        // Detach: session teardown SGW→PGW→PCRF, accept at MME, purge at HSS.
        EventType::Detach => &[Mme, Sgw, Pgw, Pcrf, Mme, Hss],
        EventType::ServiceRequest => &[Mme, Sgw, Mme],
        EventType::S1ConnRelease => &[Mme, Sgw, Mme],
        EventType::Handover => &[Mme, Sgw, Mme],
        EventType::Tau => &[Mme],
    }
}

/// The ordered per-NF stage chain of one procedure: each element is
/// `(nf, transactions served in that visit)`, and stage *k+1* depends on
/// stage *k* completing. The per-NF totals equal the matrix row exactly:
/// an NF visited multiple times splits its count evenly with the
/// remainder on the first visit, an NF the canonical order skips (but
/// the matrix routes to) is appended as a trailing stage, and zero-count
/// visits vanish.
pub fn dependency_chain(
    event: EventType,
    matrix: &TransactionMatrix,
) -> Vec<(NetworkFunction, u32)> {
    let order = visit_order(event);
    let row = &matrix.transactions[event.code() as usize];
    let mut visits = [0u32; 5];
    for &nf in order {
        visits[nf_index(nf)] += 1;
    }
    let mut first_seen = [true; 5];
    let mut chain = Vec::with_capacity(order.len());
    for &nf in order {
        let i = nf_index(nf);
        if row[i] == 0 {
            continue;
        }
        let base = row[i] / visits[i];
        let tx = if first_seen[i] {
            first_seen[i] = false;
            base + row[i] % visits[i]
        } else {
            base
        };
        if tx > 0 {
            chain.push((nf, tx));
        }
    }
    for (i, &tx) in row.iter().enumerate() {
        if tx > 0 && visits[i] == 0 {
            chain.push((NetworkFunction::ALL[i], tx));
        }
    }
    chain
}

/// One calendar action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// A server at `nf` finishes the current stage of `job`.
    StageDone { job: u32 },
    /// A provisioned server at `nf` comes online.
    ServerOnline { nf: u8 },
    /// The autoscaling control loop of `nf` evaluates.
    ScaleTick { nf: u8 },
}

/// Calendar entries order by `(time, sequence)`; the sequence number is
/// assigned at push, making the drain order a deterministic function of
/// the push order (which is itself deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CalEntry {
    t_us: u64,
    seq: u64,
    action_key: u8,
    job_or_nf: u32,
}

impl CalEntry {
    fn new(t_us: u64, seq: u64, action: Action) -> CalEntry {
        let (action_key, job_or_nf) = match action {
            Action::StageDone { job } => (0, job),
            Action::ServerOnline { nf } => (1, u32::from(nf)),
            Action::ScaleTick { nf } => (2, u32::from(nf)),
        };
        CalEntry {
            t_us,
            seq,
            action_key,
            job_or_nf,
        }
    }

    fn action(&self) -> Action {
        match self.action_key {
            0 => Action::StageDone {
                job: self.job_or_nf,
            },
            1 => Action::ServerOnline {
                nf: self.job_or_nf as u8,
            },
            _ => Action::ScaleTick {
                nf: self.job_or_nf as u8,
            },
        }
    }
}

/// One in-flight procedure.
#[derive(Debug, Clone)]
struct Job {
    arrival_us: u64,
    stage_enqueued_us: u64,
    stage: usize,
    event: EventType,
    /// Pre-drawn per-stage service times, µs (see module docs on
    /// determinism).
    stage_service_us: Vec<u64>,
}

/// Telemetry handles (no-ops unless a registry is attached).
#[derive(Debug, Clone, Default)]
struct DesObs {
    latency_us: Histogram,
    offered: Counter,
    completed: Counter,
    admitted: [Counter; 3],
    shed: [Counter; 3],
    nf_depth: [Histogram; 5],
    nf_stage_latency_us: [Histogram; 5],
    nf_transactions: [Counter; 5],
    nf_servers: [Gauge; 5],
    nf_scale_up: [Counter; 5],
    nf_scale_down: [Counter; 5],
    nf_scaling_lag_ms: [Histogram; 5],
}

impl DesObs {
    fn register(registry: &Registry) -> DesObs {
        let by_priority = |name: &str| {
            Priority::ALL.map(|p| registry.counter_with(name, &[("priority", p.label())]))
        };
        let nf_hist = |name: &str| {
            NetworkFunction::ALL.map(|nf| registry.histogram_with(name, &[("nf", nf.name())]))
        };
        let nf_counter = |name: &str, extra: Option<(&str, &str)>| {
            NetworkFunction::ALL.map(|nf| {
                let nf_label = ("nf", nf.name());
                match extra {
                    Some(kv) => registry.counter_with(name, &[nf_label, kv]),
                    None => registry.counter_with(name, &[nf_label]),
                }
            })
        };
        DesObs {
            latency_us: registry.histogram("cn_mcn_des_latency_us"),
            offered: registry.counter("cn_mcn_des_offered_total"),
            completed: registry.counter("cn_mcn_des_completed_total"),
            admitted: by_priority("cn_mcn_des_admitted_total"),
            shed: by_priority("cn_mcn_des_shed_total"),
            nf_depth: nf_hist("cn_mcn_des_nf_depth"),
            nf_stage_latency_us: nf_hist("cn_mcn_des_nf_stage_latency_us"),
            nf_transactions: nf_counter("cn_mcn_des_nf_transactions_total", None),
            nf_servers: NetworkFunction::ALL
                .map(|nf| registry.gauge_with("cn_mcn_des_nf_servers", &[("nf", nf.name())])),
            nf_scale_up: nf_counter("cn_mcn_des_scale_events_total", Some(("direction", "up"))),
            nf_scale_down: nf_counter("cn_mcn_des_scale_events_total", Some(("direction", "down"))),
            nf_scaling_lag_ms: nf_hist("cn_mcn_des_scaling_lag_ms"),
        }
    }
}

/// Live state of one NF pool.
#[derive(Debug)]
struct NfState {
    cfg: NfConfig,
    servers: usize,
    /// Servers ordered but not yet online.
    provisioning: usize,
    busy: usize,
    queue: VecDeque<u32>,
    /// Accumulated busy server-time, µs.
    busy_us: u64,
    /// Accumulated capacity integral ∫ servers dt, µs, up to
    /// `cap_since_us`.
    cap_us: u64,
    cap_since_us: u64,
    peak_depth: usize,
    stages: u64,
    transactions: u64,
    stage_latencies_us: Vec<u64>,
    /// Start of the current continuous high-watermark breach.
    breach_since_us: Option<u64>,
    scale_ups: u64,
    scale_downs: u64,
    scaling_lags_ms: Vec<u64>,
}

impl NfState {
    fn new(cfg: NfConfig) -> NfState {
        let servers = cfg.servers;
        NfState {
            cfg,
            servers,
            provisioning: 0,
            busy: 0,
            queue: VecDeque::new(),
            busy_us: 0,
            cap_us: 0,
            cap_since_us: 0,
            peak_depth: 0,
            stages: 0,
            transactions: 0,
            stage_latencies_us: Vec::new(),
            breach_since_us: None,
            scale_ups: 0,
            scale_downs: 0,
            scaling_lags_ms: Vec::new(),
        }
    }

    /// Close the capacity integral up to `now` (call before any change
    /// to `servers`).
    fn settle_capacity(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.cap_since_us);
        self.cap_us += dt * self.servers as u64;
        self.cap_since_us = now_us;
    }

    /// Re-evaluate the breach clock against the high watermark.
    ///
    /// The clock runs against *online* servers only: a breach means the
    /// pool's real capacity is underwater right now, and it stays armed
    /// through the provisioning window so breach-to-online lag measures
    /// the full detection + provision delay. (The scale-up *decision* in
    /// `scale_tick` is what counts in-flight servers, to avoid
    /// double-provisioning.)
    fn update_breach(&mut self, now_us: u64) {
        let Some(policy) = &self.cfg.autoscale else {
            return;
        };
        if self.queue.len() as f64 > policy.high_depth_per_server * self.servers as f64 {
            self.breach_since_us.get_or_insert(now_us);
        } else {
            self.breach_since_us = None;
        }
    }
}

/// What one simulated NF did, for [`DesReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfDesReport {
    /// The network function.
    pub nf: NetworkFunction,
    /// Transactions served (matrix units).
    pub transactions: u64,
    /// Stages (dependency-chain visits) served.
    pub stages: u64,
    /// Busy server-time over the capacity integral ∫ servers dt;
    /// autoscaling-aware, clamped to ≤ 1.0.
    pub utilization: f64,
    /// Largest queue depth observed at an enqueue instant.
    pub peak_depth: usize,
    /// Median stage sojourn (wait + service), ms.
    pub p50_stage_latency_ms: f64,
    /// 99th-percentile stage sojourn, ms.
    pub p99_stage_latency_ms: f64,
    /// Pool size at the end of the run.
    pub final_servers: usize,
    /// Scale-up events (servers that came online).
    pub scale_ups: u64,
    /// Scale-down events.
    pub scale_downs: u64,
    /// Worst breach-to-online scaling lag, ms (0 when never scaled).
    pub max_scaling_lag_ms: u64,
    /// Mean scaling lag, ms.
    pub mean_scaling_lag_ms: f64,
}

/// The closed-loop numbers of one DES run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesReport {
    /// Records offered (admitted + shed).
    pub offered: u64,
    /// Admitted per priority class (Critical, High, Low).
    pub admitted: [u64; 3],
    /// Shed per priority class.
    pub shed: [u64; 3],
    /// Procedures that ran their full dependency chain.
    pub completed: u64,
    /// Shed fraction of all offered records.
    pub shed_rate: f64,
    /// Mean end-to-end procedure latency, ms.
    pub mean_latency_ms: f64,
    /// Median end-to-end latency, ms.
    pub p50_latency_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_latency_ms: f64,
    /// Maximum end-to-end latency, ms.
    pub max_latency_ms: f64,
    /// Per-NF breakdown, in [`NetworkFunction::ALL`] order restricted to
    /// configured pools.
    pub per_nf: Vec<NfDesReport>,
}

impl DesReport {
    /// Total admitted procedures.
    pub fn total_admitted(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total shed procedures.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// The simulator. See the module docs for the model.
pub struct DesSim {
    config: DesConfig,
    /// `chains[event_code]` = compiled dependency chain.
    chains: [Vec<(usize, u32)>; 6],
    nfs: Vec<NfState>,
    calendar: BinaryHeap<Reverse<CalEntry>>,
    seq: u64,
    jobs: Vec<Job>,
    free_jobs: Vec<u32>,
    last_arrival_ms: Option<u64>,
    t0_us: Option<u64>,
    end_us: u64,
    tokens: f64,
    last_token_us: Option<u64>,
    offered: u64,
    admitted: [u64; 3],
    shed: [u64; 3],
    outstanding: u64,
    completed: u64,
    latencies_us: Vec<u64>,
    input_done: bool,
    obs: DesObs,
}

impl DesSim {
    /// Validate `config` and build the simulator.
    pub fn new(config: DesConfig) -> Result<DesSim, DesError> {
        config.validate()?;
        let mut pool_of = [usize::MAX; 5];
        for (i, nf_cfg) in config.nfs.iter().enumerate() {
            pool_of[nf_index(nf_cfg.nf)] = i;
        }
        let chains = EventType::ALL.map(|event| {
            dependency_chain(event, &config.matrix)
                .into_iter()
                .map(|(nf, tx)| (pool_of[nf_index(nf)], tx))
                .collect::<Vec<_>>()
        });
        let nfs = config.nfs.iter().cloned().map(NfState::new).collect();
        let tokens = config.admission.map_or(0.0, |p| p.burst);
        Ok(DesSim {
            config,
            chains,
            nfs,
            calendar: BinaryHeap::new(),
            seq: 0,
            jobs: Vec::new(),
            free_jobs: Vec::new(),
            last_arrival_ms: None,
            t0_us: None,
            end_us: 0,
            tokens,
            last_token_us: None,
            offered: 0,
            admitted: [0; 3],
            shed: [0; 3],
            outstanding: 0,
            completed: 0,
            latencies_us: Vec::new(),
            input_done: false,
            obs: DesObs::default(),
        })
    }

    /// Record `cn_mcn_des_*` telemetry into `registry` for the rest of
    /// this run: the end-to-end latency histogram, per-NF depth /
    /// stage-latency / transaction series, admission counters by
    /// priority, scale-event counters by direction, per-NF server
    /// gauges, and scaling-lag histograms.
    pub fn observed(mut self, registry: &Registry) -> DesSim {
        self.obs = DesObs::register(registry);
        for state in &self.nfs {
            self.obs.nf_servers[nf_index(state.cfg.nf)].set(state.servers as u64);
        }
        self
    }

    /// Convenience: run a whole sorted trace and finish.
    pub fn run_trace(
        config: DesConfig,
        trace: &Trace,
        registry: &Registry,
    ) -> Result<DesReport, DesError> {
        let mut sim = DesSim::new(config)?.observed(registry);
        for rec in trace.iter() {
            sim.offer(rec)?;
        }
        Ok(sim.finish())
    }

    fn push(&mut self, t_us: u64, action: Action) {
        let entry = CalEntry::new(t_us, self.seq, action);
        self.seq += 1;
        self.calendar.push(Reverse(entry));
    }

    /// Pre-draw every stage service time of one job from its own RNG —
    /// a pure function of `(seed, ue, t, event)`.
    fn draw_services(&self, rec: &TraceRecord) -> Vec<u64> {
        let chain = &self.chains[rec.event.code() as usize];
        let mut rng = StdRng::seed_from_u64(job_seed(
            self.config.seed,
            rec.ue.0,
            rec.t.as_millis(),
            rec.event.code(),
        ));
        chain
            .iter()
            .map(|&(pool, tx)| {
                let service = &self.config.nfs[pool].service;
                (0..tx)
                    .map(|_| service.sample(&mut rng).max(0.0).round() as u64)
                    .sum()
            })
            .collect()
    }

    /// Offer one record at its trace timestamp. Input must be sorted by
    /// time (ties allowed); earlier-than-predecessor arrivals are a
    /// typed error, mirroring the `run_messages` sorted-arrival fix.
    pub fn offer(&mut self, rec: &TraceRecord) -> Result<(), DesError> {
        let arrival_ms = rec.t.as_millis();
        if let Some(prev_ms) = self.last_arrival_ms {
            if arrival_ms < prev_ms {
                return Err(DesError::UnsortedInput {
                    prev_ms,
                    got_ms: arrival_ms,
                });
            }
        }
        self.last_arrival_ms = Some(arrival_ms);
        let arrival_us = arrival_ms * 1_000;
        if self.t0_us.is_none() {
            self.t0_us = Some(arrival_us);
            self.end_us = arrival_us;
            for state in &mut self.nfs {
                state.cap_since_us = arrival_us;
            }
            // Arm the autoscaling control loops.
            for i in 0..self.nfs.len() {
                if let Some(policy) = &self.nfs[i].cfg.autoscale {
                    let t = arrival_us + policy.eval_every_ms * 1_000;
                    self.push(t, Action::ScaleTick { nf: i as u8 });
                }
            }
        }
        self.advance_to(arrival_us);

        self.offered += 1;
        self.obs.offered.inc();
        let priority = priority_of(rec.event);
        if let Some(policy) = &self.config.admission {
            if let Some(prev_us) = self.last_token_us {
                self.tokens = (self.tokens
                    + arrival_us.saturating_sub(prev_us) as f64 / 1e6 * policy.rate_per_sec)
                    .min(policy.burst);
            }
            self.last_token_us = Some(arrival_us);
            let floor = match priority {
                Priority::Critical => 0.0,
                Priority::High => policy.burst * policy.critical_reserve,
                Priority::Low => policy.burst * (policy.critical_reserve + policy.high_reserve),
            };
            if self.tokens >= floor + 1.0 {
                self.tokens -= 1.0;
            } else {
                self.shed[priority as usize] += 1;
                self.obs.shed[priority as usize].inc();
                return Ok(());
            }
        }
        self.admitted[priority as usize] += 1;
        self.obs.admitted[priority as usize].inc();

        let stage_service_us = self.draw_services(rec);
        if stage_service_us.is_empty() {
            // A matrix can route an event nowhere; it completes at once.
            self.completed += 1;
            self.obs.completed.inc();
            self.latencies_us.push(0);
            self.obs.latency_us.record(0);
            return Ok(());
        }
        let job = Job {
            arrival_us,
            stage_enqueued_us: arrival_us,
            stage: 0,
            event: rec.event,
            stage_service_us,
        };
        let id = match self.free_jobs.pop() {
            Some(id) => {
                self.jobs[id as usize] = job;
                id
            }
            None => {
                self.jobs.push(job);
                (self.jobs.len() - 1) as u32
            }
        };
        self.outstanding += 1;
        let pool = self.chains[rec.event.code() as usize][0].0;
        self.enqueue(pool, id, arrival_us);
        Ok(())
    }

    /// Drain the calendar and report. Remaining control ticks stop
    /// rescheduling once no work is outstanding.
    pub fn finish(mut self) -> DesReport {
        self.input_done = true;
        self.advance_to(u64::MAX);
        debug_assert_eq!(self.outstanding, 0, "calendar drained with jobs in flight");
        let end_us = self.end_us;
        for state in &mut self.nfs {
            state.settle_capacity(end_us);
        }

        let percentiles = |lat_us: &mut Vec<u64>| -> (f64, f64, f64, f64) {
            if lat_us.is_empty() {
                return (0.0, 0.0, 0.0, 0.0);
            }
            lat_us.sort_unstable();
            let ms: Vec<f64> = lat_us.iter().map(|&l| l as f64 / 1_000.0).collect();
            let mean = ms.iter().sum::<f64>() / ms.len() as f64;
            (
                mean,
                percentile_sorted(&ms, 0.50),
                percentile_sorted(&ms, 0.99),
                *ms.last().expect("non-empty"),
            )
        };

        let per_nf = self
            .nfs
            .iter_mut()
            .map(|state| {
                let utilization = if state.cap_us == 0 {
                    0.0
                } else {
                    let ratio = state.busy_us as f64 / state.cap_us as f64;
                    debug_assert!(
                        ratio <= 1.0 + 1e-9,
                        "{}: utilization {ratio} > 1.0",
                        state.cfg.nf
                    );
                    ratio.min(1.0)
                };
                let (_, p50, p99, _) = percentiles(&mut state.stage_latencies_us);
                let lag_n = state.scaling_lags_ms.len();
                NfDesReport {
                    nf: state.cfg.nf,
                    transactions: state.transactions,
                    stages: state.stages,
                    utilization,
                    peak_depth: state.peak_depth,
                    p50_stage_latency_ms: p50,
                    p99_stage_latency_ms: p99,
                    final_servers: state.servers,
                    scale_ups: state.scale_ups,
                    scale_downs: state.scale_downs,
                    max_scaling_lag_ms: state.scaling_lags_ms.iter().copied().max().unwrap_or(0),
                    mean_scaling_lag_ms: if lag_n == 0 {
                        0.0
                    } else {
                        state.scaling_lags_ms.iter().sum::<u64>() as f64 / lag_n as f64
                    },
                }
            })
            .collect();

        let (mean, p50, p99, max) = percentiles(&mut self.latencies_us);
        let total_shed: u64 = self.shed.iter().sum();
        DesReport {
            offered: self.offered,
            admitted: self.admitted,
            shed: self.shed,
            completed: self.completed,
            shed_rate: if self.offered == 0 {
                0.0
            } else {
                total_shed as f64 / self.offered as f64
            },
            mean_latency_ms: mean,
            p50_latency_ms: p50,
            p99_latency_ms: p99,
            max_latency_ms: max,
            per_nf,
        }
    }

    /// Process every calendar entry at or before `to_us`.
    fn advance_to(&mut self, to_us: u64) {
        while let Some(Reverse(entry)) = self.calendar.peek().copied() {
            if entry.t_us > to_us {
                break;
            }
            self.calendar.pop();
            self.end_us = self.end_us.max(entry.t_us);
            match entry.action() {
                Action::StageDone { job } => self.stage_done(job, entry.t_us),
                Action::ServerOnline { nf } => self.server_online(nf as usize, entry.t_us),
                Action::ScaleTick { nf } => self.scale_tick(nf as usize, entry.t_us),
            }
        }
    }

    fn enqueue(&mut self, pool: usize, job: u32, now_us: u64) {
        let state = &mut self.nfs[pool];
        let nf_idx = nf_index(state.cfg.nf);
        self.obs.nf_depth[nf_idx].record(state.queue.len() as u64);
        state.queue.push_back(job);
        state.peak_depth = state.peak_depth.max(state.queue.len());
        self.dispatch(pool, now_us);
        self.nfs[pool].update_breach(now_us);
    }

    fn dispatch(&mut self, pool: usize, now_us: u64) {
        loop {
            let state = &mut self.nfs[pool];
            if state.busy >= state.servers || state.queue.is_empty() {
                break;
            }
            let job_id = state.queue.pop_front().expect("non-empty");
            state.busy += 1;
            let job = &self.jobs[job_id as usize];
            let service_us = job.stage_service_us[job.stage];
            self.push(now_us + service_us, Action::StageDone { job: job_id });
        }
    }

    fn stage_done(&mut self, job_id: u32, now_us: u64) {
        let (pool, chain_len, service_us, stage_sojourn_us, tx) = {
            let job = &self.jobs[job_id as usize];
            let chain = &self.chains[job.event.code() as usize];
            let (pool, tx) = chain[job.stage];
            (
                pool,
                chain.len(),
                job.stage_service_us[job.stage],
                now_us - job.stage_enqueued_us,
                tx,
            )
        };
        {
            let state = &mut self.nfs[pool];
            let nf_idx = nf_index(state.cfg.nf);
            state.busy -= 1;
            state.busy_us += service_us;
            state.stages += 1;
            state.transactions += u64::from(tx);
            state.stage_latencies_us.push(stage_sojourn_us);
            self.obs.nf_stage_latency_us[nf_idx].record(stage_sojourn_us);
            self.obs.nf_transactions[nf_idx].add(u64::from(tx));
        }
        let job = &mut self.jobs[job_id as usize];
        job.stage += 1;
        if job.stage < chain_len {
            job.stage_enqueued_us = now_us;
            let next_pool = self.chains[job.event.code() as usize][job.stage].0;
            self.enqueue(next_pool, job_id, now_us);
        } else {
            let latency_us = now_us - job.arrival_us;
            self.latencies_us.push(latency_us);
            self.obs.latency_us.record(latency_us);
            self.completed += 1;
            self.obs.completed.inc();
            self.outstanding -= 1;
            self.free_jobs.push(job_id);
        }
        self.dispatch(pool, now_us);
        self.nfs[pool].update_breach(now_us);
    }

    fn server_online(&mut self, pool: usize, now_us: u64) {
        let state = &mut self.nfs[pool];
        state.settle_capacity(now_us);
        state.servers += 1;
        state.provisioning -= 1;
        state.scale_ups += 1;
        let nf_idx = nf_index(state.cfg.nf);
        // A lag sample only makes sense against an active breach; if the
        // queue drained itself before the server arrived, there is no
        // breach-to-online delay to report.
        if let Some(since) = state.breach_since_us {
            let lag_ms = (now_us - since) / 1_000;
            state.scaling_lags_ms.push(lag_ms);
            self.obs.nf_scaling_lag_ms[nf_idx].record(lag_ms);
        }
        self.obs.nf_scale_up[nf_idx].inc();
        self.obs.nf_servers[nf_idx].set(state.servers as u64);
        self.dispatch(pool, now_us);
        self.nfs[pool].update_breach(now_us);
    }

    fn scale_tick(&mut self, pool: usize, now_us: u64) {
        let state = &mut self.nfs[pool];
        let Some(policy) = state.cfg.autoscale else {
            return;
        };
        let nf_idx = nf_index(state.cfg.nf);
        let effective = state.servers + state.provisioning;
        let depth = state.queue.len() as f64;
        if depth > policy.high_depth_per_server * effective as f64 && effective < policy.max_servers
        {
            state.provisioning += 1;
            self.push(
                now_us + policy.provision_ms * 1_000,
                Action::ServerOnline { nf: pool as u8 },
            );
        } else if depth < policy.low_depth_per_server * state.servers as f64
            && state.servers > policy.min_servers
            && state.busy < state.servers
            && state.provisioning == 0
        {
            let state = &mut self.nfs[pool];
            state.settle_capacity(now_us);
            state.servers -= 1;
            state.scale_downs += 1;
            self.obs.nf_scale_down[nf_idx].inc();
            self.obs.nf_servers[nf_idx].set(state.servers as u64);
        }
        // Keep the control loop alive only while work can still arrive.
        if !self.input_done || self.outstanding > 0 {
            self.push(
                now_us + self.nfs[pool].cfg.autoscale.expect("checked").eval_every_ms * 1_000,
                Action::ScaleTick { nf: pool as u8 },
            );
        }
    }
}

/// SplitMix64-style seed mix: a distinct, well-scrambled RNG seed per
/// `(run seed, ue, arrival ms, event)` tuple.
fn job_seed(seed: u64, ue: u32, t_ms: u64, code: u8) -> u64 {
    let mut x = seed
        ^ u64::from(ue).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ t_ms.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (u64::from(code) << 56);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic single-point service law (every draw returns
/// `value_us`): the M/D/c building block the analytic sanity suite uses.
pub fn deterministic_service(value_us: f64) -> Dist {
    Dist::Empirical(cn_stats::Ecdf::new(vec![value_us]).expect("finite single sample"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_trace::{DeviceType, Timestamp, UeId};

    fn rec(t_ms: u64, ue: u32, e: EventType) -> TraceRecord {
        TraceRecord::new(Timestamp::from_millis(t_ms), UeId(ue), DeviceType::Phone, e)
    }

    /// A single-MME world: every event is one MME transaction.
    fn single_nf_config(servers: usize, service_us: f64) -> DesConfig {
        DesConfig {
            seed: 7,
            nfs: vec![NfConfig {
                nf: NetworkFunction::Mme,
                servers,
                service: deterministic_service(service_us),
                autoscale: None,
            }],
            matrix: TransactionMatrix {
                transactions: [[1, 0, 0, 0, 0]; 6],
            },
            admission: None,
        }
    }

    #[test]
    fn default_config_validates() {
        DesConfig::default_epc(1).validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = DesConfig::default_epc(1);
        cfg.nfs[1].servers = 0;
        assert_eq!(
            cfg.validate(),
            Err(DesError::ZeroServers(NetworkFunction::Hss))
        );

        let mut cfg = DesConfig::default_epc(1);
        cfg.nfs.push(cfg.nfs[0].clone());
        assert_eq!(
            cfg.validate(),
            Err(DesError::DuplicateNf(NetworkFunction::Mme))
        );

        let mut cfg = DesConfig::default_epc(1);
        cfg.nfs.retain(|n| n.nf != NetworkFunction::Pcrf);
        assert_eq!(
            cfg.validate(),
            Err(DesError::MissingNf(NetworkFunction::Pcrf))
        );

        let mut cfg = DesConfig::default_epc(1);
        cfg.nfs[0].autoscale = Some(AutoscalePolicy {
            min_servers: 4,
            max_servers: 2,
            high_depth_per_server: 8.0,
            low_depth_per_server: 2.0,
            eval_every_ms: 1_000,
            provision_ms: 0,
        });
        assert!(matches!(
            cfg.validate(),
            Err(DesError::BadAutoscale {
                nf: NetworkFunction::Mme,
                ..
            })
        ));

        let cfg = DesConfig::default_epc(1).with_admission(AdmissionPolicy {
            rate_per_sec: f64::NAN,
            burst: 10.0,
            high_reserve: 0.3,
            critical_reserve: 0.1,
        });
        assert!(matches!(
            cfg.validate(),
            Err(DesError::BadAdmission {
                field: "rate_per_sec",
                ..
            })
        ));
    }

    #[test]
    fn chains_preserve_matrix_totals() {
        for matrix in [
            TransactionMatrix::default_epc(),
            crate::messages::derived_matrix(),
        ] {
            for event in EventType::ALL {
                let chain = dependency_chain(event, &matrix);
                let mut totals = [0u32; 5];
                for (nf, tx) in &chain {
                    totals[nf_index(*nf)] += tx;
                    assert!(*tx > 0, "{event}: zero-transaction stage");
                }
                assert_eq!(
                    totals,
                    matrix.transactions[event.code() as usize],
                    "{event}: chain does not preserve the matrix row"
                );
            }
        }
    }

    #[test]
    fn attach_chain_orders_auth_before_session() {
        let chain = dependency_chain(EventType::Attach, &TransactionMatrix::default_epc());
        let pos = |nf| chain.iter().position(|&(n, _)| n == nf).unwrap();
        assert_eq!(chain[0].0, NetworkFunction::Mme, "attach starts at the MME");
        assert!(pos(NetworkFunction::Hss) < pos(NetworkFunction::Sgw));
        assert!(pos(NetworkFunction::Sgw) < pos(NetworkFunction::Pgw));
        assert!(pos(NetworkFunction::Pgw) < pos(NetworkFunction::Pcrf));
    }

    #[test]
    fn unloaded_single_nf_latency_is_pure_service() {
        let mut sim = DesSim::new(single_nf_config(1, 1_000.0)).unwrap();
        for i in 0..10 {
            sim.offer(&rec(i * 1_000, 0, EventType::Tau)).unwrap();
        }
        let report = sim.finish();
        assert_eq!(report.completed, 10);
        assert_eq!(report.total_admitted(), 10);
        assert!((report.mean_latency_ms - 1.0).abs() < 1e-9);
        assert_eq!(report.per_nf.len(), 1);
        assert_eq!(report.per_nf[0].transactions, 10);
        assert!(report.per_nf[0].utilization < 0.01);
    }

    #[test]
    fn chained_stages_run_sequentially() {
        // One attach through the default EPC with deterministic 1 ms
        // services everywhere: latency = total transactions × 1 ms.
        let mut cfg = DesConfig::default_epc(3);
        for nf in &mut cfg.nfs {
            nf.service = deterministic_service(1_000.0);
            nf.autoscale = None;
        }
        let mut sim = DesSim::new(cfg).unwrap();
        sim.offer(&rec(0, 0, EventType::Attach)).unwrap();
        let report = sim.finish();
        let total_tx: u32 = TransactionMatrix::default_epc().transactions
            [EventType::Attach.code() as usize]
            .iter()
            .sum();
        assert_eq!(report.completed, 1);
        assert!(
            (report.max_latency_ms - f64::from(total_tx)).abs() < 1e-9,
            "expected {total_tx} ms, got {}",
            report.max_latency_ms
        );
    }

    #[test]
    fn out_of_order_input_is_a_typed_error() {
        let mut sim = DesSim::new(single_nf_config(1, 100.0)).unwrap();
        sim.offer(&rec(5_000, 0, EventType::Tau)).unwrap();
        assert_eq!(
            sim.offer(&rec(4_000, 0, EventType::Tau)),
            Err(DesError::UnsortedInput {
                prev_ms: 5_000,
                got_ms: 4_000
            })
        );
        // Ties are fine.
        sim.offer(&rec(5_000, 1, EventType::Tau)).unwrap();
    }

    #[test]
    fn reruns_are_bit_identical() {
        let run = || {
            let mut sim = DesSim::new(DesConfig::default_epc(0xDE5)).unwrap();
            for i in 0..200u64 {
                let e = match i % 4 {
                    0 => EventType::Attach,
                    1 => EventType::ServiceRequest,
                    2 => EventType::Handover,
                    _ => EventType::S1ConnRelease,
                };
                sim.offer(&rec(i * 37, (i % 16) as u32, e)).unwrap();
            }
            sim.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.completed > 0);
    }

    #[test]
    fn storm_triggers_autoscaling_and_records_lag() {
        let mut cfg = single_nf_config(1, 20_000.0);
        cfg.nfs[0].autoscale = Some(AutoscalePolicy {
            min_servers: 1,
            max_servers: 8,
            high_depth_per_server: 4.0,
            low_depth_per_server: 1.0,
            eval_every_ms: 500,
            provision_ms: 2_000,
        });
        let mut sim = DesSim::new(cfg).unwrap();
        // 600 near-simultaneous TAUs at 20 ms service each: one server
        // would need 12 s; the breach is deep and sustained.
        for i in 0..600u64 {
            sim.offer(&rec(i, (i % 64) as u32, EventType::Tau)).unwrap();
        }
        let report = sim.finish();
        let mme = &report.per_nf[0];
        assert!(mme.scale_ups > 0, "storm never scaled up: {report:?}");
        assert!(mme.final_servers > 1);
        assert!(
            mme.max_scaling_lag_ms >= 2_000,
            "lag below the provisioning floor: {}",
            mme.max_scaling_lag_ms
        );
        assert!(mme.utilization <= 1.0);
        // The same storm without autoscaling is strictly slower.
        let mut fixed = DesSim::new(single_nf_config(1, 20_000.0)).unwrap();
        for i in 0..600u64 {
            fixed
                .offer(&rec(i, (i % 64) as u32, EventType::Tau))
                .unwrap();
        }
        let fixed = fixed.finish();
        assert!(fixed.p99_latency_ms > report.p99_latency_ms);
        assert_eq!(fixed.per_nf[0].scale_ups, 0);
    }

    #[test]
    fn idle_pools_scale_back_down() {
        let mut cfg = single_nf_config(2, 10_000.0);
        cfg.nfs[0].autoscale = Some(AutoscalePolicy {
            min_servers: 1,
            max_servers: 8,
            high_depth_per_server: 4.0,
            low_depth_per_server: 1.0,
            eval_every_ms: 500,
            provision_ms: 0,
        });
        let mut sim = DesSim::new(cfg).unwrap();
        // A trickle that never queues, spread over ten seconds.
        for i in 0..20u64 {
            sim.offer(&rec(i * 500, 0, EventType::Tau)).unwrap();
        }
        let report = sim.finish();
        assert!(report.per_nf[0].scale_downs > 0);
        assert_eq!(report.per_nf[0].final_servers, 1);
    }

    #[test]
    fn admission_sheds_exactly_like_the_overload_module() {
        use crate::overload::apply;
        let policy = AdmissionPolicy {
            rate_per_sec: 50.0,
            burst: 40.0,
            high_reserve: 0.3,
            critical_reserve: 0.1,
        };
        let records: Vec<TraceRecord> = (0..300u64)
            .map(|i| {
                let e = match i % 3 {
                    0 => EventType::Handover,
                    1 => EventType::ServiceRequest,
                    _ => EventType::Attach,
                };
                rec(i, 0, e)
            })
            .collect();
        let trace = Trace::from_records(records.clone());
        let (shed_report, _) = apply(&trace, &policy);

        let mut sim = DesSim::new(single_nf_config(4, 100.0).with_admission(policy)).unwrap();
        for r in &records {
            sim.offer(r).unwrap();
        }
        let report = sim.finish();
        assert_eq!(report.admitted, shed_report.admitted);
        assert_eq!(report.shed, shed_report.shed);
        assert_eq!(report.completed, shed_report.total_admitted());
        assert!(report.shed_rate > 0.0);
    }

    #[test]
    fn observed_run_fills_the_registry() {
        let registry = Registry::new();
        let trace = Trace::from_records(
            (0..50u64)
                .map(|i| rec(i * 10, (i % 8) as u32, EventType::Attach))
                .collect(),
        );
        let report = DesSim::run_trace(DesConfig::default_epc(9), &trace, &registry).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("cn_mcn_des_completed_total"),
            Some(report.completed)
        );
        assert_eq!(snap.counter("cn_mcn_des_offered_total"), Some(50));
        assert_eq!(
            snap.histogram("cn_mcn_des_latency_us").unwrap().count,
            report.completed
        );
        let mme_tx = snap
            .get("cn_mcn_des_nf_transactions_total", &[("nf", "MME")])
            .map(|m| &m.value);
        let mme = report
            .per_nf
            .iter()
            .find(|n| n.nf == NetworkFunction::Mme)
            .unwrap();
        match mme_tx {
            Some(cn_obs::MetricValue::Counter { value }) => assert_eq!(*value, mme.transactions),
            other => panic!("MME transactions counter missing: {other:?}"),
        }
        assert_eq!(
            snap.counter_total("cn_mcn_des_admitted_total"),
            Some(report.total_admitted())
        );
    }

    #[test]
    fn empty_run_reports_zeros() {
        let report = DesSim::new(single_nf_config(1, 100.0)).unwrap().finish();
        assert_eq!(report.offered, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.p99_latency_ms, 0.0);
        assert_eq!(report.shed_rate, 0.0);
    }
}
