//! The introspection endpoint: a tiny std-only HTTP/1.1 scrape server.
//!
//! [`IntrospectionServer::bind`] starts a nonblocking acceptor thread
//! (plain threads and blocking I/O, matching cn-live's no-async-runtime
//! stance); each connection gets one handler thread that answers a
//! single GET and closes. Three paths:
//!
//! * `/metrics` — Prometheus text exposition of a live registry
//!   snapshot (`text/plain`), what a real scraper would ingest;
//! * `/status` — a JSON [`StatusReport`]: uptime, the current window's
//!   rates and quantiles (from the [`FlightRecorder`]'s latest frame
//!   when one is attached, cumulative otherwise), and per-consumer
//!   series grouped by their `consumer` label;
//! * `/recorder` — the recorder's full ring as JSON (`[]` when no
//!   recorder is attached).
//!
//! Deliberately not a web framework: GET only (405 otherwise), 404 for
//! unknown paths, every response carries `Content-Length` and
//! `Connection: close`, requests over 8 KiB or slower than the read
//! timeout are dropped. The server only ever reads the registry, so
//! scraping cannot perturb the serve loop beyond a snapshot's relaxed
//! atomic loads.

use crate::export::ObsSnapshot;
use crate::metric::HistogramSnapshot;
use crate::recorder::{FlightRecorder, RateSample};
use crate::registry::Registry;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on one request's header bytes.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// p50/p99 of one histogram, estimated with
/// [`HistogramSnapshot::quantile_est`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSample {
    /// Histogram name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Observations in the window this estimate covers.
    pub count: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// One consumer's series, grouped from metrics carrying a `consumer`
/// label (the cn-live hub registers lag/backlog/drops per consumer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerStatus {
    /// The `consumer` label value (accept-order id).
    pub consumer: String,
    /// `(metric name, value)` pairs for this consumer, name-sorted.
    pub series: Vec<(String, u64)>,
}

/// What `/status` serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Seconds since the introspection server started.
    pub uptime_s: f64,
    /// Width of the window the rates/quantiles cover, `None` when no
    /// recorder is attached (then they are cumulative-since-start).
    pub window_ms: Option<u64>,
    /// Counter rates (events/s) over the window.
    pub rates: Vec<RateSample>,
    /// Histogram quantile estimates over the window.
    pub quantiles: Vec<QuantileSample>,
    /// Per-consumer series grouped by the `consumer` label.
    pub consumers: Vec<ConsumerStatus>,
}

/// Build the `/status` document from a snapshot and (optionally) the
/// recorder's latest frame. Public so `cn-live` tests and examples can
/// assert on the exact document the endpoint would serve.
pub fn status_report(
    snapshot: &ObsSnapshot,
    latest: Option<&crate::recorder::RecorderFrame>,
    uptime_s: f64,
) -> StatusReport {
    let quantile =
        |name: &str, labels: &[(String, String)], h: &HistogramSnapshot| QuantileSample {
            name: name.to_string(),
            labels: labels.to_vec(),
            count: h.count,
            p50: h.quantile_est(0.50).unwrap_or(0.0),
            p99: h.quantile_est(0.99).unwrap_or(0.0),
        };
    let (window_ms, rates, quantiles) = match latest {
        Some(frame) => (
            Some(frame.window_ms),
            frame.window.rates.clone(),
            frame
                .window
                .histograms
                .iter()
                .map(|h| quantile(&h.name, &h.labels, &h.delta))
                .collect(),
        ),
        None => {
            let mut rates = Vec::new();
            let mut quantiles = Vec::new();
            let window_s = uptime_s.max(1e-3);
            for m in &snapshot.metrics {
                match &m.value {
                    crate::export::MetricValue::Counter { value } => rates.push(RateSample {
                        name: m.name.clone(),
                        labels: m.labels.clone(),
                        per_s: *value as f64 / window_s,
                    }),
                    crate::export::MetricValue::Histogram { histogram }
                        if !histogram.is_empty() =>
                    {
                        quantiles.push(quantile(&m.name, &m.labels, histogram));
                    }
                    _ => {}
                }
            }
            (None, rates, quantiles)
        }
    };
    let mut consumers: Vec<ConsumerStatus> = Vec::new();
    for m in &snapshot.metrics {
        let Some((_, id)) = m.labels.iter().find(|(k, _)| k == "consumer") else {
            continue;
        };
        let value = match &m.value {
            crate::export::MetricValue::Counter { value }
            | crate::export::MetricValue::Gauge { value } => *value,
            crate::export::MetricValue::Histogram { histogram } => histogram.count,
        };
        let entry = match consumers.iter_mut().find(|c| c.consumer == *id) {
            Some(entry) => entry,
            None => {
                consumers.push(ConsumerStatus {
                    consumer: id.clone(),
                    series: Vec::new(),
                });
                consumers.last_mut().unwrap()
            }
        };
        entry.series.push((m.name.clone(), value));
    }
    consumers.sort_by(|a, b| {
        let numeric = |s: &str| s.parse::<u64>().ok();
        match (numeric(&a.consumer), numeric(&b.consumer)) {
            (Some(x), Some(y)) => x.cmp(&y),
            _ => a.consumer.cmp(&b.consumer),
        }
    });
    StatusReport {
        uptime_s,
        window_ms,
        rates,
        quantiles,
        consumers,
    }
}

struct HttpShared {
    registry: Registry,
    recorder: Option<FlightRecorder>,
    origin: Instant,
    stop: AtomicBool,
}

/// A running introspection endpoint; see the module docs. Dropping the
/// last handle (or calling [`IntrospectionServer::stop`]) winds the
/// acceptor down.
#[derive(Clone)]
pub struct IntrospectionServer {
    shared: Arc<HttpShared>,
    addr: SocketAddr,
}

impl IntrospectionServer {
    /// Bind `addr` (use port 0 to let the OS pick) and start serving
    /// snapshots of `registry`; `recorder` backs `/status` windows and
    /// `/recorder`.
    pub fn bind(
        addr: &str,
        registry: &Registry,
        recorder: Option<FlightRecorder>,
    ) -> std::io::Result<IntrospectionServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            registry: registry.clone(),
            recorder,
            origin: Instant::now(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cn-obs-http".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(IntrospectionServer {
            shared,
            addr: local,
        })
    }

    /// The bound address (for building scrape URLs in tests and logs).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the acceptor to wind down (in-flight responses finish).
    pub fn stop(&self) {
        self.shared.stop.store(true, SeqCst);
    }
}

impl Drop for HttpShared {
    fn drop(&mut self) {
        self.stop.store(true, SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<HttpShared>) {
    // Exponential poll backoff: a scraper mid-burst is re-polled every
    // 2 ms, but an idle listener settles at 50 ms wakeups. The plane
    // must stay invisible to the workload it introspects — on a
    // single-core box a tight 5 ms poll measurably taxes the hot path
    // it exists to observe.
    const IDLE_SLEEP_MIN: Duration = Duration::from_millis(2);
    const IDLE_SLEEP_MAX: Duration = Duration::from_millis(50);
    let mut idle_sleep = IDLE_SLEEP_MIN;
    loop {
        if shared.stop.load(SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle_sleep = IDLE_SLEEP_MIN;
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("cn-obs-http-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(idle_sleep);
                idle_sleep = (idle_sleep * 2).min(IDLE_SLEEP_MAX);
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<HttpShared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request = read_request_head(&mut stream)?;
    let (status, content_type, body) = match parse_request_line(&request) {
        RequestLine::Get(path) => match path.as_str() {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                shared.registry.snapshot().prometheus(),
            ),
            "/status" => {
                let snapshot = shared.registry.snapshot();
                let latest = shared.recorder.as_ref().and_then(|r| r.latest());
                let report = status_report(
                    &snapshot,
                    latest.as_ref(),
                    shared.origin.elapsed().as_secs_f64(),
                );
                (
                    "200 OK",
                    "application/json",
                    serde_json::to_string(&report).expect("status serializes") + "\n",
                )
            }
            "/recorder" => {
                let frames = shared
                    .recorder
                    .as_ref()
                    .map(|r| r.frames())
                    .unwrap_or_default();
                (
                    "200 OK",
                    "application/json",
                    serde_json::to_string(&frames).expect("frames serialize") + "\n",
                )
            }
            other => (
                "404 Not Found",
                "text/plain; version=0.0.4",
                format!("no such path: {other}\n"),
            ),
        },
        RequestLine::OtherMethod => (
            "405 Method Not Allowed",
            "text/plain; version=0.0.4",
            "GET only\n".to_string(),
        ),
        RequestLine::Malformed => (
            "400 Bad Request",
            "text/plain; version=0.0.4",
            "malformed request line\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request headers (or the size cap).
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

enum RequestLine {
    Get(String),
    OtherMethod,
    Malformed,
}

fn parse_request_line(request: &str) -> RequestLine {
    let Some(line) = request.lines().next() else {
        return RequestLine::Malformed;
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return RequestLine::Malformed;
    };
    if !version.starts_with("HTTP/1.") {
        return RequestLine::Malformed;
    }
    if method != "GET" {
        return RequestLine::OtherMethod;
    }
    // Strip any query string: the endpoints take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    RequestLine::Get(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_report_groups_consumers_and_estimates_quantiles() {
        let r = Registry::new();
        r.counter("cn_live_emitted_total").add(100);
        r.counter_with("cn_live_consumer_drops_total", &[("consumer", "0")])
            .add(2);
        r.gauge_with("cn_live_consumer_backlog_blocks", &[("consumer", "0")])
            .set(9);
        r.counter_with("cn_live_consumer_drops_total", &[("consumer", "10")])
            .add(1);
        let h = r.histogram("cn_live_lag_ms");
        for v in [1u64, 2, 3, 700] {
            h.record(v);
        }
        let report = status_report(&r.snapshot(), None, 2.0);
        assert_eq!(report.window_ms, None);
        let emitted = report
            .rates
            .iter()
            .find(|s| s.name == "cn_live_emitted_total")
            .unwrap();
        assert!((emitted.per_s - 50.0).abs() < 1e-9);
        let lag = &report.quantiles[0];
        assert_eq!(lag.name, "cn_live_lag_ms");
        assert!(lag.p50 <= lag.p99);
        assert!(lag.p99 <= 1023.0, "p99 inside 700's bucket: {}", lag.p99);
        // Consumers grouped, numerically ordered (0 before 10), with
        // both their counter and gauge series.
        assert_eq!(report.consumers.len(), 2);
        assert_eq!(report.consumers[0].consumer, "0");
        assert_eq!(report.consumers[1].consumer, "10");
        assert!(report.consumers[0]
            .series
            .iter()
            .any(|(n, v)| n == "cn_live_consumer_backlog_blocks" && *v == 9));
        let json = serde_json::to_string(&report).unwrap();
        let back: StatusReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn request_line_parsing() {
        assert!(matches!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            RequestLine::Get(p) if p == "/metrics"
        ));
        assert!(matches!(
            parse_request_line("GET /status?x=1 HTTP/1.0\r\n"),
            RequestLine::Get(p) if p == "/status"
        ));
        assert!(matches!(
            parse_request_line("POST /metrics HTTP/1.1\r\n"),
            RequestLine::OtherMethod
        ));
        assert!(matches!(
            parse_request_line("GET /metrics SMTP\r\n"),
            RequestLine::Malformed
        ));
        assert!(matches!(parse_request_line(""), RequestLine::Malformed));
    }
}
