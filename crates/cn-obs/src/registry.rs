//! The metric registry: named, optionally labeled, shareable.
//!
//! Registration (name → handle) takes a lock and may allocate; hot paths
//! register once up front and then update their handles lock-free.
//! Registering the same `(name, labels)` twice returns a handle to the
//! *same* cell — shard workers and the consumer can independently ask
//! for `cn_gen_shard_events_total{shard="3"}` and count into one place.

use crate::export::{MetricSnapshot, MetricValue, ObsSnapshot};
use crate::metric::{Counter, CounterCore, Gauge, GaugeCore, Histogram, HistogramCore};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex};

/// A label set, sorted by key at registration so the same logical labels
/// always form the same metric identity.
pub(crate) type Labels = Vec<(String, String)>;

enum Entry {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Inner {
    metrics: Mutex<BTreeMap<(String, Labels), Entry>>,
}

/// A set of named metrics. Clones share the same underlying store;
/// a **disabled** registry ([`Registry::disabled`]) stores nothing and
/// hands out no-op handles, making instrumentation free when off.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Registry(disabled)"),
            Some(inner) => {
                let n = inner.metrics.lock().expect("registry lock").len();
                write!(f, "Registry({n} metrics)")
            }
        }
    }
}

/// Panic unless `name` is a valid metric/label identifier:
/// `[a-z_][a-z0-9_]*`. Misnamed metrics fail at registration (cold
/// path), not at export time.
fn check_identifier(name: &str, what: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
    let tail_ok = chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    assert!(
        head_ok && tail_ok,
        "invalid {what} {name:?}: use [a-z_][a-z0-9_]* (scheme: cn_<crate>_<subsystem>_<name>)"
    );
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The no-op registry: hands out handles that ignore every update
    /// and snapshots to nothing.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// False for [`Registry::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.metrics.lock().expect("registry lock").len())
    }

    /// True when no metric has been registered (always true when
    /// disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
        let mut labels: Labels = labels
            .iter()
            .map(|(k, v)| {
                check_identifier(k, "label key");
                (k.to_string(), v.to_string())
            })
            .collect();
        labels.sort();
        for pair in labels.windows(2) {
            assert!(
                pair[0].0 != pair[1].0,
                "duplicate label key {:?}",
                pair[0].0
            );
        }
        labels
    }

    fn entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Entry,
        extract: impl FnOnce(&Entry) -> Option<T>,
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        check_identifier(name, "metric name");
        let key = (name.to_string(), Self::canonical_labels(labels));
        let mut metrics = inner.metrics.lock().expect("registry lock");
        let entry = metrics.entry(key).or_insert_with(make);
        let got = extract(entry);
        assert!(
            got.is_some(),
            "metric {name:?} already registered as a {}",
            entry.kind()
        );
        got
    }

    /// Register (or re-acquire) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Register (or re-acquire) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter {
            core: self.entry(
                name,
                labels,
                || Entry::Counter(Arc::new(CounterCore::default())),
                |e| match e {
                    Entry::Counter(c) => Some(Arc::clone(c)),
                    _ => None,
                },
            ),
        }
    }

    /// Register (or re-acquire) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Register (or re-acquire) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge {
            core: self.entry(
                name,
                labels,
                || Entry::Gauge(Arc::new(GaugeCore::default())),
                |e| match e {
                    Entry::Gauge(g) => Some(Arc::clone(g)),
                    _ => None,
                },
            ),
        }
    }

    /// Register (or re-acquire) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Register (or re-acquire) a labeled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram {
            core: self.entry(
                name,
                labels,
                || Entry::Histogram(Arc::new(HistogramCore::default())),
                |e| match e {
                    Entry::Histogram(h) => Some(Arc::clone(h)),
                    _ => None,
                },
            ),
        }
    }

    /// Freeze every metric into a serializable snapshot. Metrics appear
    /// in `(name, labels)` order, so snapshots of the same run are
    /// byte-stable regardless of registration order.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut metrics = Vec::new();
        if let Some(inner) = &self.inner {
            let map = inner.metrics.lock().expect("registry lock");
            for ((name, labels), entry) in map.iter() {
                let value = match entry {
                    Entry::Counter(c) => MetricValue::Counter {
                        value: c.value.load(Relaxed),
                    },
                    Entry::Gauge(g) => MetricValue::Gauge {
                        value: g.value.load(Relaxed),
                    },
                    Entry::Histogram(h) => MetricValue::Histogram {
                        histogram: Histogram {
                            core: Some(Arc::clone(h)),
                        }
                        .snapshot(),
                    },
                };
                metrics.push(MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        ObsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_cell() {
        let r = Registry::new();
        let a = r.counter_with("cn_test_events_total", &[("shard", "0")]);
        let b = r.counter_with("cn_test_events_total", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 1);
        // A different label value is a different cell.
        let c = r.counter_with("cn_test_events_total", &[("shard", "1")]);
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_split_identity() {
        let r = Registry::new();
        let a = r.counter_with("cn_test_x_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("cn_test_x_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_collision_panics() {
        let r = Registry::new();
        let _ = r.counter("cn_test_collide");
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.gauge("cn_test_collide")));
        assert!(err.is_err(), "registering a gauge over a counter must fail");
    }

    #[test]
    fn invalid_names_are_rejected_at_registration() {
        let r = Registry::new();
        for bad in ["", "9leading", "has-dash", "Upper", "sp ace"] {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.counter(bad)));
            assert!(err.is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn disabled_registry_registers_and_snapshots_nothing() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("cn_test_total");
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        assert_eq!(r.len(), 0);
        assert!(r.snapshot().metrics.is_empty());
        let h = r.histogram("cn_test_hist");
        h.record(1);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn clones_share_the_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("cn_test_one_total").inc();
        assert_eq!(r2.counter("cn_test_one_total").get(), 1);
        assert_eq!(r2.len(), 1);
    }

    #[test]
    fn snapshot_is_ordered_and_complete() {
        let r = Registry::new();
        r.gauge("cn_test_b_gauge").set(7);
        r.counter("cn_test_a_total").add(3);
        r.histogram("cn_test_c_hist").record(16);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            ["cn_test_a_total", "cn_test_b_gauge", "cn_test_c_hist"]
        );
        assert_eq!(snap.counter("cn_test_a_total"), Some(3));
        assert_eq!(snap.gauge("cn_test_b_gauge"), Some(7));
        assert_eq!(snap.histogram("cn_test_c_hist").unwrap().count, 1);
    }
}
